"""Tests for regression, interpolation, silhouette and string similarity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.interpolate import align_series, resample_to_grid, spline_fill
from repro.stats.regression import add_constant, ols
from repro.stats.silhouette import (
    pairwise_distance_matrix,
    silhouette_samples,
    silhouette_score,
)
from repro.stats.strings import jaro, jaro_distance, jaro_winkler


class TestOLS:
    def test_exact_linear_fit(self):
        x = np.arange(20.0)
        y = 3.0 * x + 2.0
        fit = ols(y, add_constant(x[:, None]))
        np.testing.assert_allclose(fit.params, [2.0, 3.0], atol=1e-9)
        assert fit.rss < 1e-16
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_fit_recovers_coefficients(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(500, 2))
        y = 1.5 + x @ np.array([2.0, -3.0]) + rng.normal(0, 0.1, 500)
        fit = ols(y, add_constant(x))
        np.testing.assert_allclose(fit.params, [1.5, 2.0, -3.0], atol=0.05)
        assert fit.df_resid == 497

    def test_tvalues_significant_for_real_effect(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(200, 1))
        y = 5.0 * x[:, 0] + rng.normal(size=200)
        fit = ols(y, add_constant(x))
        assert abs(fit.tvalues[1]) > 10

    def test_underdetermined_rejected(self):
        with pytest.raises(ValueError):
            ols(np.ones(3), np.ones((3, 3)))

    def test_degenerate_response_r_squared(self):
        fit = ols(np.full(10, 2.0), add_constant(np.arange(10.0)[:, None]))
        assert fit.r_squared == 0.0


class TestInterpolation:
    def test_recovers_smooth_function(self):
        ts = np.linspace(0, 10, 30)
        vs = np.sin(ts)
        query = np.linspace(0.5, 9.5, 100)
        out = spline_fill(ts, vs, query)
        np.testing.assert_allclose(out, np.sin(query), atol=1e-3)

    def test_clamps_out_of_range(self):
        ts = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        vs = ts**2
        out = spline_fill(ts, vs, np.array([-5.0, 10.0]))
        np.testing.assert_allclose(out, [0.0, 16.0])

    def test_single_point_constant(self):
        out = spline_fill(np.array([1.0]), np.array([7.0]),
                          np.array([0.0, 5.0]))
        np.testing.assert_array_equal(out, [7.0, 7.0])

    def test_duplicate_timestamps_deduplicated(self):
        ts = np.array([0.0, 1.0, 1.0, 2.0])
        vs = np.array([0.0, 1.0, 1.0, 2.0])
        out = spline_fill(ts, vs, np.array([1.5]))
        assert out[0] == pytest.approx(1.5)

    def test_resample_grid_spacing(self):
        grid, values = resample_to_grid(
            np.array([0.0, 0.7, 2.3, 3.1]), np.array([1.0, 2.0, 3.0, 4.0]),
            interval=0.5,
        )
        assert np.allclose(np.diff(grid), 0.5)
        assert grid[0] == 0.0
        assert values.shape == grid.shape

    def test_align_series_common_window(self):
        series = {
            "a": (np.array([0.0, 1.0, 2.0, 3.0]), np.array([0, 1, 2, 3.0])),
            "b": (np.array([1.0, 2.0, 3.0, 4.0]), np.array([1, 2, 3, 4.0])),
        }
        grid, aligned = align_series(series, interval=0.5)
        assert grid[0] == 1.0
        assert grid[-1] <= 3.0
        assert set(aligned) == {"a", "b"}
        assert all(v.shape == grid.shape for v in aligned.values())

    def test_align_series_disjoint_raises(self):
        series = {
            "a": (np.array([0.0, 1.0]), np.array([0.0, 1.0])),
            "b": (np.array([5.0, 6.0]), np.array([0.0, 1.0])),
        }
        with pytest.raises(ValueError):
            align_series(series)


class TestSilhouette:
    def test_well_separated_clusters_score_high(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.1, size=(10, 3))
        b = rng.normal(10.0, 0.1, size=(10, 3))
        items = list(np.vstack([a, b]))
        labels = [0] * 10 + [1] * 10
        dist = pairwise_distance_matrix(
            items, lambda x, y: float(np.linalg.norm(x - y))
        )
        assert silhouette_score(dist, labels) > 0.95

    def test_wrong_assignment_scores_negative(self):
        items = [np.array([0.0]), np.array([0.1]),
                 np.array([10.0]), np.array([10.1])]
        labels = [0, 1, 0, 1]  # deliberately crossed
        dist = pairwise_distance_matrix(
            items, lambda x, y: float(abs(x[0] - y[0]))
        )
        assert silhouette_score(dist, labels) < 0

    def test_singleton_cluster_scores_zero(self):
        dist = np.array([
            [0.0, 1.0, 5.0],
            [1.0, 0.0, 5.0],
            [5.0, 5.0, 0.0],
        ])
        samples = silhouette_samples(dist, [0, 0, 1])
        assert samples[2] == 0.0

    def test_requires_two_clusters(self):
        with pytest.raises(ValueError):
            silhouette_samples(np.zeros((3, 3)), [0, 0, 0])

    def test_scores_in_range(self):
        rng = np.random.default_rng(1)
        n = 12
        dist = rng.uniform(0.1, 2.0, size=(n, n))
        dist = (dist + dist.T) / 2
        np.fill_diagonal(dist, 0.0)
        labels = rng.integers(0, 3, n)
        if np.unique(labels).size >= 2:
            samples = silhouette_samples(dist, labels)
            assert np.all(samples >= -1.0) and np.all(samples <= 1.0)


class TestJaro:
    def test_identical(self):
        assert jaro("cpu_usage", "cpu_usage") == 1.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_completely_different(self):
        assert jaro("abc", "xyz") == 0.0

    def test_known_value(self):
        # Classic textbook example.
        assert jaro("MARTHA", "MARHTA") == pytest.approx(0.9444, abs=1e-4)

    def test_distance_complements_similarity(self):
        assert jaro_distance("abc", "abd") == pytest.approx(
            1.0 - jaro("abc", "abd")
        )

    def test_related_metric_names_close(self):
        """The naming-convention assumption behind Sieve's pre-clustering."""
        assert jaro("cpu_usage", "cpu_usage_percentile") > 0.8
        assert jaro("cpu_usage", "db_queries_count") < 0.6

    def test_winkler_prefix_bonus(self):
        plain = jaro("prefixed_one", "prefixed_two")
        boosted = jaro_winkler("prefixed_one", "prefixed_two")
        assert boosted > plain

    def test_winkler_invalid_weight(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_weight=0.5)

    @given(st.text(max_size=24), st.text(max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_property_symmetric_and_bounded(self, s1, s2):
        v = jaro(s1, s2)
        assert 0.0 <= v <= 1.0
        assert v == pytest.approx(jaro(s2, s1))
        w = jaro_winkler(s1, s2)
        assert 0.0 <= w <= 1.0
        assert w >= v - 1e-12
