"""Tests for the public pipeline API: registries, specs, sessions.

Covers the PR-5 acceptance surface:

* spec round-trips (spec -> dict -> spec identity, JSON and TOML);
* the same seed through legacy wiring and ``repro.api`` yields
  identical clusterings (edge Jaccard 1.0);
* CLI-vs-API equivalence smokes for stream/record/replay;
* ``repro spec``-emitted specs reproduce the run when re-fed;
* plugin registries (builtins + third-party registration);
* backend compaction (spill merge/retire, sqlite trim) and
  ``Session.compact``;
* the adaptive analysis cadence and its checkpoint round-trip.
"""

import dataclasses
import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.api import (
    APPLICATIONS,
    BACKENDS,
    CONSUMERS,
    DRIFT_DETECTORS,
    EXECUTORS,
    WORKLOADS,
    PipelineBuilder,
    RunSpec,
    build_pipeline,
    load_spec,
    loads_spec,
    register_application,
    register_backend,
    save_spec,
    spec_to_toml,
)
from repro.api.spec import (
    ConsumerSpec,
    StorageSpec,
    TelemetrySpec,
    WorkloadSpec,
)
from repro.causality.depgraph import edge_jaccard
from repro.core import Sieve, SieveConfig, StreamingConfig
from repro.core.serialize import (
    sieve_config_from_dict,
    sieve_config_to_dict,
    streaming_config_from_dict,
    streaming_config_to_dict,
)
from repro.metrics.timeseries import MetricKey
from repro.parallel.executor import ShardExecutor, make_executor
from repro.persistence import (
    MemoryBackend,
    SpillBackend,
    SqliteBackend,
    load_checkpoint,
    open_backend,
    restore_engine,
    save_checkpoint,
)
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.streaming import SimulationStreamDriver, StreamingSieve
from repro.workload import constant_rate


def _spec(name, shift=False, **kwargs):
    custom = ()
    if shift:
        custom = (("mode_gauge",
                   lambda comp, now: 500.0 if now > 45.0
                   else comp.total_request_rate() * 1.2),)
    defaults = dict(
        kind="generic",
        endpoints=(EndpointSpec("op", service_time=0.02),),
        concurrency=16,
        custom_metrics=custom,
    )
    defaults.update(kwargs)
    return ComponentSpec(name=name, **defaults)


def _chain_app(shift_backend=False):
    return Application("demo", [
        _spec("front", calls=(CallSpec("mid", delay=0.4),)),
        _spec("mid", calls=(CallSpec("back", delay=0.4),)),
        _spec("back", shift=shift_backend),
    ])


# Registered once: specs (and the CLI) can then name the tiny app.
if "demo-chain" not in APPLICATIONS:
    register_application("demo-chain", lambda: _chain_app())
if "demo-chain-shift" not in APPLICATIONS:
    register_application("demo-chain-shift",
                         lambda: _chain_app(shift_backend=True))


def _clustering_fingerprint(clusterings):
    return {
        component: sorted(
            (cluster.representative, tuple(sorted(cluster.metrics)))
            for cluster in clustering.clusters
        )
        for component, clustering in clusterings.items()
    }


def _assert_same_analysis(left, right):
    assert left.reclustered == right.reclustered
    assert left.reused == right.reused
    assert _clustering_fingerprint(left.clusterings) \
        == _clustering_fingerprint(right.clusterings)
    assert edge_jaccard(left.dependency_graph, right.dependency_graph,
                        level="metric") == 1.0


# ---------------------------------------------------------------------------
# Registries


class TestRegistries:
    def test_builtins_registered(self):
        assert {"memory", "sqlite", "spill"} <= set(BACKENDS.names())
        assert {"serial", "thread", "process"} <= set(EXECUTORS.names())
        assert {"random", "constant", "ramp"} <= set(WORKLOADS.names())
        assert "standard" in DRIFT_DETECTORS
        assert {"rca", "scaling"} <= set(CONSUMERS.names())
        assert {"sharelatex", "openstack"} <= set(APPLICATIONS.names())

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="unknown storage backend"):
            BACKENDS.create("redis", None)
        with pytest.raises(ValueError, match="registered:"):
            EXECUTORS.get("gpu")

    def test_register_and_duplicate_guard(self):
        registrations = BACKENDS.names()
        try:
            register_backend("test-null", lambda path, **kw:
                             MemoryBackend())
            assert "test-null" in BACKENDS
            with pytest.raises(ValueError, match="already registered"):
                register_backend("test-null", lambda path: None)
            register_backend("test-null", lambda path, **kw:
                             MemoryBackend(), replace=True)
            assert isinstance(open_backend("test-null", None),
                              MemoryBackend)
        finally:
            BACKENDS.unregister("test-null")
        assert BACKENDS.names() == registrations

    def test_decorator_registration(self):
        try:
            @register_backend("test-decorated")
            def _factory(path, **kw):
                return MemoryBackend()

            assert isinstance(BACKENDS.create("test-decorated", ""),
                              MemoryBackend)
        finally:
            BACKENDS.unregister("test-decorated")

    def test_make_executor_resolves_registered_strategy(self):
        try:
            EXECUTORS.register("test-inline",
                               lambda workers=None: ShardExecutor())
            executor = make_executor("test-inline")
            assert executor.kind == "serial"
            # ... and the config validation accepts it too.
            StreamingConfig(executor="test-inline")
        finally:
            EXECUTORS.unregister("test-inline")
        with pytest.raises(ValueError, match="unknown executor"):
            StreamingConfig(executor="test-inline")

    def test_spec_fields_validate_against_registries(self):
        with pytest.raises(ValueError, match="unknown workload"):
            WorkloadSpec(kind="sinusoid")
        with pytest.raises(ValueError, match="unknown storage backend"):
            StorageSpec(kind="redis")
        with pytest.raises(ValueError, match="unknown consumer"):
            ConsumerSpec(kind="pager")
        with pytest.raises(ValueError, match="unknown application"):
            RunSpec(app="netflix")
        with pytest.raises(ValueError, match="unknown drift detector"):
            StreamingConfig(drift_detector="spectral")


# ---------------------------------------------------------------------------
# Spec round-trips


class TestSpecRoundTrip:
    def _custom_spec(self, tmp_path=None):
        path = str(tmp_path / "run.db") if tmp_path else "/tmp/x.db"
        return RunSpec(
            mode="stream",
            app="demo-chain",
            seed=7,
            duration=55.0,
            workload=WorkloadSpec(kind="constant", rate=40.0),
            streaming=StreamingConfig(
                window=25.0, hop=5.0, retention=200.0,
                adaptive_hop=True, hop_min=2.5, hop_max=20.0,
                executor="thread", executor_workers=3,
                writer="async", checkpoint_every_windows=1,
                sieve=SieveConfig(max_clusters=5,
                                  granger_lags=(1, 2, 3)),
            ),
            storage=StorageSpec(kind="spill", path=path,
                                retention=60.0,
                                options={"hot_points": 64}),
            journal="j.log",
            checkpoint="c.json",
            consumers=(
                ConsumerSpec("rca", {"latency_threshold": 2.0}),
                ConsumerSpec("scaling", {"component": "back",
                                         "scale_up": 0.8,
                                         "scale_down": 0.2}),
            ),
            telemetry=TelemetrySpec(enabled=True, port=9464,
                                    host="0.0.0.0", span_history=32,
                                    exporters=("json",),
                                    options={"indent": 2}),
            compare=True,
            extra={"note": "custom"},
        )

    def test_default_spec_dict_identity(self):
        spec = RunSpec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_custom_spec_dict_identity(self):
        spec = self._custom_spec()
        restored = RunSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.streaming.sieve.granger_lags == (1, 2, 3)

    def test_json_round_trip(self):
        spec = self._custom_spec()
        text = json.dumps(spec.to_dict())
        assert RunSpec.from_dict(json.loads(text)) == spec

    def test_toml_round_trip(self):
        tomllib = pytest.importorskip("tomllib")
        spec = self._custom_spec()
        text = spec_to_toml(spec)
        assert RunSpec.from_dict(tomllib.loads(text)) == spec
        assert loads_spec(text, "toml") == spec

    def test_spec_file_round_trip(self, tmp_path):
        pytest.importorskip("tomllib")
        spec = self._custom_spec()
        for name in ("run.toml", "run.json"):
            path = tmp_path / name
            save_spec(spec, path)
            assert load_spec(path) == spec

    def test_partial_dict_keeps_defaults(self):
        spec = RunSpec.from_dict({
            "mode": "stream",
            "workload": {"kind": "constant"},
            "streaming": {"window": 30.0, "retention": 150.0},
        })
        assert spec.app == "sharelatex"
        assert spec.workload.rate == 25.0
        assert spec.streaming.window == 30.0
        assert spec.streaming.hop == 10.0

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown RunSpec field"):
            RunSpec.from_dict({"mode": "stream", "turbo": True})
        with pytest.raises(ValueError,
                           match="unknown StreamingConfig field"):
            RunSpec.from_dict({"streaming": {"windw": 10.0}})
        with pytest.raises(ValueError,
                           match="unknown WorkloadSpec field"):
            RunSpec.from_dict({"workload": {"kid": "random"}})
        with pytest.raises(ValueError,
                           match="unknown TelemetrySpec field"):
            RunSpec.from_dict({"telemetry": {"prt": 9464}})
        with pytest.raises(ValueError,
                           match="unknown SieveConfig field"):
            sieve_config_from_dict({"max_k": 7})

    def test_version_check(self):
        with pytest.raises(ValueError, match="unsupported spec version"):
            RunSpec.from_dict({"version": 99})

    def test_config_codecs_round_trip(self):
        sieve = SieveConfig(granger_lags=(2, 4), max_clusters=3)
        assert sieve_config_from_dict(sieve_config_to_dict(sieve)) \
            == sieve
        streaming = StreamingConfig(window=30.0, hop=15.0,
                                    retention=240.0, sieve=sieve)
        restored = streaming_config_from_dict(
            streaming_config_to_dict(streaming))
        assert restored == streaming
        assert restored.sieve.granger_lags == (2, 4)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="unknown mode"):
            RunSpec(mode="warp")
        with pytest.raises(ValueError, match="needs a storage path"):
            RunSpec(mode="record")
        with pytest.raises(ValueError, match="needs a journal"):
            RunSpec(mode="stream", resume=True, checkpoint="c.json")
        with pytest.raises(ValueError, match="needs a checkpoint"):
            RunSpec(mode="stream", resume=True, journal="j.log")

    def test_telemetry_spec_validation(self):
        with pytest.raises(ValueError, match="port"):
            TelemetrySpec(port=-1)
        with pytest.raises(ValueError, match="port"):
            TelemetrySpec(port=70_000)
        with pytest.raises(ValueError, match="span_history"):
            TelemetrySpec(span_history=0)
        with pytest.raises(ValueError, match="unknown exporter"):
            TelemetrySpec(exporters=("statsd",))

    def test_telemetry_spec_active(self):
        assert not TelemetrySpec().active
        assert TelemetrySpec(enabled=True).active
        # A scrape port implies collection: serving dead metrics
        # helps no one.
        assert TelemetrySpec(port=9464).active

    def test_telemetry_spec_round_trip(self):
        spec = RunSpec(telemetry=TelemetrySpec(
            enabled=True, span_history=16,
            exporters=["prometheus", "json"],
        ))
        restored = RunSpec.from_dict(json.loads(
            json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.telemetry.exporters == ("prometheus", "json")

    def test_builder_produces_equivalent_spec(self, tmp_path):
        spec = (PipelineBuilder("demo-chain").mode("stream")
                .workload("constant", rate=40.0)
                .streaming(window=25.0, hop=5.0, retention=200.0,
                           adaptive_hop=True, hop_min=2.5,
                           hop_max=20.0, writer="async")
                .sieve(max_clusters=5, granger_lags=(1, 2, 3))
                .executor("thread", workers=3)
                .storage("spill", str(tmp_path / "run.db"),
                         retention=60.0, hot_points=64)
                .journal("j.log").checkpoint("c.json")
                .consumer("rca", latency_threshold=2.0)
                .consumer("scaling", component="back",
                          scale_up=0.8, scale_down=0.2)
                .telemetry(port=9464, host="0.0.0.0",
                           span_history=32, exporters=("json",),
                           options={"indent": 2})
                .compare().duration(55.0).seed(7)
                .extra(note="custom").spec())
        assert spec == self._custom_spec(tmp_path)


# ---------------------------------------------------------------------------
# Legacy wiring vs repro.api: identical analyses


class TestLegacyVsApi:
    def test_batch_pipeline_matches_legacy_sieve(self):
        legacy = Sieve(_chain_app()).run(
            constant_rate(40.0), duration=60.0, seed=2,
            workload_name="constant",
        )
        spec = RunSpec(mode="pipeline", app="demo-chain", seed=2,
                       duration=60.0,
                       workload=WorkloadSpec("constant", rate=40.0))
        with build_pipeline(spec) as session:
            api_result = session.run()
        assert _clustering_fingerprint(legacy.clusterings) \
            == _clustering_fingerprint(api_result.clusterings)
        assert edge_jaccard(legacy.dependency_graph,
                            api_result.dependency_graph,
                            level="metric") == 1.0

    def test_stream_matches_legacy_wiring(self):
        config = StreamingConfig(window=20.0, hop=10.0, retention=120.0)
        engine = StreamingSieve(config=config, seed=3,
                                application="demo", workload="constant")
        legacy_driver = SimulationStreamDriver(
            _chain_app(), constant_rate(40.0), config=config, seed=3,
            workload_name="constant", record_frame=False,
            engine=engine,
        )
        try:
            legacy_windows = legacy_driver.run(60.0)
        finally:
            legacy_driver.close()

        spec = RunSpec(mode="stream", app="demo-chain", seed=3,
                       duration=60.0,
                       workload=WorkloadSpec("constant", rate=40.0),
                       streaming=config)
        with build_pipeline(spec) as session:
            outcome = session.run()
        assert len(outcome.analyses) == len(legacy_windows)
        for left, right in zip(outcome.analyses, legacy_windows):
            assert (left.index, left.start, left.end) \
                == (right.index, right.start, right.end)
            _assert_same_analysis(left, right)


# ---------------------------------------------------------------------------
# Spec-emitted reproducibility + CLI-vs-API equivalence


def _stream_spec(seed=3, **overrides):
    base = dict(mode="stream", app="demo-chain", seed=seed,
                duration=60.0,
                workload=WorkloadSpec("constant", rate=40.0),
                streaming=StreamingConfig(window=20.0, hop=10.0,
                                          retention=120.0))
    base.update(overrides)
    return RunSpec(**base)


class TestSpecReproducibility:
    def test_saved_spec_reproduces_run(self, tmp_path):
        spec = _stream_spec()
        with build_pipeline(spec) as session:
            first = session.run()
        path = tmp_path / "run.json"
        save_spec(spec, path)
        with build_pipeline(load_spec(path)) as session:
            second = session.run()
        assert len(first.analyses) == len(second.analyses)
        for left, right in zip(first.analyses, second.analyses):
            _assert_same_analysis(left, right)

    def test_cli_spec_emission_matches_flags(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.json"
        assert main(["spec", "stream", "--app", "demo-chain",
                     "--workload", "constant", "--rate", "40",
                     "--duration", "60", "--seed", "3",
                     "-o", str(out)]) == 0
        capsys.readouterr()
        emitted = load_spec(out)
        # The CLI pins its own defaults: the per-window checkpoint
        # cadence and the backend kind --store would use.
        expected = _stream_spec(
            streaming=StreamingConfig(
                window=20.0, hop=10.0, retention=120.0,
                checkpoint_every_windows=1,
            ),
            storage=StorageSpec("sqlite", ""),
        )
        assert emitted == expected

    def test_cli_refeeds_emitted_spec(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.json"
        args = ["--app", "demo-chain", "--workload", "constant",
                "--rate", "40", "--duration", "50", "--seed", "3"]
        assert main(["spec", "stream", *args, "-o", str(out)]) == 0
        capsys.readouterr()
        assert main(["stream", *args]) == 0
        flags_out = capsys.readouterr().out
        assert main(["stream", "--spec", str(out)]) == 0
        spec_out = capsys.readouterr().out

        def window_lines(text):
            # Strip the timing column: wall-clock is not reproducible.
            return [line.split("analysis=")[0].strip()
                    for line in text.splitlines()
                    if line.startswith("window")]

        assert window_lines(flags_out) == window_lines(spec_out)
        assert window_lines(flags_out)

    def test_builder_checkpoint_defaults_to_every_window(self):
        spec = (PipelineBuilder("demo-chain").mode("stream")
                .checkpoint("c.json").journal("j.log").spec())
        assert spec.streaming.checkpoint_every_windows == 1
        manual = (PipelineBuilder("demo-chain").mode("stream")
                  .checkpoint("c.json", every=0).journal("j.log")
                  .spec())
        assert manual.streaming.checkpoint_every_windows == 0
        pinned = (PipelineBuilder("demo-chain").mode("stream")
                  .streaming(checkpoint_every_windows=3)
                  .checkpoint("c.json").journal("j.log").spec())
        assert pinned.streaming.checkpoint_every_windows == 3

    def test_cli_spec_errors_exit_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        # Every subcommand maps spec/user errors to stderr + exit 2,
        # not a traceback -- including the non-stream ones.
        assert main(["pipeline", "--spec",
                     str(tmp_path / "missing.toml")]) == 2
        assert "missing.toml" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text('{"mode": "stream", "turbo": true}')
        assert main(["pipeline", "--spec", str(bad)]) == 2
        assert "turbo" in capsys.readouterr().err

    def test_cli_spec_uppercase_toml_suffix(self, tmp_path, capsys):
        pytest.importorskip("tomllib")
        from repro.cli import main

        out = tmp_path / "run.TOML"
        assert main(["spec", "stream", "--workload", "constant",
                     "-o", str(out)]) == 0
        capsys.readouterr()
        # Emitted as TOML (not JSON), so the re-feed path -- which
        # dispatches on the lower-cased suffix -- parses it.
        assert load_spec(out).workload.kind == "constant"

    def test_cli_flags_override_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.json"
        save_spec(_stream_spec(), out)
        assert main(["spec", "stream", "--spec", str(out),
                     "--seed", "9", "--window", "30"]) == 0
        emitted = json.loads(capsys.readouterr().out)
        assert emitted["seed"] == 9
        assert emitted["streaming"]["window"] == 30.0
        # Everything not overridden comes from the file.
        assert emitted["workload"]["kind"] == "constant"
        assert emitted["duration"] == 60.0


class TestCLIvsAPI:
    def test_record_equivalence(self, tmp_path, capsys):
        from repro.cli import main

        cli_db = tmp_path / "cli.db"
        api_db = tmp_path / "api.db"
        assert main(["record", "--app", "demo-chain",
                     "--backend", "sqlite", "--out", str(cli_db),
                     "--duration", "20", "--workload", "constant",
                     "--rate", "40", "--seed", "3"]) == 0
        capsys.readouterr()
        spec = RunSpec(mode="record", app="demo-chain", seed=3,
                       duration=20.0,
                       workload=WorkloadSpec("constant", rate=40.0),
                       storage=StorageSpec("sqlite", str(api_db)))
        with build_pipeline(spec) as session:
            outcome = session.run()
        cli_backend = SqliteBackend(cli_db)
        api_backend = SqliteBackend(api_db)
        try:
            assert outcome.samples == cli_backend.sample_count()
            assert outcome.series == cli_backend.series_count()
            assert cli_backend.keys() == api_backend.keys()
            for key in cli_backend.keys():
                left = cli_backend.query(key.component, key.metric)
                right = api_backend.query(key.component, key.metric)
                assert np.array_equal(left.times, right.times)
                assert np.array_equal(left.values, right.values)
            cli_meta = cli_backend.metadata()
            assert cli_meta["spec"]["mode"] == "record"
            assert cli_meta["seed"] == api_backend.metadata()["seed"]
        finally:
            cli_backend.close()
            api_backend.close()

    def test_replay_equivalence(self, tmp_path, capsys):
        from repro.cli import main

        db = tmp_path / "run.db"
        spec = RunSpec(mode="record", app="demo-chain", seed=3,
                       duration=20.0,
                       workload=WorkloadSpec("constant", rate=40.0),
                       storage=StorageSpec("sqlite", str(db)))
        with build_pipeline(spec) as session:
            session.run()
        replay_spec = RunSpec(mode="replay",
                              storage=StorageSpec("sqlite", str(db)))
        with build_pipeline(replay_spec) as session:
            outcome = session.run()
        assert main(["replay", "--backend", "sqlite",
                     "--path", str(db)]) == 0
        out = capsys.readouterr().out
        summary = outcome.result.summary()
        assert f"reduction_factor: {summary['reduction_factor']}" in out
        assert "network_out_bytes" in out
        assert len(outcome.costs) == 4
        assert all(before >= after
                   for _, before, after, _ in outcome.costs)

    def test_stream_equivalence(self, capsys):
        from repro.cli import main

        assert main(["stream", "--app", "demo-chain",
                     "--workload", "constant", "--rate", "40",
                     "--duration", "60", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        with build_pipeline(_stream_spec()) as session:
            outcome = session.run()
        cli_windows = [line for line in out.splitlines()
                       if line.startswith("window")]
        assert len(cli_windows) == len(outcome.analyses)
        assert f"windows: {outcome.summary['windows']}" in out
        assert (f"points_published: "
                f"{outcome.summary['points_published']}") in out


# ---------------------------------------------------------------------------
# Sessions: consumers, checkpoint spec embedding, resume revalidation


class TestSessions:
    def test_stream_session_wires_consumers(self):
        spec = _stream_spec(consumers=(
            ConsumerSpec("rca", {"latency_threshold": 5.0}),
        ))
        with build_pipeline(spec) as session:
            session.run()
            rca = session.consumers["rca"]
            assert rca.windows_seen > 0

    def test_checkpoint_embeds_spec_and_resume_revalidates(
            self, tmp_path):
        spec = _stream_spec(
            journal=str(tmp_path / "j.log"),
            checkpoint=str(tmp_path / "c.json"),
            duration=50.0,
            streaming=StreamingConfig(window=20.0, hop=10.0,
                                      retention=120.0,
                                      checkpoint_every_windows=1),
        )
        with build_pipeline(spec) as session:
            session.run()
        state = load_checkpoint(spec.checkpoint)
        assert state["spec"] == spec.to_dict()

        # Same declared run -> resume builds fine.
        resumed = dataclasses.replace(spec, resume=True, duration=60.0)
        session = build_pipeline(resumed)
        assert session.resumed
        session.close()

        # A different workload rate is a different trace: refused.
        mismatched = dataclasses.replace(
            resumed,
            workload=WorkloadSpec("constant", rate=80.0),
        )
        with pytest.raises(ValueError, match="mismatch"):
            build_pipeline(mismatched)

    def test_run_spec_convenience(self):
        from repro.api import run_spec

        result = run_spec(RunSpec(mode="catalog", app="demo-chain"))
        assert result.name == "demo"

    def test_record_embeds_spec_in_metadata(self, tmp_path):
        spec = RunSpec(mode="record", app="demo-chain", seed=1,
                       duration=10.0,
                       workload=WorkloadSpec("constant", rate=30.0),
                       storage=StorageSpec("sqlite",
                                           str(tmp_path / "r.db")))
        with build_pipeline(spec) as session:
            session.run()
        backend = SqliteBackend(tmp_path / "r.db")
        try:
            assert RunSpec.from_dict(backend.metadata()["spec"]) == spec
        finally:
            backend.close()


# ---------------------------------------------------------------------------
# Compaction


class TestSpillCompaction:
    def _fragmented(self, tmp_path):
        """Three small cold segments (partial tails over reopens)."""
        t = 0.0
        for _ in range(3):
            backend = SpillBackend(tmp_path / "d", hot_points=64)
            times = [t + 0.5 * i for i in range(4)]
            backend.write("web", "cpu", times,
                          [float(i) for i in range(4)])
            t = times[-1] + 0.5
            backend.close()
        return SpillBackend(tmp_path / "d", hot_points=64)

    def test_merges_small_segments(self, tmp_path):
        backend = self._fragmented(tmp_path)
        key = MetricKey("web", "cpu")
        assert len(backend._segments[key]) == 3
        reference = backend.query("web", "cpu")
        stats = backend.compact()
        assert stats["segments_merged"] == 3
        assert stats["segments_written"] == 1
        assert len(backend._segments[key]) == 1
        merged = backend.query("web", "cpu")
        assert np.array_equal(merged.times, reference.times)
        assert np.array_equal(merged.values, reference.values)
        # The merged sources are gone from disk.
        segment_files = list((tmp_path / "d").glob("seg-*.npz"))
        assert len(segment_files) == 1
        backend.close()

    def test_merged_directory_reopens(self, tmp_path):
        backend = self._fragmented(tmp_path)
        reference = backend.query("web", "cpu")
        backend.compact()
        backend.close()
        reopened = SpillBackend(tmp_path / "d")
        restored = reopened.query("web", "cpu")
        assert np.array_equal(restored.times, reference.times)
        assert np.array_equal(restored.values, reference.values)
        # ... and the ordering guard still rejects the past.
        with pytest.raises(ValueError, match="out-of-order"):
            reopened.write("web", "cpu", [0.0], [0.0])
        reopened.close()

    def test_retention_drops_old_segments(self, tmp_path):
        backend = SpillBackend(tmp_path / "d", hot_points=8)
        for chunk in range(3):
            times = [8 * chunk + i for i in range(8)]
            backend.write("web", "cpu", times, times)
        assert len(backend._segments[MetricKey("web", "cpu")]) == 3
        before = backend.sample_count()
        stats = backend.compact(retention=10.0)
        # newest=23 -> cutoff 13: the first segment (ends at 7) drops,
        # the second (ends at 15) still overlaps and must survive.
        assert stats["segments_dropped"] == 1
        assert stats["samples_dropped"] == 8
        assert backend.sample_count() == before - 8
        kept = backend.query("web", "cpu")
        assert kept.times[0] == 8.0
        assert kept.times[-1] == 23.0
        backend.close()

    def test_compact_min_points_is_registry_visible(self, tmp_path):
        backend = open_backend("spill", tmp_path / "d",
                               compact_min_points=2)
        assert backend.compact_min_points == 2
        backend.close()

    def test_quiet_series_keeps_history(self, tmp_path):
        """Retention anchors per series: a quiet series' only segment
        survives even when another series is far ahead."""
        backend = SpillBackend(tmp_path / "d", hot_points=8)
        backend.write("quiet", "cpu", [float(i) for i in range(8)],
                      [0.0] * 8)
        backend.write("busy", "cpu",
                      [1000.0 + i for i in range(8)], [0.0] * 8)
        stats = backend.compact(retention=5.0)
        assert stats["segments_dropped"] == 0
        assert len(backend.query("quiet", "cpu")) == 8
        backend.close()


class TestSqliteTrim:
    def test_trim_drops_past_retention_per_series(self, tmp_path):
        backend = SqliteBackend(tmp_path / "x.db")
        backend.write("busy", "cpu",
                      [float(i) for i in range(100)],
                      [0.0] * 100)
        backend.write("quiet", "cpu",
                      [float(i) for i in range(10)], [0.0] * 10)
        stats = backend.trim(retention=10.0)
        # busy: newest 99 -> drops t < 89 (89 points); quiet keeps all.
        assert stats["points_deleted"] == 89
        assert backend.sample_count() == 21
        assert len(backend.query("quiet", "cpu")) == 10
        busy = backend.query("busy", "cpu")
        assert busy.times[0] == 89.0
        # Appends after a trim still pass the ordering guard.
        backend.write("busy", "cpu", [100.0], [1.0])
        backend.close()

    def test_trim_without_retention_only_vacuums(self, tmp_path):
        backend = SqliteBackend(tmp_path / "x.db")
        backend.write("web", "cpu", [0.0, 1.0], [0.0, 1.0])
        assert backend.trim() == {"points_deleted": 0,
                                  "points_rolled": 0,
                                  "rollup_buckets_written": 0}
        assert backend.sample_count() == 2
        backend.close()

    def test_memory_backend_compact_is_noop(self):
        backend = MemoryBackend()
        backend.write("web", "cpu", [0.0], [1.0])
        assert backend.compact(retention=0.0) == {}
        assert backend.sample_count() == 1

    def test_batching_writer_forwards_compact(self, tmp_path):
        from repro.parallel import BatchingWriter

        writer = BatchingWriter(SqliteBackend(tmp_path / "x.db"))
        writer.write("web", "cpu", [float(i) for i in range(50)],
                     [0.0] * 50)
        stats = writer.compact(retention=9.0)
        assert stats["points_deleted"] == 40
        assert writer.sample_count() == 10
        writer.close()


class TestSessionCompact:
    def test_stream_session_compact_trims_store(self, tmp_path):
        spec = _stream_spec(
            duration=50.0,
            storage=StorageSpec("sqlite", str(tmp_path / "s.db"),
                                retention=10.0),
        )
        with build_pipeline(spec) as session:
            session.run()
            before = session.backend.sample_count()
            stats = session.compact()
            assert stats["points_deleted"] > 0
            assert session.backend.sample_count() \
                == before - stats["points_deleted"]

    def test_compact_without_backend_is_noop(self):
        with build_pipeline(_stream_spec(duration=30.0)) as session:
            session.run()
            assert session.compact() == {}


# ---------------------------------------------------------------------------
# Adaptive analysis cadence


class TestAdaptiveHop:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="hop_min <= hop"):
            StreamingConfig(adaptive_hop=True, hop=10.0, hop_min=15.0,
                            hop_max=20.0)
        config = StreamingConfig(adaptive_hop=True, hop=10.0)
        assert config.hop_bounds() == (10.0, 40.0)

    def test_off_by_default_and_fixed(self):
        config = StreamingConfig(window=20.0, hop=10.0)
        engine = StreamingSieve(config=config, seed=1)
        assert not config.adaptive_hop
        quiet = SimpleNamespace(recluster_reasons={}, reclustered=[])
        engine._adapt_hop(quiet)
        assert engine.current_hop == 10.0
        engine.close()

    def test_pressure_scales_hop(self):
        config = StreamingConfig(window=20.0, hop=10.0,
                                 adaptive_hop=True, hop_min=2.5,
                                 hop_max=40.0)
        engine = StreamingSieve(config=config, seed=1)
        quiet = SimpleNamespace(recluster_reasons={}, reclustered=[])
        drifted = SimpleNamespace(
            recluster_reasons={"back": "drift"}, reclustered=["back"])
        structural = SimpleNamespace(
            recluster_reasons={"back": "metric-set"},
            reclustered=["back"])
        for _ in range(10):
            engine._adapt_hop(quiet)
        assert engine.current_hop == 40.0  # capped at hop_max
        engine._adapt_hop(structural)
        assert engine.current_hop == 40.0  # structural change: hold
        for _ in range(10):
            engine._adapt_hop(drifted)
        assert engine.current_hop == 2.5  # floored at hop_min
        engine._adapt_hop(None)  # skipped window: hold
        assert engine.current_hop == 2.5
        engine.close()

    def test_quiet_system_analyzes_less_often(self):
        def run(adaptive):
            streaming = StreamingConfig(
                window=20.0, hop=10.0, retention=120.0,
                adaptive_hop=adaptive, hop_max=40.0,
            )
            driver = SimulationStreamDriver(
                _chain_app(), constant_rate(40.0), config=streaming,
                seed=3, record_frame=False,
            )
            try:
                windows = driver.run(120.0)
            finally:
                driver.close()
            return windows, driver.engine.current_hop

        fixed_windows, fixed_hop = run(adaptive=False)
        adaptive_windows, adaptive_hop = run(adaptive=True)
        assert fixed_hop == 10.0
        assert adaptive_hop > 10.0  # the cadence stretched
        assert len(adaptive_windows) < len(fixed_windows)

    def test_current_hop_survives_checkpoint(self, tmp_path):
        config = StreamingConfig(window=20.0, hop=10.0,
                                 adaptive_hop=True, hop_max=40.0)
        engine = StreamingSieve(config=config, seed=1,
                                application="demo",
                                workload="constant")
        engine.current_hop = 17.5
        path = tmp_path / "c.json"
        save_checkpoint(engine, path)
        restored = restore_engine(path, config)
        assert restored.current_hop == 17.5
        engine.close()
        restored.close()

    def test_summary_reports_current_hop(self):
        engine = StreamingSieve(
            config=StreamingConfig(window=20.0, hop=10.0), seed=1)
        assert engine.summary()["current_hop"] == 10.0
        engine.close()
