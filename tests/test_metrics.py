"""Tests for the monitoring infrastructure (repro.metrics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    Collector,
    CostModel,
    MetricFrame,
    MetricKey,
    MetricsStore,
    TimeSeries,
)
from repro.metrics.accounting import ResourceUsage, reduction_percent


class TestTimeSeries:
    def test_append_and_read(self):
        ts = TimeSeries(MetricKey("web", "cpu_usage"))
        ts.append(0.0, 1.0)
        ts.append(0.5, 2.0)
        assert len(ts) == 2
        np.testing.assert_array_equal(ts.times, [0.0, 0.5])
        np.testing.assert_array_equal(ts.values, [1.0, 2.0])

    def test_rejects_out_of_order(self):
        ts = TimeSeries(MetricKey("web", "cpu_usage"))
        ts.append(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(0.5, 2.0)

    def test_variance_and_unvarying(self):
        flat = TimeSeries(MetricKey("c", "m"), [0, 1, 2], [5.0, 5.0, 5.0])
        assert flat.variance() == 0.0
        assert flat.is_unvarying()
        busy = TimeSeries(MetricKey("c", "m2"), [0, 1, 2], [1.0, 5.0, 9.0])
        assert not busy.is_unvarying()

    def test_window(self):
        ts = TimeSeries(MetricKey("c", "m"), [0, 1, 2, 3], [0, 1, 2, 3.0])
        sub = ts.window(1.0, 2.0)
        np.testing.assert_array_equal(sub.times, [1.0, 2.0])

    def test_resampled_length(self):
        ts = TimeSeries(MetricKey("c", "m"), [0.0, 1.0, 2.0],
                        [0.0, 1.0, 2.0])
        assert ts.resampled(interval=0.5).size == 5

    def test_last_value(self):
        ts = TimeSeries(MetricKey("c", "m"))
        assert ts.last_value(default=-1.0) == -1.0
        ts.append(0.0, 3.0)
        assert ts.last_value() == 3.0

    def test_extend_matches_append(self):
        times = np.linspace(0.0, 10.0, 40)
        values = np.sin(times)
        bulk = TimeSeries(MetricKey("c", "m"))
        bulk.extend(times, values)
        pointwise = TimeSeries(MetricKey("c", "m"))
        for t, v in zip(times, values):
            pointwise.append(t, v)
        np.testing.assert_array_equal(bulk.times, pointwise.times)
        np.testing.assert_array_equal(bulk.values, pointwise.values)

    def test_extend_validates_order(self):
        ts = TimeSeries(MetricKey("c", "m"), [0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            ts.extend([0.5, 2.0], [1.0, 2.0])  # behind the last sample
        with pytest.raises(ValueError):
            ts.extend([2.0, 1.5], [1.0, 2.0])  # internally unordered
        with pytest.raises(ValueError):
            ts.extend([2.0, 3.0], [1.0])  # length mismatch
        ts.extend([], [])  # empty batch is a no-op
        assert len(ts) == 2

    def test_constructor_rejects_unsorted_times(self):
        with pytest.raises(ValueError):
            TimeSeries(MetricKey("c", "m"), [3.0, 1.0, 2.0],
                       [0.0, 0.0, 0.0])

    def test_extend_then_append_interleave(self):
        ts = TimeSeries(MetricKey("c", "m"))
        ts.extend([0.0, 1.0], [0.0, 1.0])
        ts.append(2.0, 2.0)
        ts.extend([2.5, 3.0], [2.5, 3.0])
        np.testing.assert_array_equal(ts.times,
                                      [0.0, 1.0, 2.0, 2.5, 3.0])


class TestMetricFrame:
    def test_series_creation_and_lookup(self):
        frame = MetricFrame()
        frame.series("web", "cpu").append(0.0, 1.0)
        assert MetricKey("web", "cpu") in frame
        assert frame.metrics_of("web") == ["cpu"]
        assert frame.components == ["web"]

    def test_duplicate_add_rejected(self):
        frame = MetricFrame()
        frame.add(TimeSeries(MetricKey("a", "m")))
        with pytest.raises(KeyError):
            frame.add(TimeSeries(MetricKey("a", "m")))

    def test_component_view(self):
        frame = MetricFrame()
        frame.series("a", "m1").append(0, 1)
        frame.series("a", "m2").append(0, 1)
        frame.series("b", "m1").append(0, 1)
        assert set(frame.component_view("a")) == {"m1", "m2"}

    def test_varying_filter(self):
        frame = MetricFrame()
        for t in range(5):
            frame.series("a", "flat").append(t, 1.0)
            frame.series("a", "busy").append(t, float(t))
        assert list(frame.varying_metrics_of("a")) == ["busy"]

    def test_time_span_and_samples(self):
        frame = MetricFrame()
        frame.series("a", "m").append(1.0, 0.0)
        frame.series("b", "m").append(4.0, 0.0)
        assert frame.time_span() == (1.0, 4.0)
        assert frame.total_samples() == 2

    def test_empty_time_span_raises(self):
        with pytest.raises(ValueError):
            MetricFrame().time_span()


class TestAccounting:
    def test_write_charges_all_resources(self):
        usage = ResourceUsage()
        model = CostModel()
        usage.charge_write(MetricKey("a", "m"), 100, model)
        assert usage.cpu_seconds > 0
        assert usage.db_bytes > 0
        assert usage.network_in_bytes == 100 * model.wire_bytes_per_sample
        assert usage.samples_written == 100

    def test_new_series_pays_index_cost(self):
        usage = ResourceUsage()
        model = CostModel()
        usage.charge_write(MetricKey("a", "m"), 1, model)
        first_db = usage.db_bytes
        usage.charge_write(MetricKey("a", "m"), 1, model)
        # Second write of the same series: no index cost again.
        assert usage.db_bytes - first_db == model.bytes_stored_per_sample

    def test_reduction_percent(self):
        assert reduction_percent(100.0, 20.0) == pytest.approx(80.0)
        with pytest.raises(ValueError):
            reduction_percent(0.0, 1.0)

    @given(st.integers(1, 10_000), st.integers(1, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_costs_scale_with_samples(self, n_samples, n_series):
        usage = ResourceUsage()
        model = CostModel()
        for i in range(n_series):
            usage.charge_write(MetricKey("c", f"m{i}"), n_samples, model)
        assert usage.samples_written == n_samples * n_series
        assert usage.network_in_bytes == pytest.approx(
            n_samples * n_series * model.wire_bytes_per_sample
        )


class TestMetricsStore:
    def test_write_and_query(self):
        store = MetricsStore()
        store.write_point("web", "cpu", 0.0, 10.0)
        store.write_point("web", "cpu", 1.0, 20.0)
        result = store.query("web", "cpu", 0.5, 2.0)
        np.testing.assert_array_equal(result.values, [20.0])

    def test_query_unknown_is_empty(self):
        store = MetricsStore()
        assert len(store.query("nope", "nothing")) == 0

    def test_replay_full_vs_reduced(self):
        """The Table 3 mechanism: replaying a subset costs less."""
        frame = MetricFrame()
        for metric in ("m1", "m2", "m3", "m4"):
            for t in range(50):
                frame.series("c", metric).append(float(t), float(t))

        full = MetricsStore()
        full.replay_frame(frame)
        reduced = MetricsStore()
        reduced.replay_frame(frame, keep=[MetricKey("c", "m1")])

        assert reduced.sample_count() == 50
        assert full.sample_count() == 200
        for key in ("cpu_seconds", "db_bytes", "network_in_bytes"):
            assert reduced.usage.summary()[key] < full.usage.summary()[key]

    def test_write_series_vectorized_equals_pointwise(self):
        ts = TimeSeries(MetricKey("c", "m"),
                        np.arange(30.0), np.arange(30.0) * 2)
        bulk = MetricsStore()
        bulk.write_series(ts)
        pointwise = MetricsStore()
        for t, v in zip(ts.times, ts.values):
            pointwise.write_point("c", "m", t, v)
        np.testing.assert_array_equal(
            bulk.query("c", "m").values, pointwise.query("c", "m").values)
        assert bulk.sample_count() == pointwise.sample_count() == 30

    def test_write_batch(self):
        store = MetricsStore()
        store.write_batch("c", "m", [0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert store.sample_count() == 3
        assert store.usage.samples_written == 3

    def test_dashboard_reads_charge_egress(self):
        store = MetricsStore()
        for t in range(100):
            store.write_point("c", "m", float(t), 1.0)
        before = store.usage.network_out_bytes
        store.simulate_dashboard_reads()
        assert store.usage.network_out_bytes > before


class _StubExporter:
    name = "stub"

    def __init__(self):
        self.calls = 0

    def sample_metrics(self, now):
        self.calls += 1
        return {"metric_a": 1.0, "metric_b": float(now)}


class TestCollector:
    def test_scrape_collects_all_metrics(self):
        exporter = _StubExporter()
        collector = Collector([exporter], drop_probability=0.0, jitter=0.0)
        collector.run(0.0, 10.0)
        assert len(collector.frame) == 2
        assert len(collector.frame.series("stub", "metric_a")) == 21

    def test_drops_create_gaps(self):
        exporter = _StubExporter()
        collector = Collector([exporter], drop_probability=0.5, seed=3,
                              jitter=0.0)
        collector.run(0.0, 50.0)
        assert collector.dropped_scrapes > 0
        assert len(collector.frame.series("stub", "metric_a")) < 101

    def test_store_integration(self):
        store = MetricsStore()
        collector = Collector([_StubExporter()], drop_probability=0.0,
                              store=store)
        collector.run(0.0, 5.0)
        assert store.sample_count() == collector.frame.total_samples()

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Collector([], interval=0.0)
