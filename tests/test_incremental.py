"""Tests for incremental re-analysis (paper §9 future work)."""

import pytest

from repro.core import Sieve, analyze_incremental
from repro.core.incremental import changed_components
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.simulator.component import Component
from repro.workload import constant_rate


def _spec(name, extra_metric=False, **kwargs):
    custom = ()
    if extra_metric:
        custom = ((f"{name}_update_marker",
                   lambda comp, now: comp.total_request_rate() * 1.3),)
    defaults = dict(
        kind="generic",
        endpoints=(EndpointSpec("op", service_time=0.02),),
        concurrency=16,
        custom_metrics=custom,
    )
    defaults.update(kwargs)
    return ComponentSpec(name=name, **defaults)


def _app(update_backend=False):
    return Application("demo", [
        _spec("front", calls=(CallSpec("mid", delay=0.4),)),
        _spec("mid", calls=(CallSpec("back", delay=0.4),)),
        _spec("back", extra_metric=update_backend),
    ])


@pytest.fixture(scope="module")
def baseline():
    sieve = Sieve(_app())
    result = sieve.run(constant_rate(40.0), duration=60.0, seed=3)
    return sieve, result


class TestChangedComponents:
    def test_no_change_detected_for_same_version(self, baseline):
        sieve, result = baseline
        rerun = sieve.load(constant_rate(40.0), duration=60.0, seed=4)
        assert changed_components(result, rerun) == []

    def test_update_detected(self, baseline):
        _sieve, result = baseline
        updated = Sieve(_app(update_backend=True))
        rerun = updated.load(constant_rate(40.0), duration=60.0, seed=4)
        assert changed_components(result, rerun) == ["back"]


class TestAnalyzeIncremental:
    def test_reuses_untouched_components(self, baseline):
        _sieve, result = baseline
        updated = Sieve(_app(update_backend=True))
        rerun = updated.load(constant_rate(40.0), duration=60.0, seed=4)
        merged, stats = analyze_incremental(result, rerun, seed=3)
        assert stats.reclustered == ["back"]
        assert stats.reused == ["front", "mid"]
        # Reused clusterings are the same objects (no recomputation).
        assert merged.clusterings["front"] is result.clusterings["front"]
        assert merged.clusterings["back"] \
            is not result.clusterings["back"]

    def test_merged_graph_covers_all_components(self, baseline):
        _sieve, result = baseline
        updated = Sieve(_app(update_backend=True))
        rerun = updated.load(constant_rate(40.0), duration=60.0, seed=4)
        merged, stats = analyze_incremental(result, rerun, seed=3)
        assert set(merged.clusterings) == {"front", "mid", "back"}
        # front->mid relations (untouched pair) come from the old graph.
        old_front_mid = result.dependency_graph.relations_between(
            "front", "mid")
        new_front_mid = merged.dependency_graph.relations_between(
            "front", "mid")
        assert [r.source_metric for r in new_front_mid] \
            == [r.source_metric for r in old_front_mid]
        assert stats.edges_reused == len(old_front_mid) + len(
            result.dependency_graph.relations_between("mid", "front")
        )

    def test_no_change_means_full_reuse(self, baseline):
        sieve, result = baseline
        rerun = sieve.load(constant_rate(40.0), duration=60.0, seed=4)
        merged, stats = analyze_incremental(result, rerun, seed=3)
        assert stats.reclustered == []
        assert stats.edges_retested == 0
        assert len(merged.dependency_graph) == len(result.dependency_graph)

    def test_result_usable_downstream(self, baseline):
        """The merged result supports the same queries as a full one."""
        _sieve, result = baseline
        updated = Sieve(_app(update_backend=True))
        rerun = updated.load(constant_rate(40.0), duration=60.0, seed=4)
        merged, _stats = analyze_incremental(result, rerun, seed=3)
        assert merged.total_representatives() > 0
        assert merged.reduction_factor() > 1.0
        merged.summary()
