"""Tests for the streaming analysis engine (ingestion, windows, drift,
streaming-vs-batch convergence, live consumers)."""

import numpy as np
import pytest

from repro.causality.depgraph import edge_jaccard
from repro.core import StreamingConfig
from repro.metrics.timeseries import MetricKey
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.streaming import (
    DriftDetector,
    IngestionBus,
    LiveScalingPolicy,
    RingSeries,
    SimulationStreamDriver,
    WindowDiffRCA,
    WindowStore,
)
from repro.autoscaling import ScalingRule
from repro.workload import constant_rate

KEY = MetricKey("comp", "metric")


def _spec(name, shift=False, **kwargs):
    custom = ()
    if shift:
        # Behaviour shift with an unchanged metric set: load-coupled
        # before t=45, a large constant afterwards.
        custom = (("mode_gauge",
                   lambda comp, now: 500.0 if now > 45.0
                   else comp.total_request_rate() * 1.2),)
    defaults = dict(
        kind="generic",
        endpoints=(EndpointSpec("op", service_time=0.02),),
        concurrency=16,
        custom_metrics=custom,
    )
    defaults.update(kwargs)
    return ComponentSpec(name=name, **defaults)


def _chain_app(shift_backend=False):
    return Application("demo", [
        _spec("front", calls=(CallSpec("mid", delay=0.4),)),
        _spec("mid", calls=(CallSpec("back", delay=0.4),)),
        _spec("back", shift=shift_backend),
    ])


# ---------------------------------------------------------------------------
# Ring buffers and the window store


class TestRingSeries:
    def test_extend_and_read_back(self):
        ring = RingSeries(KEY, retention=100.0, max_points=64)
        ring.extend([1.0, 2.0, 3.0], [10.0, 20.0, 30.0])
        ring.append(4.0, 40.0)
        assert len(ring) == 4
        assert ring.times.tolist() == [1.0, 2.0, 3.0, 4.0]
        assert ring.values.tolist() == [10.0, 20.0, 30.0, 40.0]
        assert ring.span() == (1.0, 4.0)

    def test_rejects_out_of_order(self):
        ring = RingSeries(KEY, retention=100.0, max_points=64)
        ring.extend([1.0, 2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            ring.extend([1.5], [1.0])
        with pytest.raises(ValueError):
            ring.extend([3.0, 2.5], [1.0, 2.0])

    def test_count_bound_evicts_oldest(self):
        ring = RingSeries(KEY, retention=1e9, max_points=10)
        for i in range(25):
            ring.append(float(i), float(i))
        assert len(ring) == 10
        assert ring.times.tolist() == [float(i) for i in range(15, 25)]
        assert ring.evicted == 15

    def test_retention_bound_evicts_old_samples(self):
        ring = RingSeries(KEY, retention=5.0, max_points=1000)
        ring.extend(np.arange(0.0, 20.0), np.zeros(20))
        # Newest sample is t=19; retention keeps t >= 14.
        assert ring.times.min() >= 14.0
        assert ring.evicted > 0

    def test_oversized_batch_keeps_tail(self):
        ring = RingSeries(KEY, retention=1e9, max_points=8)
        ring.extend(np.arange(100.0), np.arange(100.0))
        assert len(ring) == 8
        assert ring.times.tolist() == [float(i) for i in range(92, 100)]

    def test_window_query(self):
        ring = RingSeries(KEY, retention=1e9, max_points=100)
        ring.extend(np.arange(10.0), np.arange(10.0) * 2)
        ts = ring.window(3.0, 6.0)
        assert ts.times.tolist() == [3.0, 4.0, 5.0, 6.0]
        assert ts.values.tolist() == [6.0, 8.0, 10.0, 12.0]

    def test_bounded_memory_under_sustained_load(self):
        ring = RingSeries(KEY, retention=50.0, max_points=128)
        t = 0.0
        for _ in range(200):
            ring.extend(t + np.arange(10.0) * 0.1, np.random.rand(10))
            t += 1.0
        assert len(ring) <= 128
        assert ring._times.size <= 2 * 128  # buffer itself stays bounded


class TestWindowStore:
    def test_ingest_shards_and_snapshots(self):
        store = WindowStore(retention=100.0, max_points_per_series=100)
        store.ingest("a", "m1", [1.0, 2.0], [1.0, 2.0])
        store.ingest("a", "m2", [1.0, 2.0], [3.0, 4.0])
        store.ingest("b", "m1", [1.5], [5.0])
        assert store.components == ["a", "b"]
        assert store.metrics_of("a") == ["m1", "m2"]
        assert store.series_count() == 3
        assert store.total_points() == 5
        assert store.first_time == 1.0

        frame = store.snapshot(1.5, 2.0)
        assert len(frame) == 3
        assert frame.get(MetricKey("a", "m1")).times.tolist() == [2.0]
        assert frame.get(MetricKey("b", "m1")).values.tolist() == [5.0]

    def test_snapshot_skips_empty_windows(self):
        store = WindowStore()
        store.ingest("a", "m1", [1.0], [1.0])
        frame = store.snapshot(5.0, 9.0)
        assert len(frame) == 0

    def test_eviction_keeps_totals_bounded(self):
        store = WindowStore(retention=10.0, max_points_per_series=32)
        for step in range(100):
            t = float(step)
            store.ingest("a", "m", [t], [0.0])
            store.ingest("b", "m", [t], [0.0])
        assert store.total_points() <= 2 * 32
        assert store.total_evicted() > 0


class TestIngestionBus:
    def test_publish_buffers_until_flush(self):
        bus = IngestionBus()
        received = []
        bus.subscribe(lambda c, m, t, v: received.append((c, m, t, v)))
        bus.publish("web", 1.0, {"cpu": 10.0, "mem": 20.0})
        bus.publish("web", 1.5, {"cpu": 11.0, "mem": 21.0})
        assert received == []
        assert bus.pending_points == 4
        delivered = bus.flush()
        assert delivered == 4
        assert bus.pending_points == 0
        by_key = {(c, m): (t.tolist(), v.tolist())
                  for c, m, t, v in received}
        assert by_key[("web", "cpu")] == ([1.0, 1.5], [10.0, 11.0])
        assert by_key[("web", "mem")] == ([1.0, 1.5], [20.0, 21.0])

    def test_subscribe_object_with_ingest(self):
        bus = IngestionBus()
        store = WindowStore()
        bus.subscribe(store)
        bus.publish_points("web", "cpu", [1.0, 2.0], [5.0, 6.0])
        bus.flush()
        assert store.total_points() == 2

    def test_out_of_order_points_rejected(self):
        bus = IngestionBus()
        bus.publish("web", 2.0, {"cpu": 1.0})
        bus.publish("web", 1.0, {"cpu": 2.0})  # behind: dropped
        assert bus.stats.rejected_points == 1
        assert bus.pending_points == 1

    def test_auto_flush_at_threshold(self):
        bus = IngestionBus(flush_threshold=4)
        store = WindowStore()
        bus.subscribe(store)
        for i in range(4):
            bus.publish("web", float(i), {"cpu": 0.0})
        assert bus.pending_points == 0  # threshold flushed automatically
        assert store.total_points() == 4

    def test_unordered_bulk_batch_rejected(self):
        bus = IngestionBus()
        bus.publish_points("web", "cpu", [2.0, 1.5], [1.0, 2.0])
        assert bus.stats.rejected_points == 2
        assert bus.pending_points == 0

    def test_failing_subscriber_does_not_drop_other_buffers(self):
        bus = IngestionBus()

        def explode(component, metric, times, values):
            if metric == "bad":
                raise RuntimeError("sink failure")

        bus.subscribe(explode)
        bus.publish_points("web", "bad", [1.0], [1.0])
        bus.publish_points("web", "cpu", [1.0], [1.0])
        bus.publish_points("db", "mem", [1.0], [1.0])
        with pytest.raises(RuntimeError):
            bus.flush()
        # Everything after the failing batch is requeued, not lost.
        assert bus.pending_points >= 1


# ---------------------------------------------------------------------------
# Drift detection (unit level)


class TestDriftDetectorUnit:
    def _baselined(self, values, metric="m"):
        from repro.clustering.reduction import reduce_component
        from repro.metrics.timeseries import TimeSeries

        times = np.arange(len(values)) * 0.5
        view = {metric: TimeSeries(MetricKey("c", metric), times, values)}
        clustering = reduce_component("c", view, seed=1)
        detector = DriftDetector(threshold=6.0)
        detector.rebase("c", clustering, view)
        return detector

    def _view(self, values, metric="m"):
        from repro.metrics.timeseries import TimeSeries

        times = np.arange(len(values)) * 0.5
        return {metric: TimeSeries(MetricKey("c", metric), times, values)}

    def test_quiet_on_same_distribution(self):
        rng = np.random.default_rng(1)
        detector = self._baselined(50.0 + rng.normal(0, 2.0, 60))
        readings = detector.score_component(
            "c", self._view(50.0 + rng.normal(0, 2.0, 60)))
        assert readings and not detector.is_drifted(readings)

    def test_fires_on_level_shift(self):
        rng = np.random.default_rng(1)
        detector = self._baselined(50.0 + rng.normal(0, 2.0, 60))
        readings = detector.score_component(
            "c", self._view(90.0 + rng.normal(0, 2.0, 60)))
        assert detector.is_drifted(readings)

    def test_counter_scored_on_rate_not_level(self):
        # A cumulative counter under steady rate: later windows sit at
        # much higher absolute levels but identical increments.
        increments = np.full(60, 10.0)
        detector = self._baselined(np.cumsum(increments))
        later = 6000.0 + np.cumsum(increments)
        readings = detector.score_component("c", self._view(later))
        assert readings and not detector.is_drifted(readings)
        # Rate doubling on the same counter is drift.
        doubled = 6000.0 + np.cumsum(np.full(60, 20.0))
        readings = detector.score_component("c", self._view(doubled))
        assert detector.is_drifted(readings)

    def test_variance_filtered_metric_still_watched(self):
        # Constant baseline -> filtered from clustering, but a later
        # jump must still register as drift.
        detector = self._baselined(np.full(60, 5.0))
        readings = detector.score_component("c", self._view(
            np.full(60, 205.0)))
        assert detector.is_drifted(readings)


# ---------------------------------------------------------------------------
# The engine end-to-end (co-simulation driver)


@pytest.fixture(scope="module")
def stationary_run():
    config = StreamingConfig(window=20.0, hop=10.0, retention=120.0)
    driver = SimulationStreamDriver(
        _chain_app(), constant_rate(40.0), config=config, seed=3,
    )
    analyses = driver.run(90.0)
    return driver, analyses


@pytest.fixture(scope="module")
def shifted_run():
    config = StreamingConfig(window=20.0, hop=10.0, retention=120.0)
    driver = SimulationStreamDriver(
        _chain_app(shift_backend=True), constant_rate(40.0),
        config=config, seed=3,
    )
    analyses = driver.run(90.0)
    return driver, analyses


class TestStreamingEngine:
    def test_windows_produced_on_schedule(self, stationary_run):
        _driver, analyses = stationary_run
        assert len(analyses) >= 5
        spans = [(a.start, a.end) for a in analyses]
        hops = np.diff([end for _start, end in spans])
        assert np.allclose(hops, 10.0)
        assert all(end - start == pytest.approx(20.0)
                   for start, end in spans)

    def test_first_window_clusters_everything(self, stationary_run):
        _driver, analyses = stationary_run
        first = analyses[0]
        assert set(first.recluster_reasons.values()) == {"initial"}
        assert first.reused == []

    def test_stationary_load_reuses_clusterings(self, stationary_run):
        driver, analyses = stationary_run
        stats = driver.engine.stats
        assert stats.drift_escalations == 0
        assert stats.reuse_fraction() > 0.5
        # After the initial window, later windows mostly reuse.
        assert all(len(a.reused) >= 2 for a in analyses[1:])

    def test_incremental_windows_cheaper_than_full(self, stationary_run):
        _driver, analyses = stationary_run
        full = analyses[0]
        reusing = [a for a in analyses[1:] if not a.reclustered]
        assert reusing, "expected fully-reused windows on stationary load"
        mean_reusing = np.mean([a.analysis_seconds for a in reusing])
        assert mean_reusing < full.analysis_seconds

    def test_summaries_are_printable(self, stationary_run):
        driver, analyses = stationary_run
        for analysis in analyses:
            summary = analysis.summary()
            assert {"window", "span", "metrics", "representatives",
                    "relations", "analysis_ms"} <= set(summary)
        engine_summary = driver.engine.summary()
        assert engine_summary["windows"] == len(analyses)
        assert engine_summary["rejected_points"] == 0

    def test_bounded_ingestion_memory(self, stationary_run):
        driver, _analyses = stationary_run
        store = driver.engine.windows
        # 90 s of load at 0.5 s scrapes with 120 s retention: bounded
        # by retention (and never by more than max_points).
        per_series = [len(store.series(c, m))
                      for c in store.components
                      for m in store.metrics_of(c)]
        assert max(per_series) <= driver.config.max_points_per_series

    def test_record_frame_false_keeps_session_bounded(self):
        config = StreamingConfig(window=10.0, hop=10.0, retention=30.0)
        driver = SimulationStreamDriver(
            _chain_app(), constant_rate(40.0), config=config, seed=4,
            record_frame=False,
        )
        driver.run(30.0)
        # Neither the cumulative frame nor the metered store grow in
        # streaming-only mode; retention lives in the window store.
        assert len(driver.session.collector.frame) == 0
        assert driver.session.store.sample_count() == 0
        assert driver.engine.windows.total_points() > 0
        with pytest.raises(ValueError):
            driver.batch_result()

    def test_vanished_component_relations_dropped(self, stationary_run):
        import dataclasses

        from repro.causality.depgraph import (
            DependencyGraph,
            MetricRelation,
        )
        from repro.core import StreamingConfig as SC
        from repro.streaming.analyzer import WindowAnalyzer

        driver, analyses = stationary_run
        base = analyses[-1]
        graph = DependencyGraph(
            components=base.dependency_graph.components)
        for relation in base.dependency_graph.relations:
            graph.add_relation(relation)
        graph.add_relation(MetricRelation(
            source_component="ghost", source_metric="m",
            target_component="front", target_metric="cpu_usage",
            lag=1, p_value=0.01,
        ))
        analyzer = WindowAnalyzer(config=SC(window=20.0, hop=10.0),
                                  seed=3)
        analyzer.previous = dataclasses.replace(
            base, dependency_graph=graph)
        # Re-analyze the same window but with 'back' silenced.
        frame = driver.engine.windows.snapshot(base.start, base.end)
        from repro.metrics.timeseries import MetricFrame
        partial = MetricFrame()
        for ts in frame:
            if ts.key.component != "back":
                partial.add(ts)
        analysis = analyzer.analyze(partial, base.call_graph,
                                    base.start, base.end, index=99)
        touched = {"back", "ghost"}
        assert not any(
            r.source_component in touched or r.target_component in touched
            for r in analysis.dependency_graph.relations
        )
        assert "back" not in analysis.clusterings


class TestDriftEscalation:
    def test_shift_reclusters_only_drifted_component(self, shifted_run):
        driver, analyses = shifted_run
        drift_windows = [a for a in analyses
                         if "drift" in a.recluster_reasons.values()]
        assert drift_windows, "injected shift never escalated"
        trigger = drift_windows[0]
        # Only the shifted backend is re-clustered; the untouched
        # components keep their clusterings (IncrementalStats-style).
        assert trigger.recluster_reasons == {"back": "drift"}
        assert trigger.reclustered == ["back"]
        assert set(trigger.reused) == {"front", "mid"}
        assert driver.engine.stats.drift_escalations >= 1

    def test_drift_evidence_names_shifted_metric(self, shifted_run):
        _driver, analyses = shifted_run
        trigger = next(a for a in analyses
                       if "drift" in a.recluster_reasons.values())
        scores = {r.metric: r.stat_score
                  for r in trigger.drift_readings["back"]}
        assert scores["mode_gauge"] > 6.0

    def test_quiet_again_after_rebase(self, shifted_run):
        driver, analyses = shifted_run
        trigger = next(i for i, a in enumerate(analyses)
                       if "drift" in a.recluster_reasons.values())
        for analysis in analyses[trigger + 2:]:
            assert "drift" not in analysis.recluster_reasons.values()


# ---------------------------------------------------------------------------
# Streaming vs batch convergence


class TestStreamingVsBatch:
    @pytest.fixture(scope="class")
    def converged(self):
        # Full-refresh windows + retention covering the whole trace:
        # the final full-retention analysis sees exactly the frame a
        # batch load records (shared LiveRunSession code path).
        config = StreamingConfig(window=20.0, hop=10.0, retention=300.0,
                                 full_refresh_windows=1)
        driver = SimulationStreamDriver(
            _chain_app(), constant_rate(40.0), config=config, seed=3,
        )
        windows = driver.run(60.0)
        final = driver.final_analysis()
        batch = driver.batch_result()
        return windows, final, batch

    def test_streams_multiple_windows(self, converged):
        windows, _final, _batch = converged
        assert len(windows) >= 3

    def test_representative_count_matches_batch(self, converged):
        _windows, final, batch = converged
        stream_reps = final.total_representatives()
        batch_reps = batch.total_representatives()
        # Acceptance bound is +-10%; the shared code path makes the
        # final full-retention analysis exactly equal.
        assert abs(stream_reps - batch_reps) <= 0.1 * batch_reps
        assert stream_reps == batch_reps

    def test_dependency_edges_match_batch(self, converged):
        _windows, final, batch = converged
        jac_component = edge_jaccard(final.dependency_graph,
                                     batch.dependency_graph)
        jac_metric = edge_jaccard(final.dependency_graph,
                                  batch.dependency_graph, level="metric")
        assert jac_component >= 0.8
        assert jac_metric >= 0.8
        assert jac_metric == 1.0

    def test_clusterings_identical_to_batch(self, converged):
        _windows, final, batch = converged
        for component in batch.run.frame.components:
            assert final.clusterings[component].labels() \
                == batch.clusterings[component].labels()

    def test_window_analysis_converts_to_sieve_result(self, converged):
        _windows, final, _batch = converged
        result = final.to_sieve_result()
        assert result.total_representatives() \
            == final.total_representatives()
        result.summary()


# ---------------------------------------------------------------------------
# Live consumers


class TestLiveScalingPolicy:
    def test_rebinds_to_streaming_guide(self, stationary_run):
        _driver, analyses = stationary_run
        rule = ScalingRule(component="mid", metric_component="mid",
                           metric="bootstrap", scale_up_threshold=80.0,
                           scale_down_threshold=10.0)
        policy = LiveScalingPolicy(rule)
        for analysis in analyses:
            policy.on_window(analysis)
        assert policy.windows_seen == len(analyses)
        assert policy.rebinds, "guide never elected"
        assert policy.guiding_metric \
            == analyses[-1].guiding_metric() \
            or policy.guiding_metric \
            == (policy.rebinds[-1].metric_component,
                policy.rebinds[-1].metric)
        assert policy.guiding_metric != ("mid", "bootstrap")

    def test_decide_uses_current_rule(self, stationary_run):
        _driver, analyses = stationary_run
        rule = ScalingRule(component="mid", metric_component="mid",
                           metric="bootstrap", scale_up_threshold=10.0,
                           scale_down_threshold=1.0)
        policy = LiveScalingPolicy(rule)
        policy.on_window(analyses[0])
        assert policy.decide(100.0, [50.0, 60.0], 1) == 1
        assert policy.decide(100.0, [50.0, 60.0], 1) == 0  # cooldown


class TestWindowDiffRCA:
    def test_diff_between_windows_produces_full_report(
            self, shifted_run):
        driver, _analyses = shifted_run
        assert len(driver.engine.history) >= 2
        report = WindowDiffRCA(driver.engine).compare(0, -1)
        # All five RCA steps ran over the two window snapshots.
        assert set(report.diffs) == {"front", "mid", "back"}
        assert set(report.cluster_novelty) == {"front", "mid", "back"}
        assert set(report.edge_classifications) == {0.0, 0.5, 0.6, 0.7}
        report.cluster_novelty_histogram()
        report.implicated_state()

    def test_window_pair_selection(self, stationary_run):
        driver, _analyses = stationary_run
        first, last = driver.engine.window_pair()
        assert first.index < last.index


class TestCLIStream:
    def test_parser_accepts_stream(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["stream", "--app", "sharelatex", "--duration", "60"])
        assert args.window == 20.0
        assert args.func.__name__ == "cmd_stream"
