"""Tests for the shared-memory shard transport (repro.parallel.shm):
segment pool allocation and the epoch protocol, payload pack/unpack,
executor registry wiring, serial == shm determinism, and -- the part
that has to hold under failure -- segment lifecycle: no leaked
``/dev/shm`` entries after a clean close, after a worker crash, or
across a checkpoint/resume cycle."""

import glob
import os
import signal
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import StreamingConfig
from repro.metrics.timeseries import MetricKey, TimeSeries
from repro.parallel import (
    EXECUTOR_KINDS,
    SegmentPool,
    ShardExecutor,
    ShmShardExecutor,
    make_executor,
)
from repro.parallel.shm import (
    ArrayRef,
    ShmTimeSeries,
    _pack,
    _SeriesRef,
    _unpack,
    resolve_ref,
)
from repro.persistence import CheckpointPolicy, restore_engine
from repro.streaming import SimulationStreamDriver
from repro.streaming.window import WindowStore
from repro.workload import constant_rate

from test_parallel import (
    _assert_same_analysis,
    _chain_app,
    _double,
)


def _assert_unlinked(names):
    """Every named segment must be gone from the OS namespace."""
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def _dev_shm_leftovers(prefix="repro-"):
    return glob.glob(f"/dev/shm/{prefix}*")


def _die(_payload):
    """Module-level crash task: a worker killed mid-window."""
    os.kill(os.getpid(), signal.SIGKILL)


def _series(key="cpu", n=64, seed=0):
    rng = np.random.default_rng(seed)
    return TimeSeries(MetricKey("web", key), 0.5 * np.arange(n),
                      rng.normal(0.0, 1.0, n))


def _shm_config(**kwargs):
    defaults = dict(window=20.0, hop=10.0, retention=120.0,
                    executor="shm", executor_workers=2)
    defaults.update(kwargs)
    return StreamingConfig(**defaults)


# ---------------------------------------------------------------------------
# SegmentPool


class TestSegmentPool:
    def test_ring_alloc_roundtrip_and_window_refs(self):
        pool = SegmentPool()
        times, values, loc = pool.alloc_ring(32)
        assert times.shape == values.shape == (32,)
        times[:8] = np.arange(8.0)
        values[:8] = 2.0 * np.arange(8.0)
        pool.begin_epoch()
        tref, vref = pool.ring_window_refs(loc, 2, 8)
        assert tref.shape == (6,) and tref.epoch == pool.epoch
        # The refs point at the live slab bytes, not a copy.
        assert np.array_equal(resolve_ref(tref), times[2:8])
        assert np.array_equal(resolve_ref(vref), values[2:8])
        pool.release_ring(loc)
        pool.close()

    def test_rings_share_slabs(self):
        pool = SegmentPool()
        locs = [pool.alloc_ring(64)[2] for _ in range(10)]
        assert pool.segment_count() == 1  # all carved from one slab
        assert len({loc.segment for loc in locs}) == 1
        pool.close()

    def test_stage_copies_and_epoch_resets_staging(self):
        pool = SegmentPool()
        data = np.arange(100.0)
        ref = pool.stage(data)
        assert pool.staged_bytes == data.nbytes
        assert np.array_equal(resolve_ref(ref), data)
        first_offset = ref.offset
        # Same epoch: staging space keeps growing.
        assert pool.stage(data).offset != first_offset
        # New epoch: the scratch cursor rewinds, space is reused.
        pool.begin_epoch()
        assert pool.stage(data).offset == first_offset
        pool.close()

    def test_begin_epoch_keeps_only_largest_staging_segment(self):
        pool = SegmentPool(slab_bytes=4096)
        pool.stage(np.zeros(400))       # fills the small scratch
        pool.stage(np.zeros(3000))      # second, larger segment
        assert pool.segment_count() == 2
        pool.begin_epoch()
        assert pool.segment_count() == 1
        assert pool.total_bytes() >= 3000 * 8
        pool.close()

    def test_stats_keys(self):
        pool = SegmentPool()
        pool.alloc_ring(16)
        stats = pool.stats()
        assert set(stats) == {"shm_segments", "shm_bytes",
                              "shm_epoch", "shm_staged_bytes"}
        pool.close()

    def test_close_unlinks_everything_and_is_idempotent(self):
        pool = SegmentPool()
        pool.alloc_ring(16)
        pool.stage(np.zeros(8))
        names = [seg for seg in pool._segments]
        assert names
        pool.close()
        pool.close()
        _assert_unlinked(names)
        with pytest.raises(RuntimeError, match="closed"):
            pool.stage(np.zeros(4))

    def test_rejects_tiny_slabs(self):
        with pytest.raises(ValueError, match="slab_bytes"):
            SegmentPool(slab_bytes=8)


# ---------------------------------------------------------------------------
# Pack / unpack and the epoch protocol


class TestPackUnpack:
    def test_current_epoch_annotation_ships_zero_copy(self):
        pool = SegmentPool()
        times, values, loc = pool.alloc_ring(64)
        ts = _series(n=64)
        times[:64] = ts.times_view
        values[:64] = ts.values_view
        pool.begin_epoch()
        annotated = ShmTimeSeries.annotate(
            ts, *pool.ring_window_refs(loc, 0, 64))
        packed = _pack({"cpu": annotated}, pool)
        assert isinstance(packed["cpu"], _SeriesRef)
        assert pool.staged_bytes == 0  # nothing copied
        rebuilt = _unpack(packed)["cpu"]
        assert np.array_equal(rebuilt.values_view, ts.values_view)
        assert not rebuilt.values_view.flags.writeable
        pool.close()

    def test_stale_annotation_falls_back_to_staging(self):
        pool = SegmentPool()
        times, values, loc = pool.alloc_ring(16)
        ts = _series(n=16)
        times[:16] = ts.times_view
        values[:16] = ts.values_view
        pool.begin_epoch()
        annotated = ShmTimeSeries.annotate(
            ts, *pool.ring_window_refs(loc, 0, 16))
        pool.begin_epoch()  # the annotation's coherence window closed
        packed = _pack(annotated, pool)
        assert pool.staged_bytes == 2 * 16 * 8  # staged, not shipped
        assert np.array_equal(_unpack(packed).values_view,
                              ts.values_view)
        pool.close()

    def test_plain_series_and_nested_containers(self):
        pool = SegmentPool()
        pool.begin_epoch()
        ts = _series()
        payload = ("comp", {"cpu": ts}, [1.5, ts], 7)
        rebuilt = _unpack(_pack(payload, pool))
        assert rebuilt[0] == "comp" and rebuilt[3] == 7
        assert np.array_equal(rebuilt[1]["cpu"].values_view,
                              ts.values_view)
        assert np.array_equal(rebuilt[2][1].times_view, ts.times_view)
        pool.close()

    def test_worker_refuses_stale_epoch(self):
        pool = SegmentPool()
        pool.begin_epoch()
        ref = pool.stage(np.arange(4.0))
        pool.begin_epoch()  # invalidates ref
        with pytest.raises(RuntimeError, match="stale shm reference"):
            resolve_ref(ref)
        pool.close()

    def test_worker_refuses_foreign_segment(self):
        alien = shared_memory.SharedMemory(create=True, size=64)
        try:
            ref = ArrayRef(alien.name, (2,), "float64", 16, 0)
            with pytest.raises(RuntimeError, match="no repro shm"):
                resolve_ref(ref)
        finally:
            alien.close()
            alien.unlink()


# ---------------------------------------------------------------------------
# Executor wiring


class TestShmExecutor:
    def test_registered_kind_and_factory(self):
        assert "shm" in EXECUTOR_KINDS
        executor = make_executor("shm", 2)
        assert type(executor) is ShmShardExecutor
        assert executor.kind == "shm" and executor.workers == 2
        executor.close()

    def test_pool_size_one_falls_back_to_serial(self):
        executor = make_executor("shm", 1)
        assert type(executor) is ShardExecutor
        assert executor.kind == "serial"

    def test_config_accepts_shm(self):
        assert _shm_config().executor == "shm"

    def test_map_preserves_order_and_describe_reports_pool(self):
        payloads = list(range(9))
        with ShmShardExecutor(2) as executor:
            assert executor.map(_double, payloads) \
                == [_double(p) for p in payloads]
            description = executor.describe()
        assert description["executor"] == "shm"
        assert {"shm_segments", "shm_bytes", "shm_epoch",
                "shm_staged_bytes"} <= set(description)

    def test_close_unlinks_segments(self):
        executor = ShmShardExecutor(2)
        executor.map(_double, [1, 2, 3])
        executor.segments.stage(np.arange(16.0))
        names = list(executor.segments._segments)
        assert names
        executor.close()
        _assert_unlinked(names)
        assert executor.segments.closed


# ---------------------------------------------------------------------------
# Determinism: serial == shm, zero-copy in the engine path


class TestShmDeterminism:
    def test_streamed_windows_match_serial_and_stay_zero_copy(self):
        staged = {}

        def run(executor_kind):
            config = StreamingConfig(
                window=20.0, hop=10.0, retention=120.0,
                executor=executor_kind, executor_workers=2,
            )
            driver = SimulationStreamDriver(
                _chain_app(), constant_rate(40.0), config=config,
                seed=3, record_frame=False,
            )
            try:
                return driver.run(50.0)
            finally:
                pool = getattr(driver.engine.executor, "segments", None)
                if pool is not None:
                    staged[executor_kind] = pool.staged_bytes
                driver.close()

        reference = run("serial")
        assert reference
        produced = run("shm")
        assert len(produced) == len(reference)
        for left, right in zip(produced, reference):
            assert (left.index, left.start, left.end) \
                == (right.index, right.start, right.end)
            _assert_same_analysis(left, right)
        # Window-store snapshots annotate every series with live ring
        # references, so the whole run ships without staging copies.
        assert staged["shm"] == 0

    def test_window_store_snapshot_routes_refs(self):
        executor = ShmShardExecutor(2)
        store = WindowStore(retention=1e9, max_points_per_series=256)
        ts = _series(n=100)
        store.ingest("web", "cpu", ts.times_view, ts.values_view)
        store.attach_shm_pool(executor.segments)
        frame = store.snapshot()
        window = next(iter(frame))
        assert isinstance(window, ShmTimeSeries)
        assert window.times_ref.epoch == executor.segments.epoch
        assert np.array_equal(window.values_view, ts.values_view)
        store.detach_shm()
        executor.close()


# ---------------------------------------------------------------------------
# Lifecycle: nothing leaks into /dev/shm


class TestShmLifecycle:
    def test_no_leak_after_clean_engine_close(self):
        before = set(_dev_shm_leftovers())
        driver = SimulationStreamDriver(
            _chain_app(), constant_rate(40.0), config=_shm_config(),
            seed=3, record_frame=False,
        )
        driver.run(30.0)
        pool = driver.engine.executor.segments
        names = list(pool._segments)
        assert names  # the run actually used shared memory
        driver.close()
        _assert_unlinked(names)
        assert set(_dev_shm_leftovers()) <= before

    def test_no_leak_after_worker_crash_mid_window(self):
        before = set(_dev_shm_leftovers())
        executor = ShmShardExecutor(2)
        store = WindowStore(retention=1e9, max_points_per_series=256)
        for metric in ("cpu", "mem", "io"):
            ts = _series(metric, n=120)
            store.ingest("web", metric, ts.times_view, ts.values_view)
        store.attach_shm_pool(executor.segments)
        frame = store.snapshot()
        payloads = [{ts.key.metric: ts} for ts in frame]
        with pytest.raises(Exception) as excinfo:
            executor.map(_die, payloads)
        assert "process pool" in str(excinfo.value).lower()
        names = list(executor.segments._segments)
        assert names
        # The crash broke the pool, not the cleanup path.
        store.detach_shm()
        executor.close()
        _assert_unlinked(names)
        assert set(_dev_shm_leftovers()) <= before

    def test_broken_pool_recovers_on_next_map(self):
        executor = ShmShardExecutor(2)
        with pytest.raises(Exception):
            executor.map(_die, [0, 1])
        # A later map after the crash builds a fresh pool and works.
        assert executor.map(_double, [3, 4]) == [6, 8]
        executor.close()

    def test_no_leak_across_checkpoint_resume(self, tmp_path):
        before = set(_dev_shm_leftovers())
        config = _shm_config()
        driver = SimulationStreamDriver(
            _chain_app(), constant_rate(40.0), config=config,
            seed=3, record_frame=False,
        )
        policy = CheckpointPolicy(driver.engine,
                                  tmp_path / "state.ckpt", every=1)
        driver.engine.subscribe(policy)
        early = driver.run(30.0)
        first_names = list(driver.engine.executor.segments._segments)
        driver.close()
        _assert_unlinked(first_names)

        restored = restore_engine(tmp_path / "state.ckpt", config)
        resumed = SimulationStreamDriver(
            _chain_app(), constant_rate(40.0), config=config,
            seed=3, record_frame=False, engine=restored,
        )
        late = resumed.resume_run(30.0)
        assert early and late  # both runs analyzed windows
        second_names = list(restored.executor.segments._segments)
        assert second_names
        resumed.close()
        _assert_unlinked(second_names)
        assert set(_dev_shm_leftovers()) <= before
