"""Tests for the self-telemetry subsystem (:mod:`repro.obs`).

Covers the observability acceptance surface:

* instrument primitives (counter/gauge/histogram, labels, the
  disabled-registry null path);
* span tracing (per-window phase cuts, pending accumulation, discard);
* Prometheus text exposition and the JSON snapshot;
* the health model and the three standard probes (writer stall flips
  ``/healthz`` to 503 and recovers);
* the HTTP scrape server routes;
* telemetry-on vs telemetry-off determinism (identical windows, edge
  Jaccard 1.0) and a live scrape returning every instrument family.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import (
    APPLICATIONS,
    PipelineBuilder,
    register_application,
    register_exporter,
)
from repro.api.registry import EXPORTERS
from repro.core import StreamingConfig
from repro.obs import (
    NULL_INSTRUMENT,
    HealthModel,
    JsonExporter,
    PrometheusExporter,
    SpanTracer,
    Telemetry,
    TelemetryRegistry,
    TelemetryServer,
    bus_probe,
    checkpoint_probe,
    render_prometheus,
    snapshot,
    writer_probe,
)
from repro.parallel.writer import BatchingWriter
from repro.causality.depgraph import edge_jaccard
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.streaming import SimulationStreamDriver, StreamingSieve
from repro.workload import constant_rate


def _chain_app():
    spec = dict(kind="generic",
                endpoints=(EndpointSpec("op", service_time=0.02),),
                concurrency=16)
    return Application("demo", [
        ComponentSpec(name="front", calls=(CallSpec("back", delay=0.4),),
                      **spec),
        ComponentSpec(name="back", **spec),
    ])


# Registered once: specs (and the CLI) can then name the tiny app.
if "demo-chain" not in APPLICATIONS:
    register_application("demo-chain", lambda: _chain_app())


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode()


# ---------------------------------------------------------------------------
# Instrument primitives


class TestInstruments:
    def test_counter(self):
        registry = TelemetryRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_labels(self):
        registry = TelemetryRegistry()
        counter = registry.counter("c_total", "help",
                                   labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(3, kind="b")
        assert counter.value(kind="a") == 1
        assert counter.value(kind="b") == 3
        with pytest.raises(ValueError):
            counter.inc(flavor="a")  # undeclared label name

    def test_counter_set_total_clamps_regressions(self):
        registry = TelemetryRegistry()
        counter = registry.counter("c_total", "help")
        counter.set_total(10)
        counter.set_total(7)  # collector re-sync must stay monotone
        assert counter.value() == 10
        counter.set_total(12)
        assert counter.value() == 12

    def test_gauge(self):
        registry = TelemetryRegistry()
        gauge = registry.gauge("g", "help")
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value() == 3.0

    def test_histogram(self):
        registry = TelemetryRegistry()
        hist = registry.histogram("h_seconds", "help",
                                  buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(5.55)
        ((labels, buckets, total, count),) = hist.distributions()
        assert labels == {}
        assert buckets == [1.0, 2.0, 3.0]  # cumulative, +Inf last
        assert count == 3

    def test_get_or_make_is_idempotent_and_typed(self):
        registry = TelemetryRegistry()
        counter = registry.counter("c_total", "help")
        assert registry.counter("c_total", "help") is counter
        with pytest.raises(ValueError):
            registry.gauge("c_total", "help")

    def test_disabled_registry_hands_out_null_instruments(self):
        registry = TelemetryRegistry(enabled=False)
        counter = registry.counter("c_total", "help")
        assert counter is NULL_INSTRUMENT
        counter.inc()
        counter.observe(1.0)
        counter.set(2.0)
        assert counter.samples() == []
        assert registry.collect() == []

    def test_collector_runs_on_collect(self):
        registry = TelemetryRegistry()
        gauge = registry.gauge("g", "help")
        registry.add_collector(lambda: gauge.set(42.0))
        registry.collect()
        assert gauge.value() == 42.0


# ---------------------------------------------------------------------------
# Span tracing


class TestSpanTracer:
    def test_phases_cut_into_window_traces(self):
        tracer = SpanTracer()
        with tracer.span("ingest"):
            pass
        with tracer.span("recluster"):
            pass
        trace = tracer.finish_window(0, 0.0, 20.0)
        assert trace.index == 0
        assert set(trace.phases) == {"ingest", "recluster"}
        assert trace.total_seconds == pytest.approx(
            sum(trace.phases.values()))
        # The cut emptied the pending accumulator.
        assert tracer.finish_window(1, 10.0, 30.0).phases == {}

    def test_pending_accumulates_across_skipped_windows(self):
        tracer = SpanTracer()
        tracer.add("ingest", 0.25)
        tracer.add("ingest", 0.5)
        assert tracer.pending_seconds(("ingest",)) == pytest.approx(0.75)
        trace = tracer.finish_window(3, 0.0, 10.0)
        assert trace.phases["ingest"] == pytest.approx(0.75)

    def test_discard_stops_without_recording(self):
        tracer = SpanTracer()
        span = tracer.span("drift")
        elapsed = span.discard()
        assert elapsed >= 0.0
        assert tracer.pending_seconds(("drift",)) == 0.0

    def test_disabled_tracer_still_times(self):
        tracer = SpanTracer(enabled=False)
        span = tracer.span("ingest")
        assert span.end() >= 0.0  # the stopwatch must keep working
        assert tracer.finish_window(0, 0.0, 10.0) is None
        assert tracer.traces == []

    def test_history_is_bounded(self):
        tracer = SpanTracer(history=2)
        for index in range(5):
            tracer.add("ingest", 0.1)
            tracer.finish_window(index, 0.0, 10.0)
        assert [t.index for t in tracer.traces] == [3, 4]
        assert tracer.last_trace.index == 4

    def test_observe_callback_feeds_instruments(self):
        seen = []
        tracer = SpanTracer(observe=lambda name, s: seen.append(name))
        with tracer.span("snapshot"):
            pass
        assert seen == ["snapshot"]


# ---------------------------------------------------------------------------
# Exposition


class TestExposition:
    def _registry(self):
        registry = TelemetryRegistry()
        counter = registry.counter("repro_events_total", "Events seen",
                                   labelnames=("kind",))
        counter.inc(2, kind="a b\\n")
        registry.gauge("repro_depth", "Queue depth").set(3)
        registry.histogram("repro_lat_seconds", "Latency",
                           buckets=(0.1,)).observe(0.05)
        return registry

    def test_prometheus_text_format(self):
        text = render_prometheus(self._registry())
        assert "# HELP repro_events_total Events seen" in text
        assert "# TYPE repro_events_total counter" in text
        assert 'repro_events_total{kind="a b\\\\n"} 2' in text
        assert "repro_depth 3" in text
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_lat_seconds_sum 0.05" in text
        assert "repro_lat_seconds_count 1" in text

    def test_json_snapshot(self):
        snap = snapshot(self._registry())
        assert snap["repro_depth"]["kind"] == "gauge"
        assert snap["repro_depth"]["values"] == {"": 3.0}
        series = snap["repro_lat_seconds"]["series"]
        assert series[""]["count"] == 1
        assert series[""]["buckets"]["0.1"] == 1

    def test_exporters(self):
        telemetry = Telemetry()
        telemetry.registry.counter("repro_x_total", "x").inc()
        prom = PrometheusExporter()
        assert "repro_x_total 1" in prom.render(telemetry)
        assert prom.content_type.startswith("text/plain")
        rendered = json.loads(JsonExporter().render(telemetry))
        assert set(rendered) == {"metrics", "traces", "health"}

    def test_exporter_registry_resolution(self):
        telemetry = Telemetry()
        assert isinstance(telemetry.exporter("prometheus"),
                          PrometheusExporter)
        assert telemetry.exporter("bogus") is None
        try:
            register_exporter(
                "test-null",
                lambda **kw: PrometheusExporter())
            assert isinstance(telemetry.exporter("test-null"),
                              PrometheusExporter)
        finally:
            EXPORTERS.unregister("test-null")


# ---------------------------------------------------------------------------
# Health


class _BlockingBackend:
    """Backend whose writes stall until released (a simulated outage)."""

    def __init__(self):
        self.release = threading.Event()

    def write(self, component, metric, times, values):
        assert self.release.wait(timeout=10)

    def flush(self):
        pass

    def close(self):
        pass


class TestHealth:
    def test_empty_model_is_healthy(self):
        healthy, report = HealthModel().check()
        assert healthy and report == {}

    def test_failing_and_raising_probes(self):
        model = HealthModel()
        model.add_probe("ok", lambda: (True, "fine"))
        model.add_probe("bad", lambda: (False, "broken"))
        model.add_probe("boom", lambda: 1 / 0)
        healthy, report = model.check()
        assert not healthy
        assert report["ok"]["ok"]
        assert not report["bad"]["ok"]
        assert "raised" in report["boom"]["detail"]
        model.remove_probe("bad")
        model.remove_probe("boom")
        assert model.check()[0]

    def test_writer_probe_flips_on_stall_and_recovers(self):
        backend = _BlockingBackend()
        writer = BatchingWriter(backend, max_batches=1)
        probe = writer_probe(writer)
        try:
            assert probe()[0]
            # First batch is taken by the writer thread and stalls in
            # the backend; the second pins the bounded queue at
            # capacity -- sustained backpressure.
            writer.write("c", "m", np.array([1.0]), np.array([1.0]))
            writer.write("c", "m", np.array([2.0]), np.array([2.0]))
            ok, detail = probe()
            assert not ok and "saturated" in detail
            backend.release.set()
            writer.drain()
            assert probe()[0]
        finally:
            backend.release.set()
            writer.close()

    def test_bus_probe_fails_only_on_new_shedding(self):
        from types import SimpleNamespace

        bus = SimpleNamespace(
            stats=SimpleNamespace(overflow_dropped=0,
                                  overflow_downsampled=0),
            pending_points=0,
        )
        probe = bus_probe(bus)
        assert probe()[0]
        bus.stats.overflow_dropped = 5
        assert not probe()[0]
        assert probe()[0]  # no *new* drops since the last check

    def test_checkpoint_probe_fails_on_lag(self):
        from types import SimpleNamespace

        policy = SimpleNamespace(every=1, windows_since_checkpoint=1,
                                 checkpoints_written=3)
        probe = checkpoint_probe(policy)
        assert probe()[0]
        policy.windows_since_checkpoint = 3  # > 2 * every
        ok, detail = probe()
        assert not ok and "lag" in detail
        assert checkpoint_probe(policy, max_lag_windows=5)()[0]


# ---------------------------------------------------------------------------
# The scrape server


class TestServer:
    @pytest.fixture()
    def telemetry(self):
        telemetry = Telemetry()
        telemetry.registry.counter("repro_hits_total", "Hits").inc(7)
        with telemetry.tracer.span("ingest"):
            pass
        telemetry.tracer.finish_window(0, 0.0, 20.0)
        yield telemetry
        telemetry.close()

    def test_routes(self, telemetry):
        server = telemetry.serve(port=0)
        assert isinstance(server, TelemetryServer)
        assert telemetry.serve(port=0) is server  # idempotent
        status, text = _get(server.url + "/metrics")
        assert status == 200 and "repro_hits_total 7" in text
        status, text = _get(server.url + "/metrics.json")
        assert json.loads(text)["repro_hits_total"]["values"]
        status, text = _get(server.url + "/traces")
        traces = json.loads(text)
        assert traces[0]["index"] == 0 and "ingest" in traces[0]["phases"]
        status, text = _get(server.url + "/export/json")
        assert status == 200
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/export/bogus")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/nope")
        assert err.value.code == 404

    def test_healthz_flips_with_probes(self, telemetry):
        server = telemetry.serve(port=0)
        status, text = _get(server.url + "/healthz")
        assert status == 200 and json.loads(text)["healthy"]

        backend = _BlockingBackend()
        writer = BatchingWriter(backend, max_batches=1)
        telemetry.health.add_probe("writer", writer_probe(writer))
        try:
            writer.write("c", "m", np.array([1.0]), np.array([1.0]))
            writer.write("c", "m", np.array([2.0]), np.array([2.0]))
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/healthz")
            assert err.value.code == 503
            report = json.loads(err.value.read().decode())
            assert not report["healthy"]
            assert not report["probes"]["writer"]["ok"]
            backend.release.set()
            writer.drain()
            status, text = _get(server.url + "/healthz")
            assert status == 200 and json.loads(text)["healthy"]
        finally:
            backend.release.set()
            writer.close()
            telemetry.health.remove_probe("writer")


# ---------------------------------------------------------------------------
# Engine integration: determinism, coverage, the full session wiring


def _fingerprint(analysis):
    return {
        component: sorted(
            (cluster.representative, tuple(sorted(cluster.metrics)))
            for cluster in clustering.clusters
        )
        for component, clustering in analysis.clusterings.items()
    }


def _run_engine(telemetry=None):
    config = StreamingConfig(window=10.0, hop=5.0, retention=60.0)
    engine = StreamingSieve(config=config, seed=3,
                            telemetry=telemetry)
    driver = SimulationStreamDriver(
        _chain_app(), constant_rate(12.0), config=config, seed=3,
        engine=engine,
    )
    analyses = driver.run(30.0)
    return engine, analyses


class TestEngineTelemetry:
    def test_telemetry_on_is_bit_identical_to_off(self):
        engine_off, plain = _run_engine()
        engine_on, instrumented = _run_engine(Telemetry())
        assert len(plain) == len(instrumented) >= 2
        for left, right in zip(plain, instrumented):
            assert left.index == right.index
            assert left.reclustered == right.reclustered
            assert left.reused == right.reused
            assert _fingerprint(left) == _fingerprint(right)
        assert edge_jaccard(plain[-1].dependency_graph,
                            instrumented[-1].dependency_graph) == 1.0
        # ... and, wall-clock aside, the telemetry block is the *only*
        # summary delta.
        on, off = engine_on.summary(), engine_off.summary()
        assert "telemetry" not in off
        on.pop("telemetry")
        on.pop("analysis_seconds"), off.pop("analysis_seconds")
        assert on == off

    def test_summary_and_traces(self):
        engine, analyses = _run_engine(Telemetry())
        block = engine.summary()["telemetry"]
        assert block["enabled"]
        assert block["last_window_trace"]["index"] \
            == analyses[-1].index
        phases = block["phase_seconds"]
        for phase in ("ingest", "snapshot", "drift", "recluster",
                      "depgraph", "consumers"):
            assert phases.get(phase, 0.0) >= 0.0
        assert {"recluster", "depgraph"} <= set(phases)
        # analysis_seconds kept its historical meaning (satellite 1).
        assert analyses[-1].analysis_seconds > 0.0

    def test_disabled_run_records_nothing(self):
        engine, _ = _run_engine()
        assert not engine.telemetry.enabled
        assert engine.telemetry.registry.collect() == []
        assert engine.telemetry.tracer.traces == []


#: Instrument families every fully-wired session scrape must expose
#: (the acceptance criterion's counters + gauges + histograms list).
EXPECTED_FAMILIES = {
    "repro_bus_total", "repro_bus_pending_points",
    "repro_bus_flush_seconds",
    "repro_store_total", "repro_store_points_retained",
    "repro_store_series",
    "repro_windows_total", "repro_drift_escalations_total",
    "repro_edges_total", "repro_engine_current_hop_seconds",
    "repro_executor_tasks_total", "repro_journal_total",
    "repro_window_analysis_seconds", "repro_window_phase_seconds",
    "repro_recluster_seconds", "repro_components_reclustered_total",
    "repro_components_reused_total",
    "repro_writer_total", "repro_writer_queue_depth",
    "repro_writer_queue_capacity", "repro_writer_write_seconds",
    "repro_writer_flush_seconds", "repro_writer_errors_total",
    "repro_checkpoint_save_seconds",
}


class TestSessionWiring:
    def test_full_session_scrape_covers_every_family(self, tmp_path):
        session = (PipelineBuilder("demo-chain").mode("stream")
                   .workload("constant", rate=12.0)
                   .streaming(window=10.0, hop=5.0, retention=60.0)
                   .storage("sqlite", str(tmp_path / "run.db"),
                            writer="async")
                   .journal(str(tmp_path / "j.log"))
                   .checkpoint(str(tmp_path / "c.json"))
                   .duration(25).seed(3)
                   .telemetry(port=0).build())
        try:
            server = session.telemetry.serve()
            session.run()
            _, text = _get(server.url + "/metrics")
            families = {line.split()[2]
                        for line in text.splitlines()
                        if line.startswith("# TYPE")}
            missing = EXPECTED_FAMILIES - families
            assert not missing, f"missing families: {sorted(missing)}"
            # The standard probes were wired and all pass post-run.
            assert session.telemetry.health.names() \
                == ["bus", "checkpoint", "writer"]
            status, text = _get(server.url + "/healthz")
            assert status == 200 and json.loads(text)["healthy"]
        finally:
            session.close()
        assert session.telemetry.server is None  # close() stopped it

    def test_disabled_session_has_inert_telemetry(self):
        session = (PipelineBuilder("demo-chain").mode("stream")
                   .workload("constant", rate=12.0)
                   .streaming(window=10.0, hop=5.0, retention=60.0)
                   .duration(12).seed(3).build())
        try:
            assert not session.telemetry.enabled
            outcome = session.run()
            assert "telemetry" not in outcome.summary
        finally:
            session.close()
