"""Unit and property tests for NCC / SBD (repro.stats.correlation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats.correlation import (
    cross_correlation_sequence,
    normalized_cross_correlation,
    sbd,
    sbd_with_shift,
)
from repro.stats.timeseries_ops import znormalize

series_pair_length = st.integers(min_value=4, max_value=128)


def _series(length, seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=length)


class TestCrossCorrelation:
    def test_matches_numpy_correlate(self):
        x = _series(32, 1)
        y = _series(32, 2)
        ours = cross_correlation_sequence(x, y)
        # numpy's "full" cross-correlation shares our shift axis: index
        # n-1 is the zero shift, higher indices shift x to the right.
        reference = np.correlate(x, y, mode="full")
        np.testing.assert_allclose(ours, reference, atol=1e-9)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            cross_correlation_sequence(np.ones(4), np.ones(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            cross_correlation_sequence(np.array([]), np.array([]))

    def test_output_length(self):
        out = cross_correlation_sequence(np.ones(7), np.ones(7))
        assert out.size == 13


class TestNCC:
    def test_identical_series_peak_is_one(self):
        x = znormalize(np.sin(np.linspace(0, 12, 100)))
        ncc = normalized_cross_correlation(x, x)
        assert abs(ncc.max() - 1.0) < 1e-9

    def test_bounded_by_one(self):
        x = _series(64, 3)
        y = _series(64, 4)
        ncc = normalized_cross_correlation(x, y)
        assert np.all(np.abs(ncc) <= 1.0 + 1e-9)

    def test_zero_energy_series(self):
        ncc = normalized_cross_correlation(np.zeros(10), np.ones(10))
        assert np.all(ncc == 0.0)


class TestSBD:
    def test_self_distance_zero(self):
        x = _series(50, 5)
        assert sbd(x, x) < 1e-9

    def test_shift_invariance(self):
        """SBD sees through time shifts -- the property Sieve needs for
        metrics of communicating components (effects arrive delayed)."""
        x = np.sin(np.linspace(0, 20, 200))
        for shift in (1, 5, 17):
            shifted = np.roll(x, shift)
            assert sbd(x, shifted) < 0.05

    def test_detected_shift_matches_roll(self):
        x = znormalize(np.sin(np.linspace(0, 20, 200)))
        _, shift = sbd_with_shift(np.roll(x, 9), x)
        assert shift == 9

    def test_anticorrelated_series_is_far(self):
        # A negated series is far even under the best shift: partial
        # overlaps can correlate a little, but far less than the
        # near-zero distance of genuinely similar shapes.
        x = znormalize(np.linspace(0.0, 1.0, 100))
        d = sbd(x, -x)
        assert d > 0.5
        # ...and without any shift the distance is maximal.
        ncc_zero_shift = float(x @ -x) / float(x @ x)
        assert 1.0 - ncc_zero_shift == pytest.approx(2.0)

    def test_range(self):
        rng = np.random.default_rng(6)
        for _ in range(20):
            d = sbd(rng.normal(size=30), rng.normal(size=30))
            assert 0.0 <= d <= 2.0

    @given(st.integers(0, 10_000), series_pair_length)
    @settings(max_examples=40, deadline=None)
    def test_property_symmetry(self, seed, length):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=length)
        y = rng.normal(size=length)
        assert abs(sbd(x, y) - sbd(y, x)) < 1e-9

    @given(st.integers(0, 10_000), series_pair_length,
           st.floats(0.1, 50.0))
    @settings(max_examples=40, deadline=None)
    def test_property_scale_invariance(self, seed, length, scale):
        """SBD is invariant to amplitude scaling (the z-normalization
        rationale of the paper)."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=length)
        y = rng.normal(size=length)
        assert abs(sbd(x, y) - sbd(x * scale, y)) < 1e-7

    @given(st.integers(0, 10_000), series_pair_length)
    @settings(max_examples=40, deadline=None)
    def test_property_bounds(self, seed, length):
        rng = np.random.default_rng(seed)
        d = sbd(rng.normal(size=length), rng.normal(size=length))
        assert 0.0 <= d <= 2.0
