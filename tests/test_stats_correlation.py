"""Unit and property tests for NCC / SBD (repro.stats.correlation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats.correlation import (
    cross_correlation_sequence,
    normalized_cross_correlation,
    sbd,
    sbd_matrix,
    sbd_pairs,
    sbd_with_shift,
    use_reference_kernel,
)
from repro.stats.timeseries_ops import znormalize

series_pair_length = st.integers(min_value=4, max_value=128)


def _series(length, seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=length)


class TestCrossCorrelation:
    def test_matches_numpy_correlate(self):
        x = _series(32, 1)
        y = _series(32, 2)
        ours = cross_correlation_sequence(x, y)
        # numpy's "full" cross-correlation shares our shift axis: index
        # n-1 is the zero shift, higher indices shift x to the right.
        reference = np.correlate(x, y, mode="full")
        np.testing.assert_allclose(ours, reference, atol=1e-9)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            cross_correlation_sequence(np.ones(4), np.ones(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            cross_correlation_sequence(np.array([]), np.array([]))

    def test_output_length(self):
        out = cross_correlation_sequence(np.ones(7), np.ones(7))
        assert out.size == 13


class TestNCC:
    def test_identical_series_peak_is_one(self):
        x = znormalize(np.sin(np.linspace(0, 12, 100)))
        ncc = normalized_cross_correlation(x, x)
        assert abs(ncc.max() - 1.0) < 1e-9

    def test_bounded_by_one(self):
        x = _series(64, 3)
        y = _series(64, 4)
        ncc = normalized_cross_correlation(x, y)
        assert np.all(np.abs(ncc) <= 1.0 + 1e-9)

    def test_zero_energy_series(self):
        ncc = normalized_cross_correlation(np.zeros(10), np.ones(10))
        assert np.all(ncc == 0.0)


class TestSBD:
    def test_self_distance_zero(self):
        x = _series(50, 5)
        assert sbd(x, x) < 1e-9

    def test_shift_invariance(self):
        """SBD sees through time shifts -- the property Sieve needs for
        metrics of communicating components (effects arrive delayed)."""
        x = np.sin(np.linspace(0, 20, 200))
        for shift in (1, 5, 17):
            shifted = np.roll(x, shift)
            assert sbd(x, shifted) < 0.05

    def test_detected_shift_matches_roll(self):
        x = znormalize(np.sin(np.linspace(0, 20, 200)))
        _, shift = sbd_with_shift(np.roll(x, 9), x)
        assert shift == 9

    def test_anticorrelated_series_is_far(self):
        # A negated series is far even under the best shift: partial
        # overlaps can correlate a little, but far less than the
        # near-zero distance of genuinely similar shapes.
        x = znormalize(np.linspace(0.0, 1.0, 100))
        d = sbd(x, -x)
        assert d > 0.5
        # ...and without any shift the distance is maximal.
        ncc_zero_shift = float(x @ -x) / float(x @ x)
        assert 1.0 - ncc_zero_shift == pytest.approx(2.0)

    def test_range(self):
        rng = np.random.default_rng(6)
        for _ in range(20):
            d = sbd(rng.normal(size=30), rng.normal(size=30))
            assert 0.0 <= d <= 2.0

    @given(st.integers(0, 10_000), series_pair_length)
    @settings(max_examples=40, deadline=None)
    def test_property_symmetry(self, seed, length):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=length)
        y = rng.normal(size=length)
        assert abs(sbd(x, y) - sbd(y, x)) < 1e-9

    @given(st.integers(0, 10_000), series_pair_length,
           st.floats(0.1, 50.0))
    @settings(max_examples=40, deadline=None)
    def test_property_scale_invariance(self, seed, length, scale):
        """SBD is invariant to amplitude scaling (the z-normalization
        rationale of the paper)."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=length)
        y = rng.normal(size=length)
        assert abs(sbd(x, y) - sbd(x * scale, y)) < 1e-7

    @given(st.integers(0, 10_000), series_pair_length)
    @settings(max_examples=40, deadline=None)
    def test_property_bounds(self, seed, length):
        rng = np.random.default_rng(seed)
        d = sbd(rng.normal(size=length), rng.normal(size=length))
        assert 0.0 <= d <= 2.0


class TestBatchedSBD:
    """The batched FFT kernel must agree with the per-pair reference.

    Agreement is to ~1e-16, not bit-for-bit: numpy's complex multiply
    vectorizes differently over a row batch than over a single row
    (see the module docstring), so comparisons use a tight tolerance.
    """

    def _reference_matrix(self, rows):
        with use_reference_kernel():
            return sbd_matrix(rows)

    def _reference_pairs(self, x_rows, y_rows):
        with use_reference_kernel():
            return sbd_pairs(x_rows, y_rows)

    # Odd/even/pow-two lengths straddle the FFT padding boundary
    # (2n-1 -> next power of two), the classic off-by-one hideout.
    @pytest.mark.parametrize("length", [31, 32, 33, 64, 65, 127, 128])
    def test_matrix_matches_reference_random(self, length):
        rng = np.random.default_rng(length)
        rows = rng.normal(size=(7, length))
        batched = sbd_matrix(rows)
        np.testing.assert_allclose(batched,
                                   self._reference_matrix(rows),
                                   atol=1e-12)
        assert np.array_equal(batched, batched.T)
        assert np.all(np.diag(batched) == 0.0)

    @pytest.mark.parametrize("length", [33, 64, 65])
    def test_pairs_match_reference_cross(self, length):
        rng = np.random.default_rng(length + 1)
        x_rows = rng.normal(size=(5, length))
        y_rows = rng.normal(size=(3, length))
        distances, shifts = sbd_pairs(x_rows, y_rows)
        ref_d, ref_s = self._reference_pairs(x_rows, y_rows)
        np.testing.assert_allclose(distances, ref_d, atol=1e-12)
        assert np.array_equal(shifts, ref_s)
        # Cross-check one entry against the scalar API too.
        d, s = sbd_with_shift(x_rows[2], y_rows[1])
        assert distances[2, 1] == pytest.approx(d, abs=1e-12)
        assert shifts[2, 1] == s

    def test_flat_rows_zero_energy(self):
        """Constant (zero after z-norm) rows must not divide by zero
        and must sit at the maximal distance from everything, exactly
        like the per-pair reference."""
        rng = np.random.default_rng(9)
        rows = np.vstack([np.zeros(40), np.full(40, 3.5),
                          rng.normal(size=(2, 40))])
        batched = sbd_matrix(rows)
        np.testing.assert_allclose(batched,
                                   self._reference_matrix(rows),
                                   atol=1e-12)
        assert np.all(np.isfinite(batched))
        # NCC against a flat series is all zeros -> distance 1.
        assert batched[0, 2] == pytest.approx(1.0)

    def test_shifted_series_recover_the_shift(self):
        base = znormalize(np.sin(np.linspace(0, 20, 200)))
        rolls = [np.roll(base, k) for k in (0, 3, 9, 17)]
        distances, shifts = sbd_pairs(np.stack(rolls), base[None, :])
        ref_d, ref_s = self._reference_pairs(np.stack(rolls),
                                             base[None, :])
        np.testing.assert_allclose(distances, ref_d, atol=1e-12)
        assert np.array_equal(shifts, ref_s)
        assert list(shifts[:, 0]) == [0, 3, 9, 17]
        assert np.all(distances[:, 0] < 0.05)

    def test_batched_is_deterministic(self):
        """Same rows, same shapes -> the very same bits, run to run
        (what makes serial == shm reproducible across executors)."""
        rng = np.random.default_rng(21)
        rows = rng.normal(size=(12, 96))
        first = sbd_matrix(rows.copy())
        second = sbd_matrix(rows.copy())
        assert np.array_equal(first, second)

    def test_degenerate_inputs(self):
        assert sbd_matrix(np.empty((0, 8))).shape == (0, 0)
        assert sbd_matrix(np.ones((1, 8))).shape == (1, 1)
        with pytest.raises(ValueError):
            sbd_pairs(np.ones((2, 8)), np.ones((2, 9)))
