"""Tests for the text renderers."""

import pytest

from repro.causality.depgraph import DependencyGraph, MetricRelation
from repro.core import Sieve
from repro.rca import RCAEngine
from repro.reporting import (
    render_dependency_graph,
    render_rca_report,
    render_reduction_summary,
)
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.workload import constant_rate


@pytest.fixture(scope="module")
def small_result():
    specs = [
        ComponentSpec("front", kind="generic",
                      endpoints=(EndpointSpec("op", 0.02),),
                      calls=(CallSpec("back", delay=0.4),)),
        ComponentSpec("back", kind="generic",
                      endpoints=(EndpointSpec("op", 0.01),),
                      concurrency=16),
    ]
    sieve = Sieve(Application("small", specs))
    return sieve.run(constant_rate(35.0), duration=60.0, seed=2)


class TestDependencyGraphRendering:
    def test_renders_edges_with_lags(self):
        graph = DependencyGraph()
        graph.add_relation(MetricRelation(
            "a", "rate", "b", "latency", lag=2, p_value=0.001))
        text = render_dependency_graph(graph)
        assert "a" in text
        assert "--> b (1 relations)" in text
        assert "rate => latency" in text
        assert "lag 2" in text

    def test_empty_graph(self):
        assert "no dependencies" in render_dependency_graph(
            DependencyGraph())

    def test_relation_cap(self):
        graph = DependencyGraph()
        for i in range(5):
            graph.add_relation(MetricRelation(
                "a", f"m{i}", "b", "t", lag=1, p_value=0.01 * (i + 1)))
        text = render_dependency_graph(graph, max_relations_per_edge=2)
        assert text.count("=>") == 2
        assert "(5 relations)" in text

    def test_real_result(self, small_result):
        text = render_dependency_graph(small_result.dependency_graph)
        assert "front" in text or "no dependencies" in text


class TestReductionRendering:
    def test_contains_totals_and_components(self, small_result):
        text = render_reduction_summary(small_result)
        assert "front" in text and "back" in text
        assert "TOTAL" in text
        assert "x reduction" in text


class TestRCARendering:
    def test_renders_candidates(self, small_result):
        report = RCAEngine().compare(small_result, small_result,
                                     threshold=0.5)
        text = render_rca_report(report)
        assert "similarity threshold: 0.5" in text
        assert "root-cause candidates:" in text
