"""Tests for the persistence subsystem: storage backends, the
write-ahead ingest journal, checkpoint/restore, backpressure, the
drift+SLA RCA trigger, and crash-restart determinism."""

import dataclasses
import json
import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.autoscaling.sla import SLACondition
from repro.causality.depgraph import edge_jaccard
from repro.core import Sieve, StreamingConfig
from repro.metrics.store import MetricsStore
from repro.metrics.timeseries import MetricKey
from repro.persistence import (
    CheckpointPolicy,
    IngestJournal,
    MemoryBackend,
    SpillBackend,
    SqliteBackend,
    journal_record_count,
    load_checkpoint,
    open_backend,
    replay_journal,
    restore_engine,
    save_checkpoint,
)
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.streaming import (
    IngestionBus,
    SimulationStreamDriver,
    WindowDiffRCA,
    WindowStore,
)
from repro.workload import constant_rate


def _spec(name, shift=False, **kwargs):
    custom = ()
    if shift:
        custom = (("mode_gauge",
                   lambda comp, now: 500.0 if now > 45.0
                   else comp.total_request_rate() * 1.2),)
    defaults = dict(
        kind="generic",
        endpoints=(EndpointSpec("op", service_time=0.02),),
        concurrency=16,
        custom_metrics=custom,
    )
    defaults.update(kwargs)
    return ComponentSpec(name=name, **defaults)


def _chain_app(shift_backend=False):
    return Application("demo", [
        _spec("front", calls=(CallSpec("mid", delay=0.4),)),
        _spec("mid", calls=(CallSpec("back", delay=0.4),)),
        _spec("back", shift=shift_backend),
    ])


def _backend(kind, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    if kind == "sqlite":
        return SqliteBackend(tmp_path / "points.db")
    return SpillBackend(tmp_path / "spill", hot_points=64)


BACKENDS = ("memory", "sqlite", "spill")


# ---------------------------------------------------------------------------
# The backend contract


@pytest.mark.parametrize("kind", BACKENDS)
class TestBackendContract:
    def test_write_query_roundtrip(self, kind, tmp_path):
        backend = _backend(kind, tmp_path)
        backend.write("web", "cpu", [1.0, 2.0, 3.0], [10.0, 20.0, 30.0])
        backend.write("web", "cpu", [4.0], [40.0])
        ts = backend.query("web", "cpu")
        assert ts.times.tolist() == [1.0, 2.0, 3.0, 4.0]
        assert ts.values.tolist() == [10.0, 20.0, 30.0, 40.0]

    def test_range_query_is_inclusive(self, kind, tmp_path):
        backend = _backend(kind, tmp_path)
        backend.write("web", "cpu", np.arange(10.0), np.arange(10.0))
        ts = backend.query("web", "cpu", 3.0, 6.0)
        assert ts.times.tolist() == [3.0, 4.0, 5.0, 6.0]

    def test_unknown_key_is_empty(self, kind, tmp_path):
        backend = _backend(kind, tmp_path)
        assert len(backend.query("nope", "nothing")) == 0

    def test_counts_and_keys(self, kind, tmp_path):
        backend = _backend(kind, tmp_path)
        backend.write("a", "m1", [1.0], [1.0])
        backend.write("a", "m2", [1.0, 2.0], [1.0, 2.0])
        backend.write("b", "m1", [1.0], [1.0])
        assert backend.series_count() == 3
        assert backend.sample_count() == 4
        assert backend.keys() == [MetricKey("a", "m1"),
                                  MetricKey("a", "m2"),
                                  MetricKey("b", "m1")]

    def test_to_frame_keep_filter(self, kind, tmp_path):
        backend = _backend(kind, tmp_path)
        backend.write("a", "m1", [1.0], [1.0])
        backend.write("a", "m2", [1.0], [2.0])
        frame = backend.to_frame(keep=[MetricKey("a", "m2")])
        assert len(frame) == 1
        assert frame.get(MetricKey("a", "m2")).values.tolist() == [2.0]

    def test_metadata_roundtrip(self, kind, tmp_path):
        backend = _backend(kind, tmp_path)
        backend.set_metadata({"application": "demo", "seed": 3})
        assert backend.metadata() == {"application": "demo", "seed": 3}

    def test_bus_subscriber_protocol(self, kind, tmp_path):
        backend = _backend(kind, tmp_path)
        bus = IngestionBus()
        bus.subscribe(backend)
        bus.publish("web", 1.0, {"cpu": 5.0})
        bus.flush()
        assert backend.sample_count() == 1

    def test_newest_time(self, kind, tmp_path):
        backend = _backend(kind, tmp_path)
        assert backend.newest_time("web", "cpu") is None
        backend.write("web", "cpu", [1.0, 4.5], [1.0, 2.0])
        assert backend.newest_time("web", "cpu") == 4.5


class TestDurability:
    def test_sqlite_reopen_keeps_out_of_order_guard(self, tmp_path):
        path = tmp_path / "points.db"
        backend = SqliteBackend(path)
        backend.write("web", "cpu", [10.0, 11.0], [1.0, 2.0])
        backend.close()
        reopened = SqliteBackend(path)
        # Appending an older timeline would corrupt the point log and
        # only surface at read time; it must fail at the write.
        with pytest.raises(ValueError, match="out-of-order"):
            reopened.write("web", "cpu", [5.0], [1.0])
        reopened.write("web", "cpu", [12.0], [3.0])
        assert reopened.query("web", "cpu").times.tolist() \
            == [10.0, 11.0, 12.0]

    def test_sqlite_survives_reopen(self, tmp_path):
        path = tmp_path / "points.db"
        backend = SqliteBackend(path)
        backend.write("web", "cpu", [1.0, 2.0], [1.0, 2.0])
        backend.set_metadata({"seed": 7})
        backend.close()
        reopened = SqliteBackend(path)
        assert reopened.sample_count() == 2
        assert reopened.metadata()["seed"] == 7
        assert reopened.query("web", "cpu").values.tolist() == [1.0, 2.0]

    def test_spill_survives_reopen(self, tmp_path):
        path = tmp_path / "spill"
        backend = SpillBackend(path, hot_points=16)
        backend.write("web", "cpu", np.arange(20.0), np.arange(20.0))
        backend.write("web", "cpu", 20.0 + np.arange(20.0),
                      20.0 + np.arange(20.0))
        backend.set_metadata({"seed": 7})
        assert backend.spills >= 2
        backend.close()
        reopened = SpillBackend(path)
        assert reopened.sample_count() == 40
        assert reopened.metadata()["seed"] == 7
        ts = reopened.query("web", "cpu", 10.0, 20.0)
        assert ts.times.tolist() == [float(i) for i in range(10, 21)]

    def test_spill_bounds_ram(self, tmp_path):
        backend = SpillBackend(tmp_path / "spill", hot_points=32)
        for step in range(20):
            t = 10.0 * step + np.arange(10.0)
            backend.write("web", "cpu", t, np.zeros(10))
        assert backend.hot_sample_count() < 32 + 10
        assert backend.sample_count() == 200

    def test_spill_rejects_out_of_order(self, tmp_path):
        backend = SpillBackend(tmp_path / "spill")
        backend.write("web", "cpu", [5.0], [1.0])
        with pytest.raises(ValueError):
            backend.write("web", "cpu", [4.0], [1.0])

    def test_spill_reopen_keeps_out_of_order_guard(self, tmp_path):
        backend = SpillBackend(tmp_path / "spill", hot_points=8)
        backend.write("web", "cpu", 10.0 + np.arange(10.0),
                      np.arange(10.0))
        backend.close()
        reopened = SpillBackend(tmp_path / "spill")
        # Writing behind the existing segments would silently corrupt
        # range queries (they assume time-ordered concatenation).
        with pytest.raises(ValueError):
            reopened.write("web", "cpu", [5.0], [1.0])
        reopened.write("web", "cpu", [25.0], [1.0])  # forward is fine
        assert reopened.query("web", "cpu").times[-1] == 25.0

    def test_parquet_spill_reopen_needs_pyarrow(self, tmp_path):
        from repro.persistence.spill import HAVE_PARQUET

        if HAVE_PARQUET:
            pytest.skip("pyarrow installed; missing-dependency path "
                        "not reachable")
        spill_dir = tmp_path / "spill"
        spill_dir.mkdir()
        (spill_dir / "index.json").write_text(json.dumps({
            "version": 1, "segment_format": "parquet",
            "next_segment": 0, "meta": {}, "series": [],
        }))
        with pytest.raises(RuntimeError, match="pyarrow"):
            SpillBackend(spill_dir)

    def test_open_backend_dispatch(self, tmp_path):
        assert isinstance(open_backend("memory", None), MemoryBackend)
        assert isinstance(open_backend("sqlite", tmp_path / "x.db"),
                          SqliteBackend)
        assert isinstance(open_backend("spill", tmp_path / "d"),
                          SpillBackend)
        with pytest.raises(ValueError):
            open_backend("redis", None)


# ---------------------------------------------------------------------------
# The acceptance invariant: replay through any backend reproduces the
# in-memory batch analysis exactly.


@pytest.fixture(scope="module")
def batch_result():
    sieve = Sieve(_chain_app())
    return sieve.run(constant_rate(40.0), duration=45.0, seed=7,
                     workload_name="replay-check")


@pytest.mark.parametrize("kind", BACKENDS)
class TestReplayReproducesBatchAnalysis:
    def test_replay_is_exact(self, kind, tmp_path, batch_result):
        backend = _backend(kind, tmp_path)
        for ts in batch_result.run.frame:
            backend.write(ts.key.component, ts.key.metric,
                          ts.times, ts.values)
        backend.flush()
        replayed_frame = backend.to_frame()
        replayed_run = dataclasses.replace(batch_result.run,
                                           frame=replayed_frame)
        replayed = Sieve(_chain_app()).analyze(replayed_run, seed=7)
        for component in batch_result.clusterings:
            assert replayed.clusterings[component].labels() \
                == batch_result.clusterings[component].labels()
            assert replayed.clusterings[component].representatives \
                == batch_result.clusterings[component].representatives
        assert edge_jaccard(replayed.dependency_graph,
                            batch_result.dependency_graph,
                            level="metric") == 1.0


# ---------------------------------------------------------------------------
# The write-ahead ingest journal


class TestIngestJournal:
    def test_roundtrip_is_exact(self, tmp_path):
        path = tmp_path / "ingest.journal"
        journal = IngestJournal(path)
        t = np.array([1.0, 1.5 + 1e-13, 2.0])
        v = np.array([0.1, np.pi, -3.7e-9])
        journal.append_batch("web", "cpu", t, v)
        journal.append_batch("db", "mem", [3.0], [4.0])
        journal.close()
        records = list(replay_journal(path))
        assert len(records) == 2
        component, metric, rt, rv = records[0]
        assert (component, metric) == ("web", "cpu")
        assert rt.tolist() == t.tolist()  # bit-identical floats
        assert rv.tolist() == v.tolist()
        assert journal_record_count(path) == 2

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "ingest.journal"
        journal = IngestJournal(path)
        journal.append_batch("web", "cpu", [1.0], [1.0])
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"c":"web","m":"cpu","t":[2.0],"v"')  # torn
        assert journal_record_count(path) == 1

    def test_corrupt_middle_raises(self, tmp_path):
        path = tmp_path / "ingest.journal"
        journal = IngestJournal(path)
        journal.append_batch("web", "cpu", [1.0], [1.0])
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
            handle.write('{"c":"web","m":"cpu","t":[2.0],"v":[2.0]}\n')
        with pytest.raises(ValueError):
            list(replay_journal(path))

    def test_missing_journal_is_empty(self, tmp_path):
        assert list(replay_journal(tmp_path / "absent.journal")) == []

    def test_reopen_repairs_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "ingest.journal"
        journal = IngestJournal(path)
        journal.append_batch("web", "cpu", [1.0], [1.0])
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"c":"web","m":"cpu","t":[2.0],"v"')  # torn
        # A resumed run re-opens the same journal: the torn tail must
        # be truncated, or the next record merges into garbage.
        resumed = IngestJournal(path)
        resumed.append_batch("web", "cpu", [3.0], [3.0])
        resumed.close()
        records = list(replay_journal(path))
        assert [(c, m, t.tolist()) for c, m, t, _v in records] \
            == [("web", "cpu", [1.0]), ("web", "cpu", [3.0])]

    def test_truncate_starts_fresh(self, tmp_path):
        path = tmp_path / "ingest.journal"
        journal = IngestJournal(path)
        journal.append_batch("web", "cpu", [50.0], [1.0])
        journal.close()
        fresh = IngestJournal(path, truncate=True)
        fresh.append_batch("web", "cpu", [1.0], [1.0])
        fresh.close()
        records = list(replay_journal(path))
        assert len(records) == 1
        assert records[0][2].tolist() == [1.0]

    def test_bus_journals_ahead_of_delivery(self, tmp_path):
        path = tmp_path / "ingest.journal"
        journal = IngestJournal(path)
        bus = IngestionBus()
        bus.attach_journal(journal)
        delivered = []
        bus.subscribe(lambda c, m, t, v: delivered.append((c, m)))
        bus.publish("web", 1.0, {"cpu": 1.0, "mem": 2.0})
        bus.publish("web", 1.5, {"cpu": 2.0, "mem": 3.0})
        bus.flush()
        journal.close()
        records = list(replay_journal(path))
        assert {(c, m) for c, m, _t, _v in records} == set(delivered)
        assert bus.stats.journaled_batches == 2
        # Replaying through a window store rebuilds the exact state.
        store = WindowStore()
        for component, metric, t, v in records:
            store.ingest(component, metric, t, v)
        assert store.total_points() == 4

    def test_failing_journal_write_requeues_everything(self, tmp_path):
        class BrokenJournal:
            def append_batch(self, *_args):
                raise OSError("disk full")

            def commit(self):
                pass

        delivered = []
        bus = IngestionBus()
        bus.attach_journal(BrokenJournal())
        bus.subscribe(lambda c, m, t, v: delivered.append((c, m)))
        bus.publish_points("web", "cpu", [1.0], [1.0])
        bus.publish_points("db", "mem", [1.0], [1.0])
        with pytest.raises(OSError):
            bus.flush()
        # Nothing was journaled or delivered -- nothing may be lost.
        assert delivered == []
        assert bus.pending_points == 2

    def test_failing_sink_still_journals_its_batch(self, tmp_path):
        path = tmp_path / "ingest.journal"
        bus = IngestionBus()
        bus.attach_journal(IngestJournal(path))

        def explode(component, metric, times, values):
            raise RuntimeError("sink down")

        bus.subscribe(explode)
        bus.publish_points("web", "cpu", [1.0], [1.0])
        with pytest.raises(RuntimeError):
            bus.flush()
        # The write-ahead contract: the batch hit the journal first.
        assert journal_record_count(path) == 1


# ---------------------------------------------------------------------------
# Backpressure


class TestBackpressure:
    def test_drop_oldest_keeps_newest_points(self):
        bus = IngestionBus(flush_threshold=10_000, max_pending=10,
                           overflow_policy="drop_oldest")
        bus.publish_points("web", "cpu", np.arange(8.0), np.zeros(8))
        bus.publish_points("db", "mem", 8.0 + np.arange(8.0),
                           np.zeros(8))
        assert bus.pending_points == 10
        assert bus.stats.overflow_dropped == 6
        received = {}
        bus.subscribe(lambda c, m, t, v: received.update({(c, m): t}))
        bus.flush()
        # The six oldest points (cpu t=0..5) were shed.
        assert received[("web", "cpu")].tolist() == [6.0, 7.0]
        assert len(received[("db", "mem")]) == 8

    def test_downsample_halves_and_keeps_newest(self):
        bus = IngestionBus(flush_threshold=10_000, max_pending=10,
                           overflow_policy="downsample")
        bus.publish_points("web", "cpu", np.arange(16.0), np.arange(16.0))
        assert bus.pending_points <= 10
        assert bus.stats.overflow_downsampled >= 6
        received = {}
        bus.subscribe(lambda c, m, t, v: received.update({(c, m): t}))
        bus.flush()
        kept = received[("web", "cpu")]
        assert kept[-1] == 15.0  # newest sample survives thinning
        assert len(kept) <= 10

    def test_flush_drains_before_shedding(self):
        # A healthy subscriber must see every point: crossing the
        # flush threshold delivers the buffers, so backpressure never
        # sheds data a flush could have drained.
        received = []
        bus = IngestionBus(flush_threshold=4096, max_pending=8192)
        bus.subscribe(lambda c, m, t, v: received.append(t.size))
        bus.publish_points("web", "cpu", np.arange(20_000.0),
                           np.zeros(20_000))
        assert sum(received) == 20_000
        assert bus.stats.overflow_dropped == 0
        assert bus.pending_points == 0

    def test_drop_oldest_keeps_buffer_memory_bounded(self):
        # The stalled-consumer case backpressure exists for: pending
        # is capped below the flush threshold, so shedding (not
        # flushing) is the only drain -- the underlying lists must not
        # keep every published point alive.
        bus = IngestionBus(flush_threshold=100_000, max_pending=64,
                           overflow_policy="drop_oldest")
        for step in range(5_000):
            bus.publish("web", float(step), {"cpu": 0.0})
        assert bus.pending_points <= 64
        buffer = bus._buffers[("web", "cpu")]
        assert len(buffer.times) <= 2 * 64 + 1
        # The ordering guard survives compaction.
        bus.publish("web", 1.0, {"cpu": 0.0})  # far in the past
        assert bus.stats.rejected_points == 1

    def test_unbounded_bus_never_sheds(self):
        bus = IngestionBus(flush_threshold=10_000)
        bus.publish_points("web", "cpu", np.arange(100.0), np.zeros(100))
        assert bus.pending_points == 100
        assert bus.stats.overflow_dropped == 0
        assert bus.stats.overflow_downsampled == 0

    def test_stats_surface_in_engine_summary(self):
        config = StreamingConfig(bus_max_pending=64,
                                 bus_overflow_policy="downsample")
        from repro.streaming import StreamingSieve

        engine = StreamingSieve(config=config, seed=1)
        assert engine.bus.max_pending == 64
        assert engine.bus.overflow_policy == "downsample"
        summary = engine.summary()
        assert "overflow_dropped" in summary
        assert "overflow_downsampled" in summary

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            StreamingConfig(bus_overflow_policy="explode")
        with pytest.raises(ValueError):
            IngestionBus(max_pending=-1)


# ---------------------------------------------------------------------------
# WindowStore with a durable backend


class TestWindowStoreBackend:
    def test_snapshot_reaches_past_retention(self, tmp_path):
        backend = SqliteBackend(tmp_path / "points.db")
        store = WindowStore(retention=10.0, max_points_per_series=32,
                            backend=backend)
        for step in range(100):
            store.ingest("web", "cpu", [float(step)], [float(step)])
        assert store.total_evicted() > 0
        # A recent window comes from the ring...
        recent = store.snapshot(95.0, 99.0)
        assert store.backend_reads == 0
        assert len(recent.get(MetricKey("web", "cpu"))) == 5
        # ...but an old window transparently falls back to the backend.
        old = store.snapshot(10.0, 20.0)
        assert store.backend_reads == 1
        ts = old.get(MetricKey("web", "cpu"))
        assert ts.times.tolist() == [float(i) for i in range(10, 21)]

    def test_full_history_snapshot_from_backend(self, tmp_path):
        backend = SqliteBackend(tmp_path / "points.db")
        store = WindowStore(retention=10.0, max_points_per_series=32,
                            backend=backend)
        for step in range(50):
            store.ingest("web", "cpu", [float(step)], [0.0])
        frame = store.snapshot()
        assert frame.get(MetricKey("web", "cpu")).times[0] == 0.0
        assert len(frame.get(MetricKey("web", "cpu"))) == 50

    def test_without_backend_old_windows_stay_truncated(self):
        store = WindowStore(retention=10.0, max_points_per_series=32)
        for step in range(100):
            store.ingest("web", "cpu", [float(step)], [0.0])
        old = store.snapshot(10.0, 20.0)
        assert len(old) == 0  # evicted, nothing to serve

    def test_resume_clip_drops_republished_duplicates(self):
        bus = IngestionBus()
        received = []
        bus.subscribe(
            lambda c, m, t, v: received.append((c, m, t.tolist())))
        bus.arm_resume_clip({("web", "cpu"): 2.0})
        bus.publish("web", 1.5, {"cpu": 1.0, "mem": 1.0})  # cpu clipped
        bus.publish("web", 2.0, {"cpu": 2.0})  # at bound -> clipped
        bus.publish("web", 2.5, {"cpu": 3.0})  # past bound -> disarms
        bus.publish("web", 1.0, {"cpu": 0.0})  # genuinely late
        bus.flush()
        assert bus.stats.resume_clipped == 2
        assert bus.stats.rejected_points == 1
        by_key = {(c, m): t for c, m, t in received}
        assert by_key[("web", "cpu")] == [2.5]
        assert by_key[("web", "mem")] == [1.5]

    def test_resume_clip_on_prebatched_points(self):
        bus = IngestionBus()
        bus.arm_resume_clip({("db", "mem"): 3.0})
        bus.publish_points("db", "mem", [1.0, 2.0, 3.0, 4.0],
                           [1.0, 2.0, 3.0, 4.0])
        assert bus.stats.resume_clipped == 3
        assert bus.pending_points == 1


# ---------------------------------------------------------------------------
# Metered MetricsStore over every backend


class TestMetricsStoreBackends:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_metering_is_backend_agnostic(self, kind, tmp_path):
        reference = MetricsStore()
        store = MetricsStore(backend=_backend(kind, tmp_path))
        for target in (reference, store):
            target.write_batch("web", "cpu", [1.0, 2.0], [1.0, 2.0])
            target.write_point("web", "mem", 1.0, 5.0)
            target.query("web", "cpu", 1.5, 2.0)
            target.simulate_dashboard_reads()
        assert store.usage.summary() == reference.usage.summary()
        assert store.series_count() == 2
        assert store.sample_count() == 3

    def test_replay_frame_keep_subset(self, tmp_path):
        backend = SqliteBackend(tmp_path / "points.db")
        source = MetricsStore()
        source.write_batch("c", "m1", [1.0, 2.0], [1.0, 2.0])
        source.write_batch("c", "m2", [1.0, 2.0], [3.0, 4.0])
        durable = MetricsStore(backend=backend)
        durable.replay_frame(source.frame, keep=[MetricKey("c", "m2")])
        assert durable.sample_count() == 2
        assert backend.query("c", "m2").values.tolist() == [3.0, 4.0]


# ---------------------------------------------------------------------------
# Checkpoint / restore


def _streaming_driver(seed=3, config=None, engine=None, shift=False):
    config = config or StreamingConfig(window=20.0, hop=10.0,
                                       retention=300.0)
    return SimulationStreamDriver(
        _chain_app(shift_backend=shift), constant_rate(40.0),
        config=config, seed=seed, record_frame=False, engine=engine,
    )


class TestCheckpointRestore:
    @pytest.fixture(scope="class")
    def checkpointed(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("checkpoint")
        journal = IngestJournal(tmp / "ingest.journal")
        config = StreamingConfig(window=20.0, hop=10.0, retention=300.0)
        from repro.streaming import StreamingSieve

        engine = StreamingSieve(config=config, seed=3, journal=journal,
                                application="demo", workload="stream")
        driver = _streaming_driver(config=config, engine=engine)
        driver.run(60.0)
        save_checkpoint(driver.engine, tmp / "state.ckpt")
        journal.commit()
        return tmp, config, driver

    def test_checkpoint_file_is_json(self, checkpointed):
        tmp, _config, driver = checkpointed
        state = load_checkpoint(tmp / "state.ckpt")
        assert state["version"] == 1
        assert state["stats"]["windows"] == driver.engine.stats.windows
        assert state["previous"] is not None

    def test_restore_rebuilds_rings_and_state(self, checkpointed):
        tmp, config, driver = checkpointed
        restored = restore_engine(tmp / "state.ckpt", config,
                                  journal_path=tmp / "ingest.journal")
        original = driver.engine
        assert restored.windows.total_points() \
            == original.windows.total_points()
        assert restored.windows.first_time == original.windows.first_time
        assert restored._next_analysis == original._next_analysis
        assert restored.last_offer == original.last_offer
        assert restored.stats.as_dict() == original.stats.as_dict()
        prev_r, prev_o = restored.analyzer.previous, \
            original.analyzer.previous
        assert prev_r.index == prev_o.index
        for component in prev_o.clusterings:
            assert prev_r.clusterings[component].labels() \
                == prev_o.clusterings[component].labels()
        assert edge_jaccard(prev_r.dependency_graph,
                            prev_o.dependency_graph,
                            level="metric") == 1.0
        # Drift baselines restored exactly.
        frozen_r = {c: (m, coh) for c, _cl, m, coh
                    in restored.drift.baseline_items()}
        frozen_o = {c: (m, coh) for c, _cl, m, coh
                    in original.drift.baseline_items()}
        assert frozen_r == frozen_o

    def test_restore_rejects_config_mismatch(self, checkpointed):
        tmp, _config, _driver = checkpointed
        other = StreamingConfig(window=30.0, hop=10.0, retention=300.0)
        with pytest.raises(ValueError, match="mismatch"):
            restore_engine(tmp / "state.ckpt", other)

    def test_restore_heals_backend_missing_journal_tail(self, tmp_path):
        from repro.persistence import checkpoint_state
        from repro.streaming import StreamingSieve

        config = StreamingConfig(window=20.0, hop=10.0, retention=300.0)
        # The dead run journaled two batches but crashed between the
        # journal append and sink delivery of the second -- the durable
        # backend is short of the journal's tail.
        backend = SqliteBackend(tmp_path / "points.db")
        backend.write("web", "cpu", [1.0, 2.0], [1.0, 2.0])
        journal = IngestJournal(tmp_path / "ingest.journal")
        journal.append_batch("web", "cpu", [1.0, 2.0], [1.0, 2.0])
        journal.append_batch("web", "cpu", [3.0, 4.0], [3.0, 4.0])
        journal.close()
        state = checkpoint_state(StreamingSieve(config=config, seed=1))

        restored = restore_engine(state, config,
                                  journal_path=tmp_path
                                  / "ingest.journal",
                                  store_backend=backend)
        assert restored.windows.total_points() == 4
        # The backend hole was healed without duplicating the prefix.
        assert backend.sample_count() == 4
        assert backend.query("web", "cpu").times.tolist() \
            == [1.0, 2.0, 3.0, 4.0]

    def test_checkpoint_policy_cadence(self, tmp_path):
        config = StreamingConfig(window=20.0, hop=10.0, retention=300.0,
                                 checkpoint_every_windows=2)
        driver = _streaming_driver(config=config)
        policy = CheckpointPolicy(driver.engine,
                                  tmp_path / "auto.ckpt")
        assert policy.every == 2
        driver.engine.subscribe(policy)
        analyses = driver.run(70.0)
        assert policy.checkpoints_written == len(analyses) // 2
        assert (tmp_path / "auto.ckpt").exists()


# ---------------------------------------------------------------------------
# Crash-restart determinism (the acceptance scenario)


class TestCrashRestartDeterminism:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("crash")
        config = StreamingConfig(window=20.0, hop=10.0, retention=300.0)

        # The uninterrupted reference run.
        uninterrupted = _streaming_driver(config=config)
        reference_windows = uninterrupted.run(90.0)

        # The doomed run: journal + checkpoint-every-window, killed
        # after 50 simulated seconds by simply dropping the driver.
        from repro.streaming import StreamingSieve

        journal = IngestJournal(tmp / "ingest.journal")
        engine = StreamingSieve(
            config=config, seed=3, journal=journal,
            application="demo", workload="stream",
        )
        doomed = _streaming_driver(config=config, engine=engine)
        policy = CheckpointPolicy(engine, tmp / "state.ckpt", every=1)
        engine.subscribe(policy)
        early_windows = doomed.run(50.0)
        journal.commit()
        del doomed  # the "crash"

        # The resurrected run: restore state, fast-forward the seeded
        # simulation to the dead engine's last tick, keep streaming.
        restored = restore_engine(tmp / "state.ckpt", config,
                                  journal_path=tmp / "ingest.journal")
        resumed = _streaming_driver(config=config, engine=restored)
        late_windows = resumed.resume_run(90.0 - 50.0)
        return (uninterrupted, reference_windows,
                early_windows, resumed, late_windows)

    def test_window_schedule_is_identical(self, runs):
        _u, reference, early, _r, late = runs
        combined = early + late
        assert [(a.index, a.start, a.end) for a in combined] \
            == [(a.index, a.start, a.end) for a in reference]

    def test_recluster_decisions_are_identical(self, runs):
        _u, reference, early, _r, late = runs
        combined = early + late
        assert [a.recluster_reasons for a in combined] \
            == [a.recluster_reasons for a in reference]

    def test_final_clusterings_identical(self, runs):
        _u, reference, _early, _resumed, late = runs
        assert late, "restart produced no windows"
        final_ref = reference[-1]
        final_res = late[-1]
        assert set(final_res.clusterings) == set(final_ref.clusterings)
        for component in final_ref.clusterings:
            assert final_res.clusterings[component].labels() \
                == final_ref.clusterings[component].labels()

    def test_final_edges_jaccard_one(self, runs):
        _u, reference, _early, _resumed, late = runs
        assert edge_jaccard(late[-1].dependency_graph,
                            reference[-1].dependency_graph,
                            level="metric") == 1.0

    def test_mid_hop_crash_resume_stays_on_hop_grid(self, tmp_path):
        config = StreamingConfig(window=20.0, hop=10.0, retention=300.0)
        from repro.streaming import StreamingSieve

        journal = IngestJournal(tmp_path / "ingest.journal")
        # Small flush threshold: the bus auto-flushes (and journals)
        # several times inside every hop, like a big deployment.
        bus = IngestionBus(flush_threshold=128)
        engine = StreamingSieve(config=config, seed=3, bus=bus,
                                journal=journal,
                                application="demo", workload="stream")
        doomed = _streaming_driver(config=config, engine=engine)
        engine.subscribe(CheckpointPolicy(engine,
                                          tmp_path / "state.ckpt",
                                          every=1))
        doomed.run(40.0)
        windows_before = engine.stats.windows
        last_offer = engine.last_offer
        # Crash 3.7s into the next hop, after mid-hop auto-flushes
        # journaled samples newer than the last engine tick.
        doomed.session.advance(3.7)
        journal.commit()
        del doomed

        restored = restore_engine(tmp_path / "state.ckpt", config,
                                  journal_path=tmp_path
                                  / "ingest.journal")
        assert restored.windows.latest_time() > last_offer
        resumed = _streaming_driver(config=config, engine=restored)
        produced = resumed.resume_run(20.0)
        # resume_run realigned the ticks with the dead run's hop grid:
        # the same window spans an uninterrupted run would analyze.
        # (A trailing off-grid window can follow when the requested
        # duration is not a hop multiple -- plain run() semantics.)
        assert [round(a.end) for a in produced[:2]] == [55, 65]
        assert all(a.end - a.start == pytest.approx(20.0)
                   for a in produced)
        assert restored.stats.windows == windows_before + len(produced)

    def test_mid_cycle_partial_flush_resume_is_lossless(self, tmp_path):
        # The sharpest crash window: an auto-flush lands in the middle
        # of a scrape cycle, so the journal holds only part of that
        # cycle's exporters when the process dies.  resume_run rewinds
        # to the cycle start and re-publishes it (the overlap clip
        # drops the journaled half), so the resumed run still matches
        # an uninterrupted one exactly.
        config = StreamingConfig(window=20.0, hop=10.0, retention=300.0)
        from repro.streaming import StreamingSieve

        reference = _streaming_driver(config=config)
        reference_windows = reference.run(60.0)

        journal = IngestJournal(tmp_path / "ingest.journal")
        bus = IngestionBus(flush_threshold=64)  # flushes mid-cycle
        engine = StreamingSieve(config=config, seed=3, bus=bus,
                                journal=journal,
                                application="demo", workload="stream")
        doomed = _streaming_driver(config=config, engine=engine)
        engine.subscribe(CheckpointPolicy(engine,
                                          tmp_path / "state.ckpt",
                                          every=1))
        doomed.run(40.0)
        doomed.session.advance(1.3)  # partial scrape cycles, no offer
        journal.commit()
        del doomed

        resumed_journal = IngestJournal(tmp_path / "ingest.journal")
        restored = restore_engine(tmp_path / "state.ckpt", config,
                                  journal_path=tmp_path
                                  / "ingest.journal",
                                  journal=resumed_journal)
        resumed = _streaming_driver(config=config, engine=restored)
        late = resumed.resume_run(20.0)
        resumed_journal.commit()
        assert restored.bus.stats.resume_clipped > 0
        # The crash-advance streamed ~1.3s the reference never saw, so
        # the resumed run may append one extra trailing window; the
        # window sharing the reference's index must match it exactly.
        final_ref = reference_windows[-1]
        final_res = next(a for a in late
                         if a.index == final_ref.index)
        assert (final_res.start, final_res.end) \
            == (final_ref.start, final_ref.end)
        for component in final_ref.clusterings:
            assert final_res.clusterings[component].labels() \
                == final_ref.clusterings[component].labels()
        assert edge_jaccard(final_res.dependency_graph,
                            final_ref.dependency_graph,
                            level="metric") == 1.0
        # A second restore from the now-grown journal must not replay
        # duplicates: the first resume's re-published overlap cycle
        # was kept out of the journal by the bus clip.
        second = restore_engine(tmp_path / "state.ckpt", config,
                                journal_path=tmp_path
                                / "ingest.journal")
        for component in second.windows.components:
            for metric in second.windows.metrics_of(component):
                ring = second.windows.series(component, metric)
                assert np.all(np.diff(ring.times) > 0), \
                    f"duplicated samples in {component}/{metric}"

    def test_full_retention_analysis_matches(self, runs):
        uninterrupted, _ref, _early, resumed, _late = runs
        final_u = uninterrupted.final_analysis()
        final_r = resumed.final_analysis()
        assert final_u is not None and final_r is not None
        for component in final_u.clusterings:
            assert final_r.clusterings[component].labels() \
                == final_u.clusterings[component].labels()
        assert edge_jaccard(final_r.dependency_graph,
                            final_u.dependency_graph,
                            level="metric") == 1.0


# ---------------------------------------------------------------------------
# Drift + SLA coincidence fires the RCA consumer


class TestAutoTriggeredRCA:
    @pytest.fixture(scope="class")
    def fired(self):
        config = StreamingConfig(window=20.0, hop=10.0, retention=120.0)
        driver = _streaming_driver(config=config, shift=True)
        seen = []
        rca = WindowDiffRCA(
            driver.engine,
            sla=SLACondition(percentile=90.0, threshold=1e-9),
            on_report=seen.append,
        )
        driver.engine.subscribe(rca)
        analyses = driver.run(90.0)
        return driver, rca, seen, analyses

    def test_fires_on_drift_plus_violation(self, fired):
        _driver, rca, seen, analyses = fired
        assert rca.windows_seen == len(analyses)
        assert rca.reports, "drift + SLA violation never fired RCA"
        assert seen == rca.reports

    def test_report_diffs_healthy_against_drifted(self, fired):
        _driver, rca, _seen, analyses = fired
        triggered = rca.reports[0]
        drifted = next(a for a in analyses
                       if "drift" in a.recluster_reasons.values())
        assert triggered.faulty_index == drifted.index
        assert triggered.baseline_index < triggered.faulty_index
        report = triggered.report
        assert set(report.diffs) == {"front", "mid", "back"}
        report.cluster_novelty_histogram()

    def test_quiet_without_sla_condition(self):
        config = StreamingConfig(window=20.0, hop=10.0, retention=120.0)
        driver = _streaming_driver(config=config, shift=True)
        rca = WindowDiffRCA(driver.engine)  # no SLA -> manual only
        driver.engine.subscribe(rca)
        driver.run(60.0)
        assert rca.reports == []

    def test_engine_records_latency_observations(self, fired):
        driver, _rca, _seen, _analyses = fired
        assert len(driver.engine.sla_history) > 0
        start, end = driver.engine.sla_history[0][0], \
            driver.engine.sla_history[-1][0]
        assert driver.engine.latencies_between(start, end)


# ---------------------------------------------------------------------------
# CLI record / replay / resume plumbing


class TestCLIPersistence:
    def test_parser_accepts_new_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args([
            "stream", "--journal", "j.log", "--checkpoint", "c.json",
            "--checkpoint-every", "3", "--resume",
        ])
        assert args.func.__name__ == "cmd_stream"
        assert args.checkpoint_every == 3
        args = parser.parse_args(
            ["record", "--backend", "spill", "--out", "d"])
        assert args.func.__name__ == "cmd_record"
        args = parser.parse_args(
            ["replay", "--backend", "sqlite", "--path", "x.db"])
        assert args.func.__name__ == "cmd_replay"

    def test_record_then_replay_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        db = tmp_path / "run.db"
        assert main(["record", "--app", "sharelatex",
                     "--backend", "sqlite", "--out", str(db),
                     "--duration", "15", "--workload", "constant"]) == 0
        assert db.exists()
        assert main(["replay", "--backend", "sqlite",
                     "--path", str(db)]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        assert "reduction_factor" in out
        assert "network_out_bytes" in out

    def test_replay_empty_backend_fails(self, tmp_path, capsys):
        from repro.cli import main

        empty = SqliteBackend(tmp_path / "empty.db")
        empty.close()
        assert main(["replay", "--backend", "sqlite",
                     "--path", str(tmp_path / "empty.db")]) == 2

    def test_resume_without_checkpoint_fails(self, tmp_path):
        from repro.cli import main

        assert main(["stream", "--duration", "10", "--resume",
                     "--journal", str(tmp_path / "j.log"),
                     "--checkpoint",
                     str(tmp_path / "missing.ckpt")]) == 2

    def test_resume_without_journal_fails(self, tmp_path):
        from repro.cli import main

        ckpt = tmp_path / "state.ckpt"
        ckpt.write_text("{}")
        assert main(["stream", "--duration", "10", "--resume",
                     "--checkpoint", str(ckpt)]) == 2

    def test_resume_rejects_mismatched_trace(self, tmp_path, capsys):
        from repro.cli import main
        from repro.streaming import StreamingSieve

        # Checkpoint a sharelatex/constant run at the CLI's default
        # window geometry, then resume with a different seed/workload:
        # that would continue a *different* simulation on the old
        # rings, so it must be refused.
        engine = StreamingSieve(
            config=StreamingConfig(checkpoint_every_windows=1),
            seed=1, application="sharelatex", workload="constant",
        )
        ckpt = tmp_path / "state.ckpt"
        save_checkpoint(engine, ckpt)
        base = ["stream", "--resume", "--duration", "10",
                "--journal", str(tmp_path / "j.log"),
                "--checkpoint", str(ckpt)]
        assert main(base + ["--workload", "constant",
                            "--seed", "2"]) == 2
        assert main(base + ["--seed", "1"]) == 2  # workload: random
        assert "mismatch" in capsys.readouterr().err

    def test_fresh_run_clears_stale_checkpoint(self, tmp_path):
        from repro.cli import main

        stale = tmp_path / "state.ckpt"
        stale.write_text('{"version": 1}')
        # Too short for any window: no new checkpoint gets written, so
        # the stale one must be gone (a crash here followed by --resume
        # would otherwise restore the previous session's state).
        assert main(["stream", "--duration", "5", "--window", "10",
                     "--workload", "constant",
                     "--journal", str(tmp_path / "j.log"),
                     "--checkpoint", str(stale)]) == 0
        assert not stale.exists()

    def test_record_overwrites_existing_backend(self, tmp_path, capsys):
        from repro.cli import main

        db = tmp_path / "run.db"
        args = ["record", "--backend", "sqlite", "--out", str(db),
                "--duration", "8", "--workload", "constant"]
        assert main(args) == 0
        first = SqliteBackend(db).sample_count()
        # A second recording must start fresh, not append a second
        # (out-of-order) timeline onto the first.
        assert main(args) == 0
        assert SqliteBackend(db).sample_count() == first


# ---------------------------------------------------------------------------
# Kill matrix: tiered-retention compaction crashes


_TIER_SCHEDULE = "100s:full,400s:10s,inf:40s"


def _tiered_fill(directory, schedule=_TIER_SCHEDULE):
    backend = SpillBackend(directory, hot_points=256, schedule=schedule)
    t = np.arange(0.0, 2000.0, 0.5)
    rng = np.random.default_rng(11)
    v = np.cumsum(rng.standard_normal(t.size))
    for lo in range(0, t.size, 500):
        backend.write("web", "cpu", t[lo:lo + 500], v[lo:lo + 500])
    backend.close()  # spill the hot tail; every sample is durable
    return t, v


class TestTieredCompactionCrash:
    def test_sigkill_mid_rollup_preserves_precompact_view(self,
                                                          tmp_path):
        """A real SIGKILL while the first rollup segment is being
        written must leave the pre-compaction view intact (the index
        is only rewritten after every segment lands), and a second
        compaction must finish the migration without double-rolling
        or losing buckets."""
        import subprocess
        import sys

        store = tmp_path / "store"
        t, v = _tiered_fill(store)
        src = str(Path(__file__).resolve().parents[1] / "src")
        script = (
            "import os, signal\n"
            "import repro.persistence.spill as spill\n"
            "orig = spill._write_segment\n"
            "def killer(path, arrays, fmt):\n"
            "    if 'vmin' in arrays:\n"
            "        os.kill(os.getpid(), signal.SIGKILL)\n"
            "    return orig(path, arrays, fmt)\n"
            "spill._write_segment = killer\n"
            "from repro.persistence import SpillBackend\n"
            f"backend = SpillBackend({str(store)!r}, hot_points=256,\n"
            f"                       schedule={_TIER_SCHEDULE!r})\n"
            "backend.compact()\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={**os.environ, "PYTHONPATH": src},
            capture_output=True,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        # The killed compaction left at worst orphaned files: the
        # reopened directory still serves the raw, pre-compact view.
        reopened = SpillBackend(store, hot_points=256,
                                schedule=_TIER_SCHEDULE)
        got = reopened.query("web", "cpu", float("-inf"), float("inf"))
        assert np.array_equal(got.times, t)
        assert np.array_equal(got.values, v)

        # The retried migration completes and conserves every sample.
        stats = reopened.compact()
        assert stats["samples_rolled"] > 0
        rolled = reopened.query_rollup("web", "cpu",
                                       float("-inf"), float("inf"))
        assert rolled.total_samples() == t.size
        assert np.all(np.diff(rolled.times) > 0)
        again = reopened.compact()
        assert again["samples_rolled"] == 0
        reopened.close()

    def test_crash_between_index_publish_and_unlink(self, tmp_path,
                                                    monkeypatch):
        """Dying after the atomic index rewrite but before the old
        segment files are unlinked leaves orphans a later compaction
        ignores -- reads and re-compaction see only the new view."""
        store = tmp_path / "store"
        t, _v = _tiered_fill(store)
        backend = SpillBackend(store, hot_points=256,
                               schedule=_TIER_SCHEDULE)
        live_files = {f.name for f in store.iterdir()}
        with monkeypatch.context() as patched:
            patched.setattr(Path, "unlink",
                            lambda self, missing_ok=False: None)
            backend.compact()
        # The old segment files really are still on disk (the crash
        # window exists) ...
        assert live_files - {"index.json"} \
            <= {f.name for f in store.iterdir()}
        backend.close()

        # ... yet the reopened view is the migrated one, conserves
        # every sample, and a second compaction rolls nothing twice.
        reopened = SpillBackend(store, hot_points=256,
                                schedule=_TIER_SCHEDULE)
        rolled = reopened.query_rollup("web", "cpu",
                                       float("-inf"), float("inf"))
        assert rolled.total_samples() == t.size
        assert np.all(np.diff(rolled.times) > 0)
        assert reopened.compact()["samples_rolled"] == 0
        reopened.close()


class TestResumeAcrossRollupBoundary:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("rollup-crash")
        config = StreamingConfig(window=20.0, hop=10.0, retention=300.0)
        schedule = "30s:full,120s:10s,inf:30s"
        from repro.streaming import StreamingSieve

        # Uninterrupted reference run with an *unscheduled* store:
        # the ground truth for both windows and raw sample counts.
        reference_store = SpillBackend(tmp / "ref-store", hot_points=8)
        reference_engine = StreamingSieve(
            config=config, seed=3, store_backend=reference_store,
            application="demo", workload="stream",
        )
        uninterrupted = _streaming_driver(config=config,
                                          engine=reference_engine)
        reference_windows = uninterrupted.run(90.0)
        reference_store.flush()

        # Doomed run with a tiered store; compaction crosses a rollup
        # boundary right before the crash.
        journal = IngestJournal(tmp / "ingest.journal")
        store = SpillBackend(tmp / "store", hot_points=8,
                             schedule=schedule)
        engine = StreamingSieve(
            config=config, seed=3, journal=journal, store_backend=store,
            application="demo", workload="stream",
        )
        doomed = _streaming_driver(config=config, engine=engine)
        policy = CheckpointPolicy(engine, tmp / "state.ckpt", every=1)
        engine.subscribe(policy)
        early_windows = doomed.run(50.0)
        mid_stats = store.compact()
        journal.commit()
        del doomed  # the crash: unspilled hot rows are lost

        # Resume against the reopened (already partially rolled-up)
        # store; the journal heals the lost tail.
        healed = SpillBackend(tmp / "store", hot_points=8,
                              schedule=schedule)
        restored = restore_engine(tmp / "state.ckpt", config,
                                  journal_path=tmp / "ingest.journal",
                                  store_backend=healed)
        resumed = _streaming_driver(config=config, engine=restored)
        late_windows = resumed.resume_run(40.0)
        healed.flush()
        return (reference_store, reference_windows, early_windows,
                late_windows, healed, mid_stats)

    def test_compaction_crossed_a_rollup_boundary(self, runs):
        *_rest, mid_stats = runs
        assert mid_stats["samples_rolled"] > 0

    def test_windows_bit_identical_to_uninterrupted_run(self, runs):
        _s, reference, early, late, *_rest = runs
        combined = early + late
        assert [(a.index, a.start, a.end) for a in combined] \
            == [(a.index, a.start, a.end) for a in reference]
        assert [a.recluster_reasons for a in combined] \
            == [a.recluster_reasons for a in reference]
        for component in reference[-1].clusterings:
            assert late[-1].clusterings[component].labels() \
                == reference[-1].clusterings[component].labels()
        assert edge_jaccard(late[-1].dependency_graph,
                            reference[-1].dependency_graph,
                            level="metric") == 1.0

    def test_no_lost_or_double_rolled_buckets(self, runs):
        reference_store, _w, _e, _l, healed, _m = runs
        stats = healed.compact()  # migrate the resumed tail too
        assert healed.compact()["samples_rolled"] == 0
        assert set(healed.keys()) == set(reference_store.keys())
        for key in reference_store.keys():
            want = reference_store.query(key.component, key.metric,
                                         float("-inf"), float("inf"))
            rolled = healed.query_rollup(key.component, key.metric,
                                         float("-inf"), float("inf"))
            assert rolled.total_samples() == len(want)
            assert np.all(np.diff(rolled.times) > 0)
        assert stats is not None
