"""Tests for snapshot serialization and the command-line interface."""

import json

import pytest

from repro.core import (
    Sieve,
    from_snapshot,
    load_snapshot,
    save_snapshot,
    snapshot,
)
from repro.cli import build_parser, main
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.workload import constant_rate


@pytest.fixture(scope="module")
def small_result():
    specs = [
        ComponentSpec("front", kind="generic",
                      endpoints=(EndpointSpec("op", 0.02),),
                      calls=(CallSpec("back", delay=0.4),)),
        ComponentSpec("back", kind="generic",
                      endpoints=(EndpointSpec("op", 0.01),),
                      concurrency=16),
    ]
    sieve = Sieve(Application("small", specs))
    return sieve.run(constant_rate(35.0), duration=60.0, seed=2)


class TestSnapshot:
    def test_round_trip_preserves_analysis(self, small_result, tmp_path):
        path = tmp_path / "snapshot.json"
        save_snapshot(small_result, path)
        loaded = load_snapshot(path)

        assert loaded.application == "small"
        assert set(loaded.clusterings) == set(small_result.clusterings)
        for component, clustering in small_result.clusterings.items():
            restored = loaded.clusterings[component]
            assert restored.n_clusters == clustering.n_clusters
            assert restored.representatives == clustering.representatives
            assert restored.labels() == clustering.labels()
        assert len(loaded.dependency_graph) \
            == len(small_result.dependency_graph)
        assert loaded.dependency_graph.component_edges() \
            == small_result.dependency_graph.component_edges()

    def test_snapshot_counts(self, small_result):
        data = snapshot(small_result)
        restored = from_snapshot(data)
        assert restored.total_metrics() == small_result.total_metrics()
        assert restored.total_representatives() \
            == small_result.total_representatives()

    def test_snapshot_is_json_compatible(self, small_result):
        json.dumps(snapshot(small_result))  # must not raise

    def test_version_check(self, small_result):
        data = snapshot(small_result)
        data["version"] = 99
        with pytest.raises(ValueError):
            from_snapshot(data)

    def test_relations_preserved_exactly(self, small_result):
        restored = from_snapshot(snapshot(small_result))
        original = {
            (r.source_component, r.source_metric, r.target_component,
             r.target_metric, r.lag)
            for r in small_result.dependency_graph.relations
        }
        round_tripped = {
            (r.source_component, r.source_metric, r.target_component,
             r.target_metric, r.lag)
            for r in restored.dependency_graph.relations
        }
        assert original == round_tripped


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["pipeline", "--app", "sharelatex",
                                  "--duration", "30"])
        assert args.command == "pipeline"
        assert args.duration == 30.0
        args = parser.parse_args(["rca", "--iterations", "5"])
        assert args.iterations == 5
        args = parser.parse_args(["trace-overhead", "--requests", "100"])
        assert args.requests == 100

    def test_catalog_command(self, capsys):
        assert main(["catalog", "--app", "sharelatex"]) == 0
        out = capsys.readouterr().out
        assert "15 components" in out
        assert "haproxy" in out and "mongodb" in out

    def test_trace_overhead_command(self, capsys):
        assert main(["trace-overhead", "--requests", "500"]) == 0
        out = capsys.readouterr().out
        assert "sysdig" in out and "tcpdump" in out

    def test_pipeline_command_with_snapshot(self, capsys, tmp_path):
        path = tmp_path / "snap.json"
        code = main(["pipeline", "--app", "sharelatex",
                     "--duration", "30", "--seed", "5",
                     "--snapshot", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction_factor" in out
        assert path.exists()
        loaded = load_snapshot(path)
        assert loaded.application == "sharelatex"

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pipeline", "--app", "netflix"])
