"""Tests for the RCA engine (case study #2)."""

import numpy as np
import pytest

from repro.causality.depgraph import DependencyGraph, MetricRelation
from repro.clustering.reduction import Cluster, ComponentClustering
from repro.metrics.timeseries import MetricFrame
from repro.rca import (
    classify_edges,
    cluster_similarity,
    match_clusters,
    metric_diff,
    rank_components,
)
from repro.rca.edges import lift_to_cluster_edges
from repro.rca.similarity import annotate_novelty


def _frame_with(component_metrics: dict[str, list[str]]) -> MetricFrame:
    frame = MetricFrame()
    for component, metrics in component_metrics.items():
        for metric in metrics:
            frame.series(component, metric).append(0.0, 1.0)
    return frame


class TestMetricDiff:
    def test_new_discarded_unchanged(self):
        frame_c = _frame_with({"a": ["m1", "m2", "m3"]})
        frame_f = _frame_with({"a": ["m2", "m3", "m4"]})
        diff = metric_diff(frame_c, frame_f)["a"]
        assert diff.new == {"m4"}
        assert diff.discarded == {"m1"}
        assert diff.unchanged == {"m2", "m3"}
        assert diff.novelty_score == 2
        assert diff.total_metrics == 4

    def test_component_only_in_one_version(self):
        frame_c = _frame_with({"a": ["m1"]})
        frame_f = _frame_with({"b": ["m2"]})
        diffs = metric_diff(frame_c, frame_f)
        assert diffs["a"].discarded == {"m1"}
        assert diffs["b"].new == {"m2"}

    def test_ranking_sorted_by_novelty(self):
        frame_c = _frame_with({
            "calm": ["m1", "m2"],
            "busy": ["m1", "m2", "m3"],
            "wild": ["m1", "m2", "m3", "m4"],
        })
        frame_f = _frame_with({
            "calm": ["m1", "m2"],
            "busy": ["m1", "m2", "x"],
            "wild": ["y", "z", "w", "v"],
        })
        ranking = rank_components(metric_diff(frame_c, frame_f))
        assert [d.component for d in ranking] == ["wild", "busy"]
        # calm has zero novelty: excluded, like '-' rows of Table 5.


class TestClusterSimilarity:
    def test_eq2_normalizes_by_correct_cluster(self):
        """S = |C intersect F| / |C| -- new metrics in F cost nothing."""
        m_c = {"a", "b"}
        m_f = {"a", "b", "c", "d", "e"}
        assert cluster_similarity(m_c, m_f) == 1.0

    def test_partial_overlap(self):
        assert cluster_similarity({"a", "b", "c", "d"}, {"a", "b"}) == 0.5

    def test_empty_correct_cluster(self):
        assert cluster_similarity(set(), {"a"}) == 0.0


def _clustering(component: str, groups: dict[int, list[str]],
                ) -> ComponentClustering:
    clusters = [
        Cluster(index=idx, metrics=list(metrics),
                representative=metrics[0],
                centroid=np.zeros(4),
                distances={m: 0.0 for m in metrics})
        for idx, metrics in sorted(groups.items())
    ]
    return ComponentClustering(
        component=component, clusters=clusters, silhouette=0.5,
        k_scores={}, filtered_metrics=[],
        total_metrics=sum(len(m) for m in groups.values()),
    )


class TestMatchClusters:
    def test_identical_clusterings_match_perfectly(self):
        clustering = _clustering("a", {0: ["m1", "m2"], 1: ["m3"]})
        matches = match_clusters("a", clustering, clustering)
        assert all(m.is_matched and m.similarity == 1.0 for m in matches)

    def test_renamed_indices_still_match(self):
        c_version = _clustering("a", {0: ["m1", "m2"], 1: ["m3", "m4"]})
        f_version = _clustering("a", {0: ["m3", "m4"], 1: ["m1", "m2"]})
        matches = match_clusters("a", c_version, f_version)
        for match in matches:
            assert match.similarity == 1.0
            assert match.cluster_c.metrics == match.cluster_f.metrics

    def test_disappeared_cluster_half_matched(self):
        c_version = _clustering("a", {0: ["m1"], 1: ["m2"]})
        f_version = _clustering("a", {0: ["m1"]})
        matches = match_clusters("a", c_version, f_version)
        unmatched = [m for m in matches if not m.is_matched]
        assert len(unmatched) == 1
        assert unmatched[0].cluster_c.metrics == ["m2"]

    def test_novelty_categories(self):
        c_version = _clustering("a", {0: ["m1", "m2"], 1: ["gone", "m3"]})
        f_version = _clustering("a", {0: ["m1", "m2"], 1: ["m3", "fresh"]})
        diff = metric_diff(
            _frame_with({"a": ["m1", "m2", "gone", "m3"]}),
            _frame_with({"a": ["m1", "m2", "m3", "fresh"]}),
        )["a"]
        matches = match_clusters("a", c_version, f_version)
        annotations = annotate_novelty(matches, diff)
        categories = {tuple(sorted(
            (a.match.cluster_c.metrics if a.match.cluster_c else [])
        )): a.category for a in annotations}
        assert categories[("m1", "m2")] == "unchanged"
        assert categories[("gone", "m3")] == "new_and_discarded"


def _graph(*relations) -> DependencyGraph:
    graph = DependencyGraph()
    for src, sm, dst, dm, lag in relations:
        graph.add_relation(MetricRelation(src, sm, dst, dm, lag, 0.01))
    return graph


class TestEdgeClassification:
    def _setup(self):
        clusterings = {
            "a": _clustering("a", {0: ["a_m1", "a_m2"], 1: ["a_m3"]}),
            "b": _clustering("b", {0: ["b_m1"], 1: ["b_m2", "b_m3"]}),
        }
        return clusterings

    def test_lift_aggregates_min_lag(self):
        clusterings = self._setup()
        graph = _graph(
            ("a", "a_m1", "b", "b_m1", 2),
            ("a", "a_m2", "b", "b_m1", 1),  # same cluster pair, lower lag
        )
        edges = lift_to_cluster_edges(graph, clusterings)
        assert len(edges) == 1
        assert next(iter(edges.values())).lag == 1

    def test_identical_versions_all_unchanged(self):
        clusterings = self._setup()
        graph = _graph(("a", "a_m1", "b", "b_m1", 1))
        diff = metric_diff(
            _frame_with({"a": ["a_m1", "a_m2", "a_m3"],
                         "b": ["b_m1", "b_m2", "b_m3"]}),
            _frame_with({"a": ["a_m1", "a_m2", "a_m3"],
                         "b": ["b_m1", "b_m2", "b_m3"]}),
        )
        matches = {
            c: match_clusters(c, clusterings[c], clusterings[c])
            for c in clusterings
        }
        novelty = {
            c: annotate_novelty(matches[c], diff[c]) for c in clusterings
        }
        result = classify_edges(graph, graph, clusterings, clusterings,
                                matches, novelty, threshold=0.5)
        assert result.counts() == {
            "new": 0, "discarded": 0, "lag_changed": 0,
            "novel_endpoint": 0, "unchanged": 1,
        }

    def test_new_edge_detected(self):
        clusterings = self._setup()
        graph_c = _graph()
        graph_f = _graph(("a", "a_m1", "b", "b_m1", 1))
        diff = metric_diff(
            _frame_with({"a": ["a_m1", "a_m2", "a_m3"],
                         "b": ["b_m1", "b_m2", "b_m3"]}),
            _frame_with({"a": ["a_m1", "a_m2", "a_m3"],
                         "b": ["b_m1", "b_m2", "b_m3"]}),
        )
        matches = {
            c: match_clusters(c, clusterings[c], clusterings[c])
            for c in clusterings
        }
        novelty = {
            c: annotate_novelty(matches[c], diff[c]) for c in clusterings
        }
        result = classify_edges(graph_c, graph_f, clusterings, clusterings,
                                matches, novelty, threshold=0.5)
        assert len(result.new) == 1
        assert not result.discarded

    def test_lag_change_detected(self):
        clusterings = self._setup()
        graph_c = _graph(("a", "a_m1", "b", "b_m1", 1))
        graph_f = _graph(("a", "a_m1", "b", "b_m1", 2))
        diff = metric_diff(
            _frame_with({"a": ["a_m1", "a_m2", "a_m3"],
                         "b": ["b_m1", "b_m2", "b_m3"]}),
            _frame_with({"a": ["a_m1", "a_m2", "a_m3"],
                         "b": ["b_m1", "b_m2", "b_m3"]}),
        )
        matches = {
            c: match_clusters(c, clusterings[c], clusterings[c])
            for c in clusterings
        }
        novelty = {
            c: annotate_novelty(matches[c], diff[c]) for c in clusterings
        }
        result = classify_edges(graph_c, graph_f, clusterings, clusterings,
                                matches, novelty, threshold=0.5)
        assert len(result.lag_changed) == 1

    def test_threshold_suppresses_low_similarity_edges(self):
        """Edges between dissimilar, non-novel clusters are noise."""
        clusterings_c = self._setup()
        # F re-clusters 'b' entirely differently (no metric overlap).
        clusterings_f = {
            "a": clusterings_c["a"],
            "b": _clustering("b", {0: ["x1"], 1: ["x2", "x3"]}),
        }
        graph_c = _graph(("a", "a_m1", "b", "b_m1", 1))
        graph_f = _graph(("a", "a_m1", "b", "x1", 1))
        diff = metric_diff(
            _frame_with({"a": ["a_m1", "a_m2", "a_m3"],
                         "b": ["b_m1", "b_m2", "b_m3"]}),
            _frame_with({"a": ["a_m1", "a_m2", "a_m3"],
                         "b": ["b_m1", "b_m2", "b_m3"]}),
        )
        matches = {
            c: match_clusters(c, clusterings_c[c], clusterings_f[c])
            for c in clusterings_c
        }
        novelty = {
            c: annotate_novelty(matches[c], diff[c]) for c in clusterings_c
        }
        strict = classify_edges(graph_c, graph_f, clusterings_c,
                                clusterings_f, matches, novelty,
                                threshold=0.9)
        # The b clusters share no metrics: similarity 0 < 0.9 and no
        # novel metrics, so the edge difference is suppressed.
        assert not strict.new
