"""Tiered-retention test battery.

Covers the policy half (schedule parsing, rollup aggregation) with
hypothesis property tests, the mechanism half (spill/sqlite tier
migration) with a parametrized backend battery, the spec/CLI seams,
and the headline acceptance claim: the canonical schedule shrinks the
on-disk footprint >= 5x while every window inside the full-resolution
horizon stays bit-identical to an unscheduled run.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import build_pipeline
from repro.api.spec import (
    RunSpec,
    StorageSpec,
    WorkloadSpec,
    load_spec,
    loads_spec,
    spec_to_toml,
)
from repro.core import StreamingConfig
from repro.metrics.timeseries import MetricKey
from repro.persistence import (
    MemoryBackend,
    RetentionSchedule,
    SpillBackend,
    SqliteBackend,
    Tier,
    format_duration,
    parse_duration,
    rollup_arrays,
)
from repro.persistence.retention import FULL
from repro.api.registry import APPLICATIONS, register_application
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)

CANONICAL = "1000s:full,4000s:1m,inf:10m"


def _component(name, **kwargs):
    defaults = dict(
        kind="generic",
        endpoints=(EndpointSpec("op", service_time=0.02),),
        concurrency=16,
    )
    defaults.update(kwargs)
    return ComponentSpec(name=name, **defaults)


def _chain_app():
    return Application("demo", [
        _component("front", calls=(CallSpec("mid", delay=0.4),)),
        _component("mid", calls=(CallSpec("back", delay=0.4),)),
        _component("back"),
    ])


# Same tiny app the api/persistence suites register: specs (and the
# CLI) can then name it.
if "demo-chain" not in APPLICATIONS:
    register_application("demo-chain", lambda: _chain_app())


# ---------------------------------------------------------------------------
# Durations


class TestDurations:
    @pytest.mark.parametrize("text,seconds", [
        ("90s", 90.0),
        ("1m", 60.0),
        ("2h", 7200.0),
        ("1d", 86400.0),
        ("1000", 1000.0),
        ("0.5s", 0.5),
        ("inf", float("inf")),
    ])
    def test_parse(self, text, seconds):
        assert parse_duration(text) == seconds

    @pytest.mark.parametrize("text", ["", "abc", "5x", "-5s", "0s", "nan"])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            parse_duration(text)

    @pytest.mark.parametrize("seconds,text", [
        (90.0, "90s"),
        (600.0, "10m"),
        (7200.0, "2h"),
        (86400.0, "1d"),
        (float("inf"), "inf"),
        (0.5, "0.5s"),
    ])
    def test_format(self, seconds, text):
        assert format_duration(seconds) == text

    @given(st.integers(min_value=1, max_value=10 * 86400))
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, seconds):
        assert parse_duration(format_duration(float(seconds))) \
            == float(seconds)


# ---------------------------------------------------------------------------
# Schedule parsing


@st.composite
def _valid_schedules(draw):
    """Valid tier ladders built constructively: strictly increasing
    horizons, strictly increasing nesting resolutions, spans covering
    at least one bucket."""
    n_tiers = draw(st.integers(min_value=1, max_value=4))
    horizon = float(draw(st.integers(min_value=1, max_value=5000)))
    tiers = [Tier(horizon)]
    res = float(draw(st.sampled_from([1, 5, 30, 60])))
    for _ in range(1, n_tiers):
        span = draw(st.integers(min_value=1, max_value=40)) * res
        horizon += span
        tiers.append(Tier(horizon, res))
        res *= draw(st.integers(min_value=2, max_value=6))
    if n_tiers > 1 and draw(st.booleans()):
        tiers[-1] = Tier(float("inf"), tiers[-1].resolution)
    return RetentionSchedule(tuple(tiers))


class TestScheduleParsing:
    def test_canonical(self):
        sched = RetentionSchedule.parse(CANONICAL)
        assert sched.tiers == (
            Tier(1000.0, FULL), Tier(4000.0, 60.0),
            Tier(float("inf"), 600.0),
        )
        assert sched.format() == "1000s:full,4000s:1m,inf:10m"
        assert sched.full_horizon == 1000.0
        assert math.isinf(sched.final_horizon)

    @given(_valid_schedules())
    @settings(max_examples=80, deadline=None)
    def test_parse_format_round_trip(self, sched):
        assert RetentionSchedule.parse(sched.format()) == sched

    @pytest.mark.parametrize("text,fragment", [
        ("", "empty tier"),
        ("1000s", "must be 'horizon:resolution'"),
        ("1000s:full,,inf:1m", "empty tier"),
        ("1000s:1m", "first tier must be full resolution"),
        ("1000s:full,500s:1m", "strictly increasing"),
        ("inf:full,2000s:1m", "'inf' is only valid as the last"),
        ("1000s:full,4000s:1m,8000s:90s", "integer multiple"),
        ("1000s:full,4000s:1m,8000s:30s", "strictly increasing"),
        ("1000s:full,1030s:1m", "spans less than one"),
        ("0s:full", "positive"),
        ("1000s:full,inf:inf", "finite"),
        ("1000s:full,4000s:full", "only the first tier"),
        ("1000s:full,4000s:banana", "duration"),
        ("-5s:full", "positive"),
    ])
    def test_invalid_rejected_with_clear_error(self, text, fragment):
        with pytest.raises(ValueError, match=fragment):
            RetentionSchedule.parse(text)

    @given(_valid_schedules(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_shuffled_tiers_rejected(self, sched, data):
        """Swapping any two coarse tiers breaks horizon or resolution
        monotonicity and must be rejected."""
        if len(sched.tiers) < 3:
            return
        i = data.draw(st.integers(1, len(sched.tiers) - 2))
        tiers = list(sched.tiers)
        tiers[i], tiers[i + 1] = tiers[i + 1], tiers[i]
        with pytest.raises(ValueError, match="strictly increasing|'inf'"):
            RetentionSchedule(tuple(tiers))

    def test_cutoffs_are_aligned_and_monotone(self):
        sched = RetentionSchedule.parse(CANONICAL)
        cuts = sched.cutoffs(10_000.0)
        assert cuts == [(9000.0, 60.0), (6000.0, 600.0)]
        assert sched.drop_cutoff(10_000.0) is None
        for cutoff, res in cuts:
            assert cutoff % res == 0

    def test_finite_drop_cutoff_never_exceeds_coarsest(self):
        sched = RetentionSchedule.parse("100s:full,400s:10s,800s:40s")
        for newest in (803.0, 1000.0, 2000.0, 12_345.6):
            drop = sched.drop_cutoff(newest)
            cuts = sched.cutoffs(newest)
            assert drop is not None and drop % 40.0 == 0
            assert drop <= cuts[-1][0] <= cuts[0][0]


# ---------------------------------------------------------------------------
# Rollup aggregation


def _reference_rollup(t, v, resolution):
    """Loop-based recomputation rollup_arrays must match."""
    buckets = {}
    for ti, vi in zip(t, v):
        b = math.floor(ti / resolution) * resolution
        buckets.setdefault(b, []).append(vi)
    times = sorted(buckets)
    return (
        np.array(times),
        np.array([np.mean(buckets[b]) for b in times]),
        np.array([np.min(buckets[b]) for b in times]),
        np.array([np.max(buckets[b]) for b in times]),
        np.array([len(buckets[b]) for b in times], dtype=float),
    )


_series = st.lists(
    st.tuples(st.integers(0, 100_000),
              st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=200,
).map(lambda rows: sorted(rows))


class TestRollupArrays:
    @given(_series, st.sampled_from([1.0, 7.0, 60.0, 600.0]))
    @settings(max_examples=80, deadline=None)
    def test_matches_direct_recompute(self, rows, resolution):
        t = np.array([r[0] for r in rows], dtype=float) / 4.0
        v = np.array([r[1] for r in rows], dtype=float)
        bt, bm, blo, bhi, bn = rollup_arrays(t, v, resolution=resolution)
        rt, rm, rlo, rhi, rn = _reference_rollup(t, v, resolution)
        assert np.array_equal(bt, rt)
        assert np.array_equal(blo, rlo)
        assert np.array_equal(bhi, rhi)
        assert np.array_equal(bn, rn)
        np.testing.assert_allclose(bm, rm, rtol=1e-12, atol=1e-9)
        # Bucket timestamps are aligned starts.
        assert np.all(np.floor(bt / resolution) * resolution == bt)
        assert np.all(np.diff(bt) > 0)

    def test_bucket_boundary_starts_new_bucket(self):
        t = np.array([59.0, 60.0, 119.9, 120.0])
        v = np.array([1.0, 2.0, 3.0, 4.0])
        bt, bm, blo, bhi, bn = rollup_arrays(t, v, resolution=60.0)
        assert np.array_equal(bt, [0.0, 60.0, 120.0])
        assert np.array_equal(bn, [1.0, 2.0, 1.0])
        assert np.array_equal(bm, [1.0, 2.5, 4.0])

    def test_single_point_buckets_keep_values_verbatim(self):
        t = np.array([3.0, 61.0, 125.0])
        v = np.array([0.1 + 0.2, 1.0 / 3.0, -7.7])
        bt, bm, blo, bhi, bn = rollup_arrays(t, v, resolution=60.0)
        assert np.array_equal(bm, v)
        assert np.array_equal(blo, v)
        assert np.array_equal(bhi, v)
        assert np.array_equal(bn, [1.0, 1.0, 1.0])

    def test_identity_on_already_aligned_rows_is_bit_exact(self):
        t = np.arange(0.0, 600.0, 60.0)
        v = np.sin(t) * 3.7
        n = np.full(t.size, 5.0)
        out = rollup_arrays(t, v, v - 1.0, v + 1.0, n, resolution=60.0)
        assert np.array_equal(out[0], t)
        assert np.array_equal(out[1], v)
        assert np.array_equal(out[2], v - 1.0)
        assert np.array_equal(out[3], v + 1.0)
        assert np.array_equal(out[4], n)

    @given(_series)
    @settings(max_examples=60, deadline=None)
    def test_re_roll_equals_direct_rollup(self, rows):
        """Rolling at 60 s then re-rolling those buckets at 600 s must
        reproduce a direct 600 s rollup (nesting resolutions)."""
        t = np.array([r[0] for r in rows], dtype=float) / 4.0
        v = np.array([r[1] for r in rows], dtype=float)
        fine = rollup_arrays(t, v, resolution=60.0)
        re_rolled = rollup_arrays(*fine, resolution=600.0)
        direct = rollup_arrays(t, v, resolution=600.0)
        assert np.array_equal(re_rolled[0], direct[0])
        assert np.array_equal(re_rolled[2], direct[2])
        assert np.array_equal(re_rolled[3], direct[3])
        assert np.array_equal(re_rolled[4], direct[4])
        np.testing.assert_allclose(re_rolled[1], direct[1], rtol=1e-9)

    def test_empty_input(self):
        out = rollup_arrays(np.empty(0), np.empty(0), resolution=60.0)
        assert all(a.size == 0 for a in out)

    def test_rejects_bad_resolution_and_ragged_arrays(self):
        with pytest.raises(ValueError, match="positive"):
            rollup_arrays(np.ones(3), np.ones(3), resolution=0.0)
        with pytest.raises(ValueError, match="equal length"):
            rollup_arrays(np.ones(3), np.ones(2), resolution=60.0)


# ---------------------------------------------------------------------------
# Backend tier migration (the mechanism half)


def _make_backend(kind, tmp_path, schedule=None, name="store"):
    if kind == "spill":
        return SpillBackend(tmp_path / f"{name}-spill", hot_points=256,
                            schedule=schedule)
    return SqliteBackend(tmp_path / f"{name}.db", schedule=schedule)


def _fill(backend, *, series=("web", "db"), cadence=0.5, span=10_000.0,
          batch=2000):
    """Deterministic long stream; returns {(comp, metric): (t, v)}."""
    raw = {}
    t = np.arange(0.0, span, cadence)
    for i, comp in enumerate(series):
        rng = np.random.default_rng(100 + i)
        v = np.cumsum(rng.standard_normal(t.size)) + 50.0 * i
        for lo in range(0, t.size, batch):
            backend.write(comp, "cpu", t[lo:lo + batch], v[lo:lo + batch])
        raw[(comp, "cpu")] = (t, v)
    backend.flush()
    return raw


@pytest.mark.parametrize("kind", ["spill", "sqlite"])
class TestBackendTieredRetention:
    def test_hot_horizon_reads_bit_identical(self, kind, tmp_path):
        plain = _make_backend(kind, tmp_path, name="plain")
        tiered = _make_backend(kind, tmp_path, CANONICAL, name="tiered")
        _fill(plain)
        raw = _fill(tiered)
        stats = tiered.compact()
        assert stats.get("samples_rolled", 0) \
            or stats.get("points_rolled", 0)
        newest = max(t[-1] for t, _ in raw.values())
        for comp, _ in raw:
            want = plain.query(comp, "cpu", newest - 1000.0, newest)
            got = tiered.query(comp, "cpu", newest - 1000.0, newest)
            assert np.array_equal(got.times, want.times)
            assert np.array_equal(got.values, want.values)
        plain.close()
        tiered.close()

    def test_rollup_regions_match_direct_recompute(self, kind, tmp_path):
        backend = _make_backend(kind, tmp_path, CANONICAL)
        raw = _fill(backend)
        backend.compact()
        sched = RetentionSchedule.parse(CANONICAL)
        for (comp, metric), (t, v) in raw.items():
            newest = t[-1]
            (c1, r1), (c2, r2) = sched.cutoffs(newest)
            rolled = backend.query_rollup(comp, metric,
                                          float("-inf"), float("inf"))
            # Mid tier [c2, c1): 1 m buckets of the raw samples.
            mid = (rolled.times >= c2) & (rolled.times < c1)
            src = (t >= c2) & (t < c1)
            bt, bm, blo, bhi, bn = rollup_arrays(t[src], v[src],
                                                 resolution=r1)
            assert np.array_equal(rolled.times[mid], bt)
            assert np.array_equal(rolled.counts[mid], bn)
            assert np.array_equal(rolled.mins[mid], blo)
            assert np.array_equal(rolled.maxs[mid], bhi)
            np.testing.assert_allclose(rolled.means[mid], bm, rtol=1e-12)
            # Cold tier (< c2): 10 m buckets.
            cold = rolled.times < c2
            ct, cm, clo, chi, cn = rollup_arrays(t[t < c2], v[t < c2],
                                                 resolution=r2)
            assert np.array_equal(rolled.times[cold], ct)
            assert np.array_equal(rolled.counts[cold], cn)
            np.testing.assert_allclose(rolled.means[cold], cm, rtol=1e-12)
            # Hot tier (>= c1): raw samples, count 1.
            hot = rolled.times >= c1
            assert np.array_equal(rolled.times[hot], t[t >= c1])
            assert np.array_equal(rolled.means[hot], v[t >= c1])
            assert np.all(rolled.counts[hot] == 1)
        backend.close()

    def test_no_lost_or_double_counted_samples(self, kind, tmp_path):
        backend = _make_backend(kind, tmp_path, CANONICAL)
        raw = _fill(backend)
        backend.compact()
        for (comp, metric), (t, _) in raw.items():
            rolled = backend.query_rollup(comp, metric,
                                          float("-inf"), float("inf"))
            assert rolled.total_samples() == t.size
            assert np.all(np.diff(rolled.times) > 0)
        backend.close()

    def test_second_compact_is_idempotent(self, kind, tmp_path):
        backend = _make_backend(kind, tmp_path, CANONICAL)
        raw = _fill(backend)
        backend.compact()
        before = {key: backend.query(key[0], key[1],
                                     float("-inf"), float("inf"))
                  for key in raw}
        stats = backend.compact()
        assert stats.get("samples_rolled", 0) == 0 \
            and stats.get("points_rolled", 0) == 0
        for key, want in before.items():
            got = backend.query(key[0], key[1],
                                float("-inf"), float("inf"))
            assert np.array_equal(got.times, want.times)
            assert np.array_equal(got.values, want.values)
        backend.close()

    def test_reopen_serves_identical_data(self, kind, tmp_path):
        backend = _make_backend(kind, tmp_path, CANONICAL)
        raw = _fill(backend)
        backend.compact()
        before = {key: backend.query_rollup(key[0], key[1],
                                            float("-inf"), float("inf"))
                  for key in raw}
        backend.close()
        reopened = _make_backend(kind, tmp_path, CANONICAL)
        for key, want in before.items():
            got = reopened.query_rollup(key[0], key[1],
                                        float("-inf"), float("inf"))
            assert np.array_equal(got.times, want.times)
            assert np.array_equal(got.means, want.means)
            assert np.array_equal(got.counts, want.counts)
        reopened.close()

    def test_finite_final_horizon_drops_whole_buckets(self, kind,
                                                      tmp_path):
        sched = "100s:full,400s:10s,800s:40s"
        backend = _make_backend(kind, tmp_path, sched)
        raw = _fill(backend, series=("web",), span=2000.0)
        backend.compact()
        (t, _), = raw.values()
        newest = t[-1]
        drop = RetentionSchedule.parse(sched).drop_cutoff(newest)
        rolled = backend.query_rollup("web", "cpu",
                                      float("-inf"), float("inf"))
        assert rolled.times.size and rolled.times[0] >= drop
        assert rolled.total_samples() == int(np.sum(t >= drop))
        backend.close()

    def test_query_rollup_includes_unmigrated_tail(self, kind, tmp_path):
        backend = _make_backend(kind, tmp_path, CANONICAL)
        t = np.arange(0.0, 50.0, 1.0)
        backend.write("web", "cpu", t, t * 2.0)
        backend.flush()
        rolled = backend.query_rollup("web", "cpu", 10.0, 20.0)
        assert np.array_equal(rolled.times, np.arange(10.0, 21.0))
        assert np.all(rolled.counts == 1)
        assert np.array_equal(rolled.means, rolled.times * 2.0)
        backend.close()


class TestRollupFallbacks:
    def test_memory_backend_serves_count_one_rollups(self):
        backend = MemoryBackend()
        t = np.arange(0.0, 10.0)
        backend.write("web", "cpu", t, t + 1.0)
        rolled = backend.query_rollup("web", "cpu",
                                      float("-inf"), float("inf"))
        assert rolled.key == MetricKey("web", "cpu")
        assert np.array_equal(rolled.times, t)
        assert np.array_equal(rolled.means, t + 1.0)
        assert np.array_equal(rolled.mins, rolled.maxs)
        assert rolled.total_samples() == t.size

    def test_batching_writer_forwards_query_rollup(self):
        from repro.parallel.writer import BatchingWriter

        backend = MemoryBackend()
        writer = BatchingWriter(backend)
        writer.write("web", "cpu", np.arange(5.0), np.arange(5.0))
        rolled = writer.query_rollup("web", "cpu",
                                     float("-inf"), float("inf"))
        assert rolled.total_samples() == 5
        writer.close()


# ---------------------------------------------------------------------------
# Spec / session / CLI seams


def _stream_spec(**overrides):
    base = dict(mode="stream", app="demo-chain", seed=3, duration=60.0,
                workload=WorkloadSpec("constant", rate=40.0),
                streaming=StreamingConfig(window=20.0, hop=10.0,
                                          retention=120.0))
    base.update(overrides)
    return RunSpec(**base)


class TestScheduleSpec:
    def test_round_trips_through_json_and_toml(self, tmp_path):
        spec = _stream_spec(storage=StorageSpec(
            "spill", str(tmp_path / "s"), schedule=CANONICAL))
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert loads_spec(spec_to_toml(spec), format="toml") == spec
        path = tmp_path / "run.json"
        from repro.api.spec import save_spec
        save_spec(spec, path)
        assert load_spec(path).storage.schedule == CANONICAL

    def test_unknown_storage_key_rejected(self):
        data = _stream_spec().to_dict()
        data["storage"] = {"kind": "memory", "scheduel": CANONICAL}
        with pytest.raises((TypeError, ValueError), match="scheduel"):
            RunSpec.from_dict(data)

    def test_invalid_schedule_fails_at_spec_build(self, tmp_path):
        with pytest.raises(ValueError, match="first tier"):
            StorageSpec("spill", str(tmp_path / "s"), schedule="1000s:1m")

    def test_parsed_schedule_property(self, tmp_path):
        spec = StorageSpec("spill", str(tmp_path / "s"),
                           schedule=CANONICAL)
        assert spec.parsed_schedule == RetentionSchedule.parse(CANONICAL)
        assert StorageSpec().parsed_schedule is None

    def test_full_horizon_must_cover_ring_retention(self, tmp_path):
        with pytest.raises(ValueError,
                           match="keeps full resolution for only"):
            _stream_spec(storage=StorageSpec(
                "spill", str(tmp_path / "s"),
                schedule="100s:full,inf:10s"))

    def test_replay_mode_skips_horizon_validation(self, tmp_path):
        # Replay reads whatever the recording kept; the live-ring
        # constraint only applies to stream/serve.
        spec = _stream_spec(mode="replay", storage=StorageSpec(
            "spill", str(tmp_path / "s"), schedule="100s:full,inf:10s"))
        assert spec.storage.parsed_schedule.full_horizon == 100.0

    def test_cli_store_schedule_lands_in_spec(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "spec.json"
        code = main(["spec", "stream", "--duration", "40",
                     "--store", str(tmp_path / "store"),
                     "--store-backend", "spill",
                     "--store-schedule", CANONICAL,
                     "-o", str(out)])
        assert code == 0
        assert load_spec(out).storage.schedule == CANONICAL

    def test_cli_rejects_invalid_schedule(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["stream", "--duration", "10",
                     "--store", str(tmp_path / "store"),
                     "--store-backend", "spill",
                     "--store-schedule", "1000s:1m"])
        assert code != 0
        assert "full resolution" in capsys.readouterr().err


class TestSessionTieredRetention:
    def test_session_compact_applies_schedule(self, tmp_path):
        spec = _stream_spec(duration=360.0, storage=StorageSpec(
            "spill", str(tmp_path / "store"),
            schedule="200s:full,inf:20s",
            options={"hot_points": 64}))
        with build_pipeline(spec) as session:
            session.run()
            before = session.backend.disk_bytes()
            stats = session.compact()
            assert stats["samples_rolled"] > 0
            assert session.backend.disk_bytes() < before

    def test_policy_retires_at_full_resolution_horizon(self, tmp_path):
        spec = _stream_spec(
            duration=40.0,
            journal=str(tmp_path / "ingest.journal"),
            checkpoint=str(tmp_path / "state.ckpt"),
            streaming=StreamingConfig(window=20.0, hop=10.0,
                                      retention=120.0,
                                      checkpoint_every_windows=1),
            storage=StorageSpec("spill", str(tmp_path / "store"),
                                schedule="400s:full,inf:60s"))
        with build_pipeline(spec) as session:
            session.run()
            assert session.policy.retire_horizon == 400.0

    def test_policy_retire_defaults_to_ring_retention(self, tmp_path):
        spec = _stream_spec(
            duration=40.0,
            journal=str(tmp_path / "ingest.journal"),
            checkpoint=str(tmp_path / "state.ckpt"),
            streaming=StreamingConfig(window=20.0, hop=10.0,
                                      retention=120.0,
                                      checkpoint_every_windows=1))
        with build_pipeline(spec) as session:
            session.run()
            assert session.policy.retire_horizon == 120.0


# ---------------------------------------------------------------------------
# Acceptance: footprint reduction with bit-identical hot horizon


class TestFootprintAcceptance:
    def test_canonical_schedule_shrinks_spill_footprint_5x(self,
                                                           tmp_path):
        plain = _make_backend("spill", tmp_path, name="plain")
        tiered = _make_backend("spill", tmp_path, CANONICAL,
                               name="tiered")
        raw = _fill(plain, span=20_000.0)
        _fill(tiered, span=20_000.0)
        plain.compact()   # merge small segments: fair baseline
        tiered.compact()
        full = plain.disk_bytes()
        reduced = tiered.disk_bytes()
        assert reduced * 5 <= full, \
            f"footprint only {full / reduced:.1f}x smaller"
        # Every window inside the full-resolution horizon is
        # bit-identical to the unscheduled run.
        newest = max(t[-1] for t, _ in raw.values())
        for comp, _ in raw:
            for start in np.arange(newest - 1000.0, newest, 120.0):
                want = plain.query(comp, "cpu", start, start + 120.0)
                got = tiered.query(comp, "cpu", start, start + 120.0)
                assert np.array_equal(got.times, want.times)
                assert np.array_equal(got.values, want.values)
        plain.close()
        tiered.close()

    def test_sqlite_schedule_shrinks_database(self, tmp_path):
        plain = _make_backend("sqlite", tmp_path, name="plain")
        tiered = _make_backend("sqlite", tmp_path, CANONICAL,
                               name="tiered")
        _fill(plain, span=20_000.0)
        _fill(tiered, span=20_000.0)
        tiered.trim()
        # Close first: the WAL sidecar holds pages until checkpoint.
        plain.close()
        tiered.close()
        full = (tmp_path / "plain.db").stat().st_size
        reduced = (tmp_path / "tiered.db").stat().st_size
        assert reduced * 5 <= full, \
            f"footprint only {full / reduced:.1f}x smaller"
