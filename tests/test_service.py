"""Tests for the live operations surface (ingest + query API).

Covers the PR's acceptance surface:

* wire-format decoding (JSON envelope / bare list / point runs, text
  exposition) with strict rejection of torn or malformed payloads;
* per-source sequencing (duplicates acknowledged, never re-published)
  and the bus's out-of-order guard surfacing as ``rejected`` counts;
* HTTP hygiene on the telemetry server: HEAD support,
  ``charset=utf-8`` everywhere, 405 (with ``Allow``) on known routes;
* the end-to-end ``serve`` session: HTTP-fed windows, query routes,
  the event log, staleness gauges, 429 backpressure when the bus
  sheds, and scrape-while-ingest thread-safety;
* the proof obligation: the same point stream pushed via HTTP
  ``POST /ingest`` and via the in-process bus yields bit-identical
  windows (edge Jaccard 1.0), including across a kill + ``--resume``;
* spec plumbing: ``ServiceSpec`` round-trips, serve-mode validation,
  ``PipelineBuilder.service()`` and the ``repro spec serve`` CLI.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import PipelineBuilder, RunSpec, ServiceSpec, load_spec
from repro.api.spec import loads_spec, spec_to_toml
from repro.causality.depgraph import edge_jaccard
from repro.core import StreamingConfig
from repro.obs import (
    AnalysisView,
    EventLog,
    IngestError,
    SourceGate,
    decode_payload,
)
from repro.obs.ingest import decode_json, decode_text
from repro.streaming import StreamingSieve
from repro.tracing.callgraph import CallGraph

import test_obs  # noqa: F401  - registers the demo-chain application


# ---------------------------------------------------------------------------
# HTTP helpers


def _get(url: str, method: str = "GET"):
    request = urllib.request.Request(url, method=method)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), \
                response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _get_json(url: str):
    status, headers, body = _get(url)
    return status, headers, json.loads(body)


def _post(url: str, payload, content_type="application/json",
          headers=None):
    body = payload if isinstance(payload, bytes) \
        else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": content_type, **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), \
            json.loads(error.read())


# ---------------------------------------------------------------------------
# Wire-format decoding


class TestDecodeJson:
    def test_envelope_with_both_batch_shapes(self):
        request = decode_json(json.dumps({
            "source": "agent-1", "seq": 7,
            "batches": [
                {"component": "front", "time": 12.5,
                 "metrics": {"cpu": 0.6, "mem": 480.0}},
                {"component": "back", "metric": "cpu",
                 "times": [12.0, 12.5], "values": [0.4, 0.45]},
            ],
        }).encode())
        assert request.source == "agent-1" and request.seq == 7
        assert request.point_count == 4
        assert request.watermark == 12.5
        scrape, points = request.batches
        assert not scrape.is_points and scrape.metrics["cpu"] == 0.6
        assert points.is_points and points.times == [12.0, 12.5]

    def test_bare_list_is_an_unsequenced_payload(self):
        request = decode_json(json.dumps([
            {"component": "a", "time": 1.0, "metrics": {"m": 2.0}},
        ]).encode())
        assert request.source == "" and request.seq is None
        assert request.watermark == 1.0

    @pytest.mark.parametrize("body", [
        b"",                                   # empty
        b"{\"batches\": [",                    # torn mid-structure
        b"\xff\xfe",                           # not UTF-8
        b"42",                                 # wrong top-level type
        b"{\"batches\": []}",                  # no batches
        b"{\"batches\": [{}]}",                # batch without component
        b"{\"batches\": [{\"component\": \"a\"}]}",  # no shape
        b"{\"batches\": 3}",
        b"{\"bathces\": []}",                  # typo'd field
    ])
    def test_malformed_payloads_raise(self, body):
        with pytest.raises(IngestError):
            decode_json(body)

    def test_nan_and_mismatched_runs_rejected(self):
        with pytest.raises(IngestError):
            decode_json(json.dumps({"batches": [
                {"component": "a", "time": 1.0,
                 "metrics": {"m": float("nan")}},
            ]}).encode())
        with pytest.raises(IngestError):
            decode_json(json.dumps({"batches": [
                {"component": "a", "metric": "m",
                 "times": [1.0, 2.0], "values": [1.0]},
            ]}).encode())

    def test_sequenced_payload_needs_a_source(self):
        with pytest.raises(IngestError):
            decode_json(json.dumps({"seq": 1, "batches": [
                {"component": "a", "time": 1.0, "metrics": {"m": 1.0}},
            ]}).encode())


class TestDecodeText:
    def test_samples_with_labels_and_comments(self):
        request = decode_text(
            b'# HELP cpu_usage cores\n'
            b'cpu_usage{component="front"} 0.61 12.5\n'
            b'\n'
            b'disk_io{component="back",device="sda"} 9.0 12.0\n'
        )
        assert request.point_count == 2
        assert request.watermark == 12.5
        first, second = request.batches
        assert (first.component, first.metric) == ("front", "cpu_usage")
        # Extra labels fold into the metric name deterministically.
        assert second.metric == 'disk_io{device="sda"}'

    @pytest.mark.parametrize("line", [
        b'cpu_usage{component="a"} 0.5',        # missing timestamp
        b'cpu_usage 0.5 1.0',                   # missing component
        b'cpu_usage{component="a"} abc 1.0',    # bad value
        b'cpu_usage{component="a"} 0.5 xyz',    # bad timestamp
        b'{component="a"} 0.5 1.0',             # no metric name
        b'cpu{component=a} 0.5 1.0',            # unquoted label
    ])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(IngestError):
            decode_text(line)

    def test_dispatch_by_content_type_and_headers(self):
        request = decode_payload(
            "text/plain; version=0.0.4",
            b'cpu{component="a"} 1.0 2.0\n',
            source="agent", seq_header="9",
        )
        assert request.source == "agent" and request.seq == 9
        with pytest.raises(IngestError):
            decode_payload("application/x-protobuf", b"")
        with pytest.raises(IngestError):
            decode_payload("application/json", b"[]",
                           seq_header="not-a-number")

    def test_millisecond_unit_header_rescales_timestamps(self):
        # Prometheus-native senders stamp milliseconds since epoch;
        # X-Repro-Time-Unit: ms brings them onto the seconds axis.
        request = decode_payload(
            "text/plain",
            b'cpu{component="a"} 1.0 12500\n',
            time_unit="ms",
        )
        assert request.watermark == 12.5
        request = decode_payload(
            "application/json",
            json.dumps({"batches": [
                {"component": "a", "time": 2000.0,
                 "metrics": {"m": 1.0}},
                {"component": "a", "metric": "n",
                 "times": [1000.0, 1500.0], "values": [1.0, 2.0]},
            ]}).encode(),
            time_unit="MS",  # case-insensitive
        )
        assert request.batches[0].time == 2.0
        assert request.batches[1].times == [1.0, 1.5]
        # Seconds (the default) pass through untouched.
        request = decode_payload(
            "text/plain", b'cpu{component="a"} 1.0 12.5\n',
            time_unit="s",
        )
        assert request.watermark == 12.5
        with pytest.raises(IngestError):
            decode_payload("text/plain",
                           b'cpu{component="a"} 1.0 1.0\n',
                           time_unit="fortnights")


class TestSourceGate:
    def test_per_source_sequencing(self):
        gate = SourceGate()
        assert gate.admit("a", 1) and gate.admit("a", 2)
        assert not gate.admit("a", 2)   # duplicate
        assert not gate.admit("a", 1)   # replayed past
        assert gate.admit("b", 1)       # sources are independent
        assert gate.admit("a", None)    # unsequenced always admitted
        assert gate.admit("", 5)        # no source -> no gating
        stats = gate.as_dict()
        assert stats["duplicates"] == 2 and stats["sources"] == 2
        assert gate.last_seq("a") == 2


# ---------------------------------------------------------------------------
# Read-side structures


class TestViewAndEvents:
    def test_empty_view_shapes(self):
        view = AnalysisView()
        assert view.latest() is None
        assert view.windows() == {"count": 0, "windows": []}
        assert view.clusters() == {"window": None, "clusters": {}}
        assert view.drift()["window"] is None

    def test_event_log_since_and_bound(self):
        events = EventLog(history=3)
        for index in range(5):
            events.append("tick", float(index), {"n": index})
        assert events.latest_seq == 5
        assert len(events) == 3  # bounded retention
        recent = events.since(3)
        assert [event["seq"] for event in recent["events"]] == [4, 5]
        assert events.since(5)["events"] == []


# ---------------------------------------------------------------------------
# A serve-mode session fixture


def _serve_session(tmp_path=None, *, clock="ingest", seed=3,
                   min_window_samples=8, consumers=(), journal="",
                   checkpoint="", resume=False, **streaming):
    builder = (PipelineBuilder("http").mode("serve")
               .workload("constant", rate=10.0)
               .streaming(window=10.0, hop=5.0, retention=60.0,
                          min_window_samples=min_window_samples,
                          **streaming)
               .service(port=0, clock=clock,
                        topology=(("front", "back"),))
               .duration(30).seed(seed))
    for kind, options in consumers:
        builder.consumer(kind, **options)
    if journal:
        builder.journal(journal)
    if checkpoint:
        builder.checkpoint(checkpoint)
    if resume:
        builder.resume()
    return builder.build()


def _batches(step: int, t: float) -> list:
    wave = 0.3 if (step // 40) % 2 else 0.0
    return [
        {"component": "front", "time": t,
         "metrics": {"cpu": 0.5 + 0.01 * (step % 10) + wave,
                     "mem": 100.0 + step % 7,
                     "net": 5.0 + 0.1 * (step % 13)}},
        {"component": "back", "time": t,
         "metrics": {"cpu": 0.4 + 0.02 * (step % 5) + wave,
                     "mem": 80.0 + step % 11,
                     "net": 3.0 + 0.2 * (step % 3)}},
    ]


def _push(session, steps, source="s1", start_step=0):
    """POST one sequenced JSON payload per half-second step."""
    for step in range(start_step, start_step + steps):
        status, _headers, body = _post(
            session.url + "/ingest",
            {"source": source, "seq": step,
             "batches": _batches(step, step * 0.5)},
        )
        assert status == 200, body
    return start_step + steps


# ---------------------------------------------------------------------------
# HTTP hygiene (satellite: HEAD, charset, 405)


class TestHttpHygiene:
    @pytest.fixture()
    def session(self):
        session = _serve_session()
        yield session
        session.close()

    def test_head_returns_headers_without_body(self, session):
        get_status, get_headers, get_body = _get(
            session.url + "/metrics")
        status, headers, body = _get(session.url + "/metrics",
                                     method="HEAD")
        assert status == get_status == 200
        assert body == b""
        # Content-Length advertises what a GET would have carried.
        assert int(headers["Content-Length"]) == len(get_body)

    def test_every_content_type_carries_charset(self, session):
        for path in ("/metrics", "/metrics.json", "/healthz",
                     "/api/windows", "/export/prometheus", "/nope"):
            _status, headers, _body = _get(session.url + path)
            assert "charset=utf-8" in headers["Content-Type"], path

    def test_wrong_method_on_known_route_is_405(self, session):
        status, headers, _body = _post(session.url + "/metrics", {})
        assert status == 405
        assert headers["Allow"] == "GET"
        status, headers, _body = _get(session.url + "/ingest")
        assert status == 405
        assert headers["Allow"] == "POST"
        status, headers, _body = _post(session.url + "/api/windows",
                                       {})
        assert status == 405

    def test_unknown_route_is_still_404(self, session):
        status, _headers, body = _get(session.url + "/nope")
        assert status == 404
        # The route listing now advertises the service surface too.
        assert "/ingest" in json.loads(body)["routes"]


# ---------------------------------------------------------------------------
# End-to-end ingest + queries


class TestServeSession:
    def test_http_fed_windows_and_queries(self):
        session = _serve_session(consumers=(
            ("scaling", dict(component="front", scale_up=0.9,
                             scale_down=0.2)),
        ))
        try:
            _push(session, 90)
            engine = session.engine
            assert engine.stats.windows >= 2

            status, _h, windows = _get_json(session.url + "/api/windows")
            assert status == 200
            assert windows["count"] == engine.stats.windows
            latest = windows["windows"][-1]

            status, _h, clusters = _get_json(session.url + "/api/clusters")
            assert status == 200
            assert clusters["window"] == latest["window"]
            assert set(clusters["clusters"]) == {"front", "back"}
            for payload in clusters["clusters"].values():
                assert payload["n_clusters"] >= 1
                assert payload["representatives"]

            status, _h, drift = _get_json(session.url + "/api/drift")
            assert status == 200 and drift["window"] == \
                latest["window"]
            assert set(drift["drift"]) <= {"front", "back"}

            status, _h, scaling = _get_json(session.url + "/api/scaling")
            assert status == 200 and scaling["enabled"]
            assert scaling["windows_seen"] == engine.stats.windows

            status, _h, rca = _get_json(session.url + "/api/rca")
            assert status == 200 and not rca["enabled"]

            status, _h, events = _get_json(session.url + "/api/events")
            assert status == 200
            kinds = {event["kind"] for event in events["events"]}
            assert "recluster" in kinds
            seen = events["latest_seq"]
            status, _h, tail = _get_json(
                session.url + f"/api/events?since={seen}")
            assert tail["events"] == []

            # /metrics stays consistent with the query surface.
            _status, _h, text = _get(session.url + "/metrics")
            scrape = text.decode()
            assert (f"repro_last_window_epoch "
                    f"{engine.latest().index}") in scrape
            assert "repro_last_analysis_timestamp_seconds" in scrape
        finally:
            session.close()

    def test_duplicate_and_out_of_order_over_http(self):
        session = _serve_session()
        try:
            next_step = _push(session, 30)
            flushed = session.engine.bus.stats.points_flushed
            pending = session.engine.bus.pending_points

            # A replayed seq is acknowledged but never re-published.
            status, _h, body = _post(
                session.url + "/ingest",
                {"source": "s1", "seq": 3,
                 "batches": _batches(3, 1.5)},
            )
            assert status == 200 and body["status"] == "duplicate"
            assert body["accepted"] == 0
            assert session.engine.bus.pending_points == pending
            assert session.engine.bus.stats.points_flushed == flushed

            # Unsequenced but time-regressing samples hit the bus's
            # per-key monotonic guard and come back as rejected.
            status, _h, body = _post(
                session.url + "/ingest",
                [{"component": "front", "time": 1.0,
                  "metrics": {"cpu": 0.9}}],
            )
            assert status == 200
            assert body["rejected"] == 1 and body["accepted"] == 0

            # A fresh source is gated independently and lands.
            status, _h, body = _post(
                session.url + "/ingest",
                {"source": "s2", "seq": 1,
                 "batches": _batches(next_step,
                                     next_step * 0.5)},
            )
            assert status == 200 and body["status"] == "ok"
            assert body["accepted"] == 6
        finally:
            session.close()

    def test_time_unit_header_over_http(self):
        # A Prometheus-native sender stamps milliseconds; the header
        # rescales them onto the engine's seconds axis end to end.
        session = _serve_session()
        try:
            t_ms = 12500
            status, _h, body = _post(
                session.url + "/ingest",
                f'cpu{{component="front"}} 0.5 {t_ms}\n'.encode(),
                content_type="text/plain",
                headers={"X-Repro-Time-Unit": "ms"},
            )
            assert status == 200 and body["accepted"] == 1
            assert body["watermark"] == 12.5

            status, _h, body = _post(
                session.url + "/ingest",
                f'cpu{{component="front"}} 0.5 {t_ms}\n'.encode(),
                content_type="text/plain",
                headers={"X-Repro-Time-Unit": "parsecs"},
            )
            assert status == 400
            assert "X-Repro-Time-Unit" in body["error"]
        finally:
            session.close()

    def test_torn_payloads_do_not_perturb_the_engine(self):
        session = _serve_session()
        try:
            _push(session, 50)
            engine = session.engine
            before = (engine.stats.windows,
                      engine.bus.stats.points_published,
                      engine.bus.pending_points,
                      engine.windows.total_points())
            for payload, content_type in [
                (b"{\"batches\": [", "application/json"),
                (b"\xff\xfe", "application/json"),
                (b"cpu_usage 0.5", "text/plain"),
                (json.dumps({"batches": [
                    {"component": "front", "time": 99.0,
                     "metrics": {"cpu": float("nan")}},
                ]}).encode(), "application/json"),
            ]:
                status, _h, body = _post(session.url + "/ingest",
                                         payload, content_type)
                assert status == 400 and "error" in body
            after = (engine.stats.windows,
                     engine.bus.stats.points_published,
                     engine.bus.pending_points,
                     engine.windows.total_points())
            assert before == after
        finally:
            session.close()

    def test_backpressure_returns_429_when_the_bus_sheds(self):
        # Wall clock + no poller running: nothing drains the bus, so
        # a tiny max_pending fills and the service must signal 429.
        session = _serve_session(clock="wall", bus_max_pending=64)
        try:
            times = [i * 0.01 for i in range(100)]
            status, headers, body = _post(
                session.url + "/ingest",
                {"batches": [{"component": "front", "metric": "cpu",
                              "times": times,
                              "values": [1.0] * len(times)}]},
            )
            assert status == 429 and body["status"] == "shed"
            assert body["shed"] > 0
            assert headers["Retry-After"] == "1"

            # The bus is now at its bound: the next payload is
            # refused outright, before anything is published.
            status, _h, body = _post(
                session.url + "/ingest",
                [{"component": "back", "time": 5.0,
                  "metrics": {"cpu": 1.0}}],
            )
            assert status == 429 and "backpressure" in body["error"]
            assert session.service.backpressure_responses == 2
        finally:
            session.close()

    def test_backpressured_sequenced_payload_is_retryable(self):
        # A sequenced payload refused with 429 was never published, so
        # its seq must NOT be committed: the Retry-After retry has to
        # land as fresh data, not be swallowed as a duplicate ack.
        session = _serve_session(clock="wall", bus_max_pending=64)
        try:
            times = [i * 0.01 for i in range(100)]
            status, _h, _b = _post(
                session.url + "/ingest",
                {"batches": [{"component": "front", "metric": "cpu",
                              "times": times,
                              "values": [1.0] * len(times)}]},
            )
            assert status == 429  # the bus is now at its bound

            payload = {"source": "agent", "seq": 1, "batches": [
                {"component": "back", "time": 5.0,
                 "metrics": {"cpu": 1.0}},
            ]}
            status, _h, body = _post(session.url + "/ingest", payload)
            assert status == 429 and "backpressure" in body["error"]
            assert session.service.gate.last_seq("agent") is None

            session.engine.bus.flush()  # drain: backpressure clears
            status, _h, body = _post(session.url + "/ingest", payload)
            assert status == 200 and body["status"] == "ok"
            assert body["accepted"] == 1
            assert session.service.gate.last_seq("agent") == 1
        finally:
            session.close()

    def test_wall_poller_tick_drains_a_jammed_bus(self):
        # The poller's offer must schedule off *pending* (unflushed)
        # data: a bus jammed at max_pending before its first flush
        # has delivered nothing, so a watermark derived only from
        # flushed data would no-op forever and every Retry-After
        # would be a lie.
        session = _serve_session(clock="wall", bus_max_pending=64)
        try:
            times = [i * 0.01 for i in range(100)]
            status, _h, _b = _post(
                session.url + "/ingest",
                {"batches": [{"component": "front", "metric": "cpu",
                              "times": times,
                              "values": [1.0] * len(times)}]},
            )
            assert status == 429
            assert session.engine.bus.pending_points == 64

            session.service.offer_watermark()  # one poller tick
            assert session.engine.bus.pending_points == 0

            status, _h, body = _post(
                session.url + "/ingest",
                [{"component": "back", "time": 5.0,
                  "metrics": {"cpu": 1.0}}],
            )
            assert status == 200 and body["status"] == "ok"
        finally:
            session.close()

    def test_concurrent_scrape_while_ingest(self):
        session = _serve_session()
        errors: list = []
        stop = threading.Event()

        def scraper(path):
            while not stop.is_set():
                status, _h, _b = _get(session.url + path)
                if status >= 500:
                    errors.append((path, status))

        threads = [
            threading.Thread(target=scraper, args=(path,), daemon=True)
            for path in ("/metrics", "/api/clusters", "/api/events",
                         "/healthz")
        ]
        try:
            for thread in threads:
                thread.start()

            def ingester(source, offset):
                for step in range(120):
                    status, _h, body = _post(
                        session.url + "/ingest",
                        {"source": source, "seq": step, "batches": [
                            {"component": f"svc-{offset}",
                             "time": step * 0.5,
                             "metrics": {"cpu": 0.5, "mem": 10.0}},
                        ]})
                    if status != 200:
                        errors.append((source, status, body))

            ingesters = [
                threading.Thread(target=ingester,
                                 args=(f"src-{n}", n), daemon=True)
                for n in range(3)
            ]
            for thread in ingesters:
                thread.start()
            for thread in ingesters:
                thread.join(timeout=60)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            assert not errors
            # Counters are lock-guarded: no increment lost to racing
            # handler threads.
            assert session.service.ingest_requests == 3 * 120
            assert session.engine.stats.windows >= 1
            # Post-storm consistency: scrape and queries agree.
            _s, _h, text = _get(session.url + "/metrics")
            assert (f"repro_last_window_epoch "
                    f"{session.engine.latest().index}"
                    ) in text.decode()
        finally:
            stop.set()
            session.close()

    def test_serve_summary_and_events_wiring(self, tmp_path):
        session = _serve_session(
            tmp_path,
            journal=str(tmp_path / "serve.journal"),
            checkpoint=str(tmp_path / "serve.ckpt"),
        )
        try:
            _push(session, 90)
            status, _h, events = _get_json(session.url + "/api/events")
            kinds = {event["kind"] for event in events["events"]}
            assert "checkpoint" in kinds  # policy hook fired
            summary = session.service.summary()
            assert summary["ingest_requests"] == 90
            assert summary["windows_published"] == \
                session.engine.stats.windows
            assert summary["duplicates"] == 0
        finally:
            session.close()


# ---------------------------------------------------------------------------
# The proof obligation: HTTP-fed == in-process, bit for bit


def _fingerprints(analyses):
    return [test_obs._fingerprint(analysis) for analysis in analyses]


def _reference_windows(steps, seed=3):
    """The same point stream pushed through the in-process bus."""
    config = StreamingConfig(window=10.0, hop=5.0, retention=60.0,
                             min_window_samples=8)
    engine = StreamingSieve(config=config, seed=seed,
                            application="http", workload="constant")
    graph = CallGraph()
    graph.record_call("front", "back")
    analyses = []
    for step in range(steps):
        t = step * 0.5
        for batch in _batches(step, t):
            engine.bus.publish(batch["component"], batch["time"],
                               batch["metrics"])
        analysis = engine.offer(t, graph)
        if analysis is not None:
            analyses.append(analysis)
    engine.close()
    return analyses


class TestBitIdentical:
    def test_http_ingest_matches_in_process_bus(self):
        steps = 100
        reference = _reference_windows(steps)
        assert len(reference) >= 2

        session = _serve_session()
        try:
            _push(session, steps)
            streamed = list(session.engine.history)
        finally:
            session.close()

        assert len(streamed) == len(reference)
        for http_window, bus_window in zip(streamed, reference):
            assert http_window.index == bus_window.index
            assert http_window.start == bus_window.start
            assert http_window.end == bus_window.end
            assert http_window.reclustered == bus_window.reclustered
            assert http_window.reused == bus_window.reused
        assert _fingerprints(streamed) == _fingerprints(reference)
        assert edge_jaccard(
            streamed[-1].dependency_graph,
            reference[-1].dependency_graph,
        ) == 1.0

    def test_http_fed_resume_is_bit_identical(self, tmp_path):
        steps, cut = 100, 50
        reference = _reference_windows(steps)

        journal = str(tmp_path / "ingest.journal")
        checkpoint = str(tmp_path / "serve.ckpt")
        first = _serve_session(journal=journal, checkpoint=checkpoint)
        try:
            _push(first, cut)
            assert first.engine.stats.windows >= 1
        finally:
            first.close()  # the "kill": journal + checkpoint survive

        resumed = _serve_session(journal=journal,
                                 checkpoint=checkpoint, resume=True)
        try:
            assert resumed.resumed
            # A sender replaying pre-crash samples gets them clipped
            # as already-journaled -- and the ack reports them as
            # clipped, not accepted.
            status, _h, body = _post(
                resumed.url + "/ingest", [_batches(0, 0.0)[0]])
            assert status == 200 and body["status"] == "ok"
            assert body["clipped"] == 3
            assert body["accepted"] == 0 and body["rejected"] == 0
            _push(resumed, steps - cut, start_step=cut)
            tail = list(resumed.engine.history)
            assert resumed.engine.stats.windows == len(reference)
        finally:
            resumed.close()

        expected_tail = reference[-len(tail):]
        assert _fingerprints(tail) == _fingerprints(expected_tail)
        for resumed_window, expected in zip(tail, expected_tail):
            assert resumed_window.index == expected.index
            assert resumed_window.start == expected.start
            assert resumed_window.end == expected.end


# ---------------------------------------------------------------------------
# Stream mode: query surface over a co-simulation


class TestStreamModeService:
    def test_cosim_service_serves_queries_but_not_ingest(self):
        session = (PipelineBuilder("demo-chain").mode("stream")
                   .workload("constant", rate=12.0)
                   .streaming(window=10.0, hop=5.0, retention=60.0)
                   .service(port=0)
                   .duration(15).seed(3).build())
        try:
            url = session.telemetry.server.url
            outcome = session.run()
            assert outcome.analyses
            status, _h, windows = _get_json(url + "/api/windows")
            assert status == 200
            assert windows["count"] == len(outcome.analyses)
            # The driver owns the bus: HTTP ingest is refused.
            status, _h, body = _post(
                url + "/ingest",
                [{"component": "front", "time": 1.0,
                  "metrics": {"cpu": 1.0}}],
            )
            assert status == 409 and "co-simulation" in body["error"]
        finally:
            session.close()


# ---------------------------------------------------------------------------
# Spec plumbing


class TestServiceSpec:
    def test_defaults_and_validation(self):
        spec = ServiceSpec()
        assert not spec.active
        assert ServiceSpec(port=9100).active
        with pytest.raises(ValueError):
            ServiceSpec(clock="lamport")
        with pytest.raises(ValueError):
            ServiceSpec(poll_interval=-1.0)
        with pytest.raises(ValueError):
            ServiceSpec(topology=(("only-one",),))

    def test_topology_normalizes_and_builds_a_graph(self):
        spec = ServiceSpec(topology=[["front", "back"],
                                     ("back", "db", 3)])
        assert spec.topology == (("front", "back", 1),
                                 ("back", "db", 3))
        graph = spec.build_call_graph()
        assert graph.has_edge("front", "back")
        assert graph.call_count("back", "db") == 3

    def test_serve_mode_requires_an_active_service(self):
        with pytest.raises(ValueError):
            RunSpec(mode="serve")
        RunSpec(mode="serve", service=ServiceSpec(enabled=True))

    def test_round_trip_json_and_toml(self):
        spec = (PipelineBuilder("http").mode("serve")
                .workload("constant", rate=10.0)
                .service(port=9123, clock="wall", poll_interval=2.0,
                         topology=(("front", "back", 2),))
                .duration(30).seed(7).spec())
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert loads_spec(spec_to_toml(spec), format="toml") == spec
        with pytest.raises(ValueError):
            RunSpec.from_dict({**spec.to_dict(),
                               "service": {"bogus": 1}})

    def test_cli_spec_serve_round_trips(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "serve.toml"
        code = main(["spec", "serve", "--port", "9123",
                     "--clock", "wall", "--topology", "front:back:2",
                     "--topology", "back:db", "-o", str(out)])
        assert code == 0
        spec = load_spec(out)
        assert spec.mode == "serve"
        assert spec.service.enabled and spec.service.port == 9123
        assert spec.service.clock == "wall"
        assert spec.service.topology == (("front", "back", 2),
                                         ("back", "db", 1))

    def test_cli_rejects_bad_topology(self, capsys):
        from repro.cli import main

        code = main(["spec", "serve", "--topology", "oops"])
        assert code == 2
        assert "topology edge" in capsys.readouterr().err
