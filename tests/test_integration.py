"""Integration tests: the full Sieve pipeline end to end.

These run the complete Load -> Reduce -> Identify pipeline on the real
application models (shorter loads than the benchmarks, same code paths)
and the RCA comparison across a correct/faulty OpenStack pair.
"""

import pytest

from repro.apps import (
    build_openstack_application,
    build_sharelatex_application,
    openstack_fault_plan,
)
from repro.core import Sieve, SieveConfig
from repro.metrics import MetricsStore
from repro.rca import RCAEngine
from repro.workload import RallyRunner, RandomWorkload


@pytest.fixture(scope="module")
def sharelatex_result():
    sieve = Sieve(build_sharelatex_application())
    workload = RandomWorkload(duration=90.0, seed=11)
    return sieve.run(workload, duration=90.0, seed=11)


@pytest.fixture(scope="module")
def openstack_pair():
    sieve = Sieve(build_openstack_application())
    rally = RallyRunner(times=10, concurrency=5, seed=13)
    duration = min(rally.duration, 100.0)
    correct = sieve.run(rally, duration=duration, seed=13)
    faulty = sieve.run(rally, duration=duration, seed=13,
                       fault_plan=openstack_fault_plan())
    return correct, faulty


class TestSharelatexPipeline:
    def test_order_of_magnitude_reduction(self, sharelatex_result):
        """Paper §6.1.2: 10-100x fewer metrics after Sieve."""
        result = sharelatex_result
        assert result.total_metrics() > 700
        assert result.reduction_factor() >= 5.0
        per_component = result.reduction_by_component()
        for component, (before, after) in per_component.items():
            assert after <= 7, component  # max_clusters
            assert after < before, component

    def test_dependency_graph_follows_call_graph(self, sharelatex_result):
        result = sharelatex_result
        call_graph = result.run.call_graph
        for relation in result.dependency_graph.relations:
            src = relation.source_component
            dst = relation.target_component
            assert call_graph.has_edge(src, dst) \
                or call_graph.has_edge(dst, src)

    def test_relations_annotated(self, sharelatex_result):
        for relation in sharelatex_result.dependency_graph.relations:
            assert 0.0 <= relation.p_value < 0.05
            assert relation.lag >= 1

    def test_guiding_metric_is_web_application_metric(self,
                                                      sharelatex_result):
        """The paper's autoscaling pick came from web's request metrics."""
        hub = sharelatex_result.dependency_graph.most_connected_metric(
            component="web"
        )
        assert hub is not None
        assert hub[0] == "web"

    def test_table3_monitoring_savings(self, sharelatex_result):
        """Paper Table 3: large CPU/storage/network savings."""
        result = sharelatex_result
        before = MetricsStore()
        before.replay_frame(result.run.frame)
        before.simulate_dashboard_reads()
        after = MetricsStore()
        after.replay_frame(result.run.frame,
                           keep=result.representative_keys())
        after.simulate_dashboard_reads()
        b, a = before.usage.summary(), after.usage.summary()
        assert a["cpu_seconds"] < 0.35 * b["cpu_seconds"]
        assert a["db_bytes"] < 0.35 * b["db_bytes"]
        assert a["network_in_bytes"] < 0.35 * b["network_in_bytes"]
        assert a["network_out_bytes"] < 0.75 * b["network_out_bytes"]

    def test_summary_shape(self, sharelatex_result):
        summary = sharelatex_result.summary()
        assert summary["application"] == "sharelatex"
        assert summary["metrics_after"] < summary["metrics_before"]


class TestOpenstackRCA:
    def test_component_ranking_matches_table5(self, openstack_pair):
        correct, faulty = openstack_pair
        report = RCAEngine().compare(correct, faulty, threshold=0.5)
        ranked = [d.component for d in report.component_ranking]
        # Table 5's top four positions.
        assert ranked[0] == "nova-api"
        assert ranked[1] == "nova-libvirt"
        assert ranked[2] == "nova-scheduler"
        assert ranked[3] == "neutron-server"

    def test_key_fault_metrics_in_final_ranking(self, openstack_pair):
        correct, faulty = openstack_pair
        report = RCAEngine().compare(correct, faulty, threshold=0.5)
        by_component = {c.component: c for c in report.final_ranking}
        assert "nova-api" in by_component
        assert any("ERROR" in m
                   for m in by_component["nova-api"].metrics)
        if "neutron-server" in by_component:
            assert any("DOWN" in m
                       for m in by_component["neutron-server"].metrics)

    def test_threshold_sweep_monotone(self, openstack_pair):
        """Figure 7(b/c): higher similarity thresholds shrink the
        implicated state."""
        correct, faulty = openstack_pair
        report = RCAEngine().compare(correct, faulty, threshold=0.5)
        metrics_by_threshold = [
            report.implicated_state(t)["metrics"]
            for t in (0.0, 0.5, 0.6, 0.7)
        ]
        assert all(a >= b for a, b in
                   zip(metrics_by_threshold, metrics_by_threshold[1:]))

    def test_cluster_novelty_histogram(self, openstack_pair):
        correct, faulty = openstack_pair
        report = RCAEngine().compare(correct, faulty, threshold=0.5)
        histogram = report.cluster_novelty_histogram()
        novel = (histogram["new"] + histogram["discarded"]
                 + histogram["new_and_discarded"])
        assert novel > 0
        assert histogram["total"] >= novel + histogram["unchanged"]

    def test_identical_versions_produce_no_candidates(self, openstack_pair):
        correct, _ = openstack_pair
        report = RCAEngine().compare(correct, correct, threshold=0.5)
        assert report.component_ranking == []
        assert report.final_ranking == []
        counts = report.edge_classifications[0.5].counts()
        assert counts["new"] == 0
        assert counts["discarded"] == 0

    def test_unknown_threshold_rejected(self, openstack_pair):
        correct, faulty = openstack_pair
        with pytest.raises(ValueError):
            RCAEngine().compare(correct, faulty, threshold=0.42)


class TestConfig:
    def test_defaults_match_paper(self):
        config = SieveConfig()
        assert config.grid_interval == 0.5
        assert config.variance_threshold == 0.002
        assert config.max_clusters == 7
        assert config.granger_lags[0] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SieveConfig(grid_interval=0.0)
        with pytest.raises(ValueError):
            SieveConfig(granger_alpha=1.5)
        with pytest.raises(ValueError):
            SieveConfig(max_clusters=0)
        with pytest.raises(ValueError):
            SieveConfig(granger_lags=())
