"""Tests for entropy / MI / AMI (repro.stats.information)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.information import (
    adjusted_mutual_info,
    contingency_matrix,
    entropy,
    expected_mutual_info,
    mutual_info,
)

labelings = st.lists(st.integers(0, 4), min_size=4, max_size=60)


class TestContingency:
    def test_counts(self):
        table = contingency_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(table, [[1, 1], [0, 2]])

    def test_total_preserved(self):
        a = [0, 1, 2, 0, 1]
        b = [1, 1, 0, 0, 1]
        assert contingency_matrix(a, b).sum() == 5

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            contingency_matrix([0, 1], [0, 1, 2])


class TestEntropy:
    def test_uniform(self):
        assert entropy([0, 1, 2, 3]) == pytest.approx(np.log(4))

    def test_single_cluster_zero(self):
        assert entropy([7, 7, 7]) == 0.0

    def test_string_labels(self):
        assert entropy(["a", "b"]) == pytest.approx(np.log(2))


class TestMutualInfo:
    def test_identical_equals_entropy(self):
        labels = [0, 0, 1, 1, 2, 2]
        assert mutual_info(labels, labels) == pytest.approx(entropy(labels))

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 2000)
        b = rng.integers(0, 2, 2000)
        assert mutual_info(a, b) < 0.01

    def test_nonnegative(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = rng.integers(0, 3, 50)
            b = rng.integers(0, 3, 50)
            assert mutual_info(a, b) >= 0.0


class TestExpectedMI:
    def test_emi_below_mi_for_identical(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        table = contingency_matrix(labels, labels)
        assert expected_mutual_info(table) < mutual_info(labels, labels)

    def test_emi_positive_for_nontrivial(self):
        table = contingency_matrix([0, 0, 1, 1], [0, 1, 0, 1])
        assert expected_mutual_info(table) > 0.0


class TestAMI:
    def test_identical_partitions_score_one(self):
        assert adjusted_mutual_info([0, 0, 1, 1], [5, 5, 9, 9]) \
            == pytest.approx(1.0)

    def test_permuted_labels_score_one(self):
        a = [0, 1, 2, 0, 1, 2]
        b = [2, 0, 1, 2, 0, 1]
        assert adjusted_mutual_info(a, b) == pytest.approx(1.0)

    def test_random_partitions_near_zero(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 3, 3000)
        b = rng.integers(0, 3, 3000)
        assert abs(adjusted_mutual_info(a, b)) < 0.02

    def test_better_than_chance_scores_positive(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 3, 300)
        b = a.copy()
        flip = rng.random(300) < 0.2  # 20% label noise
        b[flip] = rng.integers(0, 3, int(flip.sum()))
        score = adjusted_mutual_info(a, b)
        assert 0.3 < score < 1.0

    def test_single_cluster_both_sides(self):
        assert adjusted_mutual_info([0, 0, 0], [1, 1, 1]) == 1.0

    def test_average_methods(self):
        a = [0, 0, 1, 1, 2, 2]
        b = [0, 0, 0, 1, 1, 1]
        scores = {
            method: adjusted_mutual_info(a, b, average_method=method)
            for method in ("arithmetic", "max", "min", "geometric")
        }
        # max-normalized is the most conservative.
        assert scores["max"] <= scores["arithmetic"] <= scores["min"]
        assert all(-1.0 <= s <= 1.0 for s in scores.values())

    def test_unknown_average_method(self):
        with pytest.raises(ValueError):
            adjusted_mutual_info([0, 0, 1], [0, 1, 1],
                                 average_method="median")

    @given(labelings)
    @settings(max_examples=30, deadline=None)
    def test_property_self_ami_is_one(self, labels):
        assert adjusted_mutual_info(labels, labels) == pytest.approx(1.0)

    @given(labelings, st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_symmetry(self, labels, seed):
        rng = np.random.default_rng(seed)
        other = rng.integers(0, 3, len(labels))
        ab = adjusted_mutual_info(labels, other)
        ba = adjusted_mutual_info(other, labels)
        assert ab == pytest.approx(ba, abs=1e-9)
