"""Tests for k-Shape clustering and the metric-reduction pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    kshape,
    name_based_labels,
    reduce_component,
    select_k,
)
from repro.clustering.model_selection import sbd_matrix
from repro.metrics.timeseries import MetricKey, TimeSeries
from repro.stats.timeseries_ops import znormalize


def _shape_dataset(n_per_cluster=6, length=120, seed=0):
    """Three shape families that stay distinct under shift invariance.

    Note sin and cos would NOT qualify: SBD aligns shifts, and cos is a
    shifted sin.  The families differ in frequency/waveform instead.
    """
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 4 * np.pi, length)
    shapes = (
        lambda x: np.sin(x),
        lambda x: np.sin(2.7 * x),
        lambda x: np.sign(np.sin(0.5 * x)),
    )
    groups = []
    for shape_fn in shapes:
        for _ in range(n_per_cluster):
            noise = rng.normal(0, 0.15, length)
            shift = rng.integers(0, 8)
            groups.append(znormalize(np.roll(shape_fn(t) + noise, shift)))
    data = np.vstack(groups)
    labels = np.repeat([0, 1, 2], n_per_cluster)
    return data, labels


class TestKShape:
    def test_recovers_planted_clusters(self):
        data, truth = _shape_dataset()
        result = kshape(data, 3, seed=1)
        # Cluster indices are arbitrary; check pairwise co-membership.
        co_ours = result.labels[:, None] == result.labels[None, :]
        co_truth = truth[:, None] == truth[None, :]
        agreement = (co_ours == co_truth).mean()
        assert agreement > 0.9

    def test_converges(self):
        data, _ = _shape_dataset()
        result = kshape(data, 3, seed=1)
        assert result.converged
        assert result.iterations < 30

    def test_k_equals_one(self):
        data, _ = _shape_dataset(n_per_cluster=2)
        result = kshape(data, 1, seed=0)
        assert set(result.labels) == {0}

    def test_every_cluster_populated(self):
        data, _ = _shape_dataset()
        result = kshape(data, 5, seed=2)
        assert set(result.labels) == set(range(5))

    def test_initial_labels_respected_and_faster(self):
        data, truth = _shape_dataset()
        seeded = kshape(data, 3, initial_labels=truth, seed=0)
        assert seeded.converged
        # Perfect initialization converges essentially immediately.
        assert seeded.iterations <= 3

    def test_invalid_arguments(self):
        data, _ = _shape_dataset(n_per_cluster=2)
        with pytest.raises(ValueError):
            kshape(data, 0)
        with pytest.raises(ValueError):
            kshape(data, 100)
        with pytest.raises(ValueError):
            kshape(data, 2, initial_labels=np.zeros(3, dtype=int))

    def test_centroids_znormalized(self):
        data, _ = _shape_dataset()
        result = kshape(data, 3, seed=1)
        for centroid in result.centroids:
            assert abs(centroid.mean()) < 1e-6
            assert abs(centroid.std() - 1.0) < 1e-6

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_property_deterministic_per_seed(self, seed):
        data, _ = _shape_dataset(n_per_cluster=3, seed=seed % 7)
        a = kshape(data, 2, seed=seed)
        b = kshape(data, 2, seed=seed)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestNamePreclustering:
    def test_groups_similar_names(self):
        names = ["cpu_usage", "cpu_usage_percentile", "cpu_user_time",
                 "db_queries_count", "db_queries_mean", "db_rows_returned"]
        labels = name_based_labels(names, 2)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_exactly_k_groups(self):
        names = [f"metric_{i}" for i in range(12)]
        for k in (2, 3, 5):
            labels = name_based_labels(names, k)
            assert np.unique(labels).size == k

    def test_single_group(self):
        assert list(name_based_labels(["a", "b"], 1)) == [0, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            name_based_labels([], 1)
        with pytest.raises(ValueError):
            name_based_labels(["a"], 2)


class TestSelectK:
    def test_finds_planted_k(self):
        data, _ = _shape_dataset()
        selection = select_k(data, max_k=6, seed=0)
        assert selection.k == 3
        assert selection.silhouette > 0.4

    def test_tiny_input_trivial_cluster(self):
        data = np.vstack([np.sin(np.linspace(0, 6, 50))] * 2)
        selection = select_k(data)
        assert selection.k == 1

    def test_scores_recorded_per_k(self):
        data, _ = _shape_dataset()
        selection = select_k(data, max_k=5, seed=0)
        assert set(selection.scores) <= {2, 3, 4, 5}
        assert selection.scores[selection.k] == selection.silhouette

    def test_max_k_respected(self):
        data, _ = _shape_dataset()
        selection = select_k(data, max_k=2, seed=0)
        assert selection.k == 2


def _frame_view(seed=0, n_groups=3, metrics_per_group=5, length=200):
    """A component view with correlated metric families plus flat ones."""
    rng = np.random.default_rng(seed)
    t = np.arange(length) * 0.5
    bases = [np.sin(0.05 * t), np.cos(0.11 * t),
             np.cumsum(rng.normal(size=length)) * 0.05]
    view = {}
    for g in range(n_groups):
        for i in range(metrics_per_group):
            values = bases[g % len(bases)] * (1 + 0.2 * i) \
                + rng.normal(0, 0.08, length) + 3.0
            name = f"family{g}_metric{i}"
            view[name] = TimeSeries(MetricKey("comp", name), t, values)
    view["constant_gauge"] = TimeSeries(
        MetricKey("comp", "constant_gauge"), t, np.full(length, 7.0)
    )
    return view


class TestReduceComponent:
    def test_reduces_and_filters(self):
        view = _frame_view()
        clustering = reduce_component("comp", view, seed=0)
        assert clustering.total_metrics == 16
        assert "constant_gauge" in clustering.filtered_metrics
        assert 2 <= clustering.n_clusters <= 7
        assert clustering.n_clusters < 15

    def test_representatives_are_members(self):
        clustering = reduce_component("comp", _frame_view(), seed=0)
        for cluster in clustering.clusters:
            assert cluster.representative in cluster.metrics

    def test_representative_minimizes_distance(self):
        clustering = reduce_component("comp", _frame_view(), seed=0)
        for cluster in clustering.clusters:
            rep_distance = cluster.distances[cluster.representative]
            assert rep_distance == min(cluster.distances.values())

    def test_labels_cover_clustered_metrics(self):
        clustering = reduce_component("comp", _frame_view(), seed=0)
        labels = clustering.labels()
        clustered = set(labels)
        filtered = set(clustering.filtered_metrics)
        assert clustered | filtered == set(_frame_view())
        assert not clustered & filtered

    def test_cluster_of(self):
        clustering = reduce_component("comp", _frame_view(), seed=0)
        some_metric = clustering.clusters[0].metrics[0]
        assert clustering.cluster_of(some_metric) is clustering.clusters[0]
        assert clustering.cluster_of("constant_gauge") is None

    def test_empty_view(self):
        clustering = reduce_component("comp", {}, seed=0)
        assert clustering.n_clusters == 0
        assert clustering.representatives == []

    def test_all_flat_view(self):
        t = np.arange(20) * 0.5
        view = {
            f"flat{i}": TimeSeries(MetricKey("c", f"flat{i}"), t,
                                   np.full(20, float(i)))
            for i in range(4)
        }
        clustering = reduce_component("c", view, seed=0)
        assert clustering.n_clusters == 0
        assert len(clustering.filtered_metrics) == 4

    def test_single_varying_metric(self):
        t = np.arange(50) * 0.5
        view = {"only": TimeSeries(MetricKey("c", "only"), t,
                                   np.sin(t) * 5)}
        clustering = reduce_component("c", view, seed=0)
        assert clustering.n_clusters == 1
        assert clustering.representatives == ["only"]

    def test_same_family_clusters_together(self):
        clustering = reduce_component("comp", _frame_view(), seed=0)
        labels = clustering.labels()
        # Metrics of family0 should mostly share a cluster.
        family0 = [labels[f"family0_metric{i}"] for i in range(5)]
        most_common = max(set(family0), key=family0.count)
        assert family0.count(most_common) >= 4


class TestSBDMatrix:
    def test_symmetry_and_zero_diagonal(self):
        data, _ = _shape_dataset(n_per_cluster=2)
        matrix = sbd_matrix(data)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)
