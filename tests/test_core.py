"""Unit tests for the Sieve orchestrator and result object."""

import pytest

from repro.core import Sieve, SieveConfig
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.workload import constant_rate


def _app():
    specs = [
        ComponentSpec("front", kind="generic",
                      endpoints=(EndpointSpec("op", 0.02),),
                      calls=(CallSpec("back", delay=0.4),)),
        ComponentSpec("back", kind="generic",
                      endpoints=(EndpointSpec("op", 0.01),),
                      concurrency=16),
    ]
    return Application("two-tier", specs)


@pytest.fixture(scope="module")
def sieve_and_run():
    sieve = Sieve(_app())
    loaded = sieve.load(constant_rate(40.0), duration=60.0, seed=4,
                        workload_name="steady")
    return sieve, loaded


class TestLoadStep:
    def test_load_produces_run(self, sieve_and_run):
        _sieve, loaded = sieve_and_run
        assert loaded.application == "two-tier"
        assert loaded.workload == "steady"
        assert loaded.metric_count() > 0
        assert loaded.call_graph.has_edge("front", "back")

    def test_callgraph_threshold_applied(self):
        config = SieveConfig(callgraph_min_connections=10**9)
        sieve = Sieve(_app(), config)
        loaded = sieve.load(constant_rate(40.0), duration=30.0, seed=4)
        assert loaded.call_graph.edges() == []

    def test_scrape_interval_from_config(self):
        config = SieveConfig(grid_interval=1.0)
        sieve = Sieve(_app(), config)
        loaded = sieve.load(constant_rate(40.0), duration=30.0, seed=4)
        ts = loaded.frame.series("front", "cpu_usage")
        spacing = ts.times[1:] - ts.times[:-1]
        assert spacing.mean() == pytest.approx(1.0, abs=0.1)


class TestAnalyzeStep:
    def test_analyze_separately_equals_run(self, sieve_and_run):
        sieve, loaded = sieve_and_run
        result_a = sieve.analyze(loaded, seed=4)
        result_b = sieve.analyze(loaded, seed=4)
        assert result_a.total_representatives() \
            == result_b.total_representatives()
        assert len(result_a.dependency_graph) \
            == len(result_b.dependency_graph)

    def test_result_helpers(self, sieve_and_run):
        sieve, loaded = sieve_and_run
        result = sieve.analyze(loaded, seed=4)
        assert result.total_metrics() == loaded.metric_count()
        assert 0 < result.total_representatives() \
            <= result.total_metrics()
        assert result.reduction_factor() > 1.0
        keys = result.representative_keys()
        assert len(keys) == result.total_representatives()
        for component in ("front", "back"):
            reps = result.representatives_of(component)
            assert all(
                key.metric in reps for key in keys
                if key.component == component
            )

    def test_summary_fields(self, sieve_and_run):
        sieve, loaded = sieve_and_run
        summary = sieve.analyze(loaded, seed=4).summary()
        for field in ("application", "metrics_before", "metrics_after",
                      "reduction_factor", "metric_relations"):
            assert field in summary

    def test_alpha_affects_relation_count(self, sieve_and_run):
        sieve, loaded = sieve_and_run
        strict = Sieve(_app(), SieveConfig(granger_alpha=1e-6)) \
            .analyze(loaded, seed=4)
        lax = Sieve(_app(), SieveConfig(granger_alpha=0.05)) \
            .analyze(loaded, seed=4)
        assert len(strict.dependency_graph) <= len(lax.dependency_graph)
