"""Tests for call-graph capture and tracing overhead models."""

import pytest

from repro.tracing import (
    TRACING_TECHNIQUES,
    CallGraph,
    ServiceDiscovery,
    SyscallEvent,
    SysdigTracer,
    completion_time_factor,
)


class TestCallGraph:
    def test_record_and_query(self):
        graph = CallGraph()
        graph.record_call("a", "b", 3)
        graph.record_call("a", "b", 2)
        assert graph.call_count("a", "b") == 5
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_callees_and_callers(self):
        graph = CallGraph()
        graph.record_call("web", "db")
        graph.record_call("web", "cache")
        graph.record_call("lb", "web")
        assert graph.callees("web") == ["cache", "db"]
        assert graph.callers("web") == ["lb"]
        assert graph.callees("ghost") == []

    def test_self_calls_ignored(self):
        graph = CallGraph()
        graph.record_call("a", "a")
        assert graph.edges() == []

    def test_filtered_threshold(self):
        graph = CallGraph()
        graph.record_call("a", "b", 1)
        graph.record_call("a", "c", 10)
        filtered = graph.filtered(min_count=5)
        assert filtered.has_edge("a", "c")
        assert not filtered.has_edge("a", "b")
        # Nodes survive filtering even without edges.
        assert "b" in filtered

    def test_communicating_pairs(self):
        graph = CallGraph()
        graph.record_call("a", "b")
        graph.record_call("b", "c")
        assert graph.communicating_pairs() == [("a", "b"), ("b", "c")]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            CallGraph().record_call("a", "b", 0)

    def test_to_networkx(self):
        graph = CallGraph()
        graph.record_call("a", "b", 4)
        nx_graph = graph.to_networkx()
        assert nx_graph["a"]["b"]["count"] == 4


class TestServiceDiscovery:
    def test_register_and_resolve(self):
        disco = ServiceDiscovery()
        addr = disco.register("web")
        assert disco.resolve(addr) == "web"
        assert disco.address_of("web") == addr

    def test_register_idempotent(self):
        disco = ServiceDiscovery()
        assert disco.register("web") == disco.register("web")

    def test_unknown_address(self):
        assert ServiceDiscovery().resolve("10.9.9.9") is None


class TestSysdigTracer:
    def test_builds_call_graph_from_sink(self):
        tracer = SysdigTracer()
        tracer.register_components(["front", "back"])
        tracer.sink(0.0, "front", "back", 5)
        tracer.sink(0.1, "front", "back", 3)
        graph = tracer.call_graph()
        assert graph.call_count("front", "back") == 8

    def test_min_count_filters_sporadic_edges(self):
        tracer = SysdigTracer()
        tracer.sink(0.0, "a", "b", 1)
        tracer.sink(0.0, "c", "d", 10)
        graph = tracer.call_graph(min_count=2)
        assert not graph.has_edge("a", "b")
        assert graph.has_edge("c", "d")

    def test_unresolved_addresses_counted_and_dropped(self):
        tracer = SysdigTracer()
        tracer.register_components(["known"])
        addr = tracer.discovery.address_of("known")
        tracer.record_syscalls([
            SyscallEvent(0.0, addr, "203.0.113.7"),  # outside the cluster
            SyscallEvent(0.0, addr, addr),
        ])
        assert tracer.unresolved_connections == 1
        assert tracer.observed_connections == 2

    def test_event_retention_capped(self):
        tracer = SysdigTracer(keep_events=10)
        for i in range(50):
            tracer.sink(float(i), "a", "b", 1)
        assert len(tracer.events) == 10
        assert tracer.call_graph().call_count("a", "b") == 50


class TestOverheadModel:
    def test_paper_ordering(self):
        """Figure 5: native < tcpdump < sysdig < ptrace."""
        base = 0.00028
        factors = {
            name: completion_time_factor(tech, base)
            for name, tech in TRACING_TECHNIQUES.items()
        }
        assert factors["native"] == pytest.approx(1.0)
        assert factors["native"] < factors["tcpdump"] \
            < factors["sysdig"] < factors["ptrace"]

    def test_paper_magnitudes(self):
        base = 0.00028
        assert completion_time_factor(
            TRACING_TECHNIQUES["tcpdump"], base) == pytest.approx(1.07)
        assert completion_time_factor(
            TRACING_TECHNIQUES["sysdig"], base) == pytest.approx(1.22)

    def test_ptrace_context_switch_cost_dominates(self):
        tech = TRACING_TECHNIQUES["ptrace"]
        overhead = tech.request_overhead(0.00028)
        switching = tech.syscalls_per_request * tech.context_switch_cost
        assert switching > 0.5 * overhead

    def test_only_sysdig_and_ptrace_have_context(self):
        assert TRACING_TECHNIQUES["sysdig"].provides_process_context
        assert not TRACING_TECHNIQUES["tcpdump"].provides_process_context
        assert not TRACING_TECHNIQUES["native"].provides_process_context

    def test_invalid_base_time(self):
        with pytest.raises(ValueError):
            completion_time_factor(TRACING_TECHNIQUES["native"], 0.0)
