"""Tests for the application models (ShareLatex, OpenStack, nginx)."""

import pytest

from repro.apps import (
    OPENSTACK_COMPONENTS,
    SHARELATEX_COMPONENTS,
    build_nginx_application,
    build_openstack_application,
    build_sharelatex_application,
    full_metric_catalog,
    openstack_fault_plan,
    run_ab_benchmark,
)
from repro.workload import RallyRunner, constant_rate


class TestShareLatex:
    def test_fifteen_components(self):
        """KV-store + LB + two DBs + 11 node.js components (paper §4.1)."""
        app = build_sharelatex_application()
        assert len(app.specs) == 15
        assert set(app.component_names) == set(SHARELATEX_COMPONENTS)
        kinds = {spec.name: spec.kind for spec in app.specs}
        assert kinds["redis"] == "kv-store"
        assert kinds["haproxy"] == "loadbalancer"
        assert kinds["mongodb"] == "database"
        assert kinds["postgresql"] == "database"
        nodejs = [n for n, k in kinds.items() if k == "nodejs"]
        assert len(nodejs) == 11

    def test_metric_count_near_paper(self):
        """Paper Table 1: ShareLatex exposes 889 metrics."""
        app = build_sharelatex_application()
        run = app.load(constant_rate(20.0), duration=20.0, seed=0)
        assert 700 <= run.metric_count() <= 1000

    def test_topology_matches_architecture(self):
        app = build_sharelatex_application()
        web_calls = {c.target for c in app.spec_of("web").calls}
        assert {"docstore", "doc-updater", "mongodb"} <= web_calls
        haproxy_calls = {c.target for c in app.spec_of("haproxy").calls}
        assert haproxy_calls == {"web", "real-time"}

    def test_hub_endpoint_exists(self):
        """The paper's autoscaling metric comes from this endpoint."""
        app = build_sharelatex_application()
        endpoints = {e.name for e in app.spec_of("web").endpoints}
        assert "Project_id_GET" in endpoints

    def test_call_graph_captured_under_load(self):
        app = build_sharelatex_application()
        run = app.load(constant_rate(30.0), duration=30.0, seed=1)
        assert run.call_graph.has_edge("haproxy", "web")
        assert run.call_graph.has_edge("web", "mongodb")
        assert not run.call_graph.has_edge("mongodb", "haproxy")


class TestOpenStack:
    @pytest.fixture(scope="class")
    def runs(self):
        """One correct and one faulty load (shared across tests)."""
        app = build_openstack_application()
        rally = RallyRunner(times=8, concurrency=4, seed=5)
        duration = min(rally.duration, 90.0)
        correct = app.load(rally, duration=duration, seed=5)
        faulty = app.load(rally, duration=duration, seed=5,
                          fault_plan=openstack_fault_plan())
        return correct, faulty

    def test_sixteen_components(self):
        app = build_openstack_application()
        assert len(app.specs) == 16
        assert set(app.component_names) == set(OPENSTACK_COMPONENTS)

    def test_table5_metric_totals(self, runs):
        """Union metric counts match Table 5's per-component totals."""
        correct, faulty = runs
        expected = {
            "nova-api": 59, "nova-libvirt": 39, "nova-scheduler": 30,
            "neutron-server": 42, "rabbitmq": 57, "neutron-l3-agent": 39,
            "nova-novncproxy": 12, "glance-api": 27,
            "neutron-dhcp-agent": 35, "nova-compute": 41,
            "glance-registry": 23, "haproxy": 14, "nova-conductor": 29,
        }
        for component, total in expected.items():
            union = set(correct.frame.metrics_of(component)) \
                | set(faulty.frame.metrics_of(component))
            assert len(union) == total, component

    def test_table5_novelty_counts(self, runs):
        """New/discarded metric counts match Table 5."""
        correct, faulty = runs
        expected = {
            "nova-api": (7, 22), "nova-libvirt": (0, 21),
            "nova-scheduler": (7, 7), "neutron-server": (2, 10),
            "rabbitmq": (5, 6), "neutron-l3-agent": (0, 7),
            "nova-novncproxy": (0, 7), "glance-api": (0, 5),
            "neutron-dhcp-agent": (0, 4), "nova-compute": (0, 3),
            "glance-registry": (0, 3), "haproxy": (1, 1),
            "nova-conductor": (0, 2),
        }
        for component, (n_new, n_disc) in expected.items():
            metrics_c = set(correct.frame.metrics_of(component))
            metrics_f = set(faulty.frame.metrics_of(component))
            assert len(metrics_f - metrics_c) == n_new, component
            assert len(metrics_c - metrics_f) == n_disc, component

    def test_fault_flips_key_metrics(self, runs):
        correct, faulty = runs
        nova_c = set(correct.frame.metrics_of("nova-api"))
        nova_f = set(faulty.frame.metrics_of("nova-api"))
        assert "nova_instances_in_state_ACTIVE" in nova_c - nova_f
        assert "nova_instances_in_state_ERROR" in nova_f - nova_c
        neutron_f = set(faulty.frame.metrics_of("neutron-server"))
        assert "neutron_ports_in_status_DOWN" in neutron_f

    def test_other_components_untouched(self, runs):
        correct, faulty = runs
        for component in ("keystone", "memcached", "mariadb"):
            assert set(correct.frame.metrics_of(component)) \
                == set(faulty.frame.metrics_of(component)), component

    def test_control_plane_topology(self):
        app = build_openstack_application()
        nova_api_calls = {c.target for c in app.spec_of("nova-api").calls}
        assert {"keystone", "rabbitmq", "neutron-server"} <= nova_api_calls
        rabbit_calls = {c.target for c in app.spec_of("rabbitmq").calls}
        assert "nova-scheduler" in rabbit_calls

    def test_full_catalog_matches_table1(self):
        catalog = full_metric_catalog()
        assert len(catalog) == 17_608
        assert len(set(catalog)) == 17_608  # unique names


class TestNginx:
    def test_figure5_ordering(self):
        """native < tcpdump < sysdig completion time, 10k requests."""
        results = {
            name: run_ab_benchmark(name, n_requests=10_000, seed=1)
            for name in ("native", "tcpdump", "sysdig")
        }
        assert results["native"].completion_time \
            < results["tcpdump"].completion_time \
            < results["sysdig"].completion_time

    def test_figure5_magnitudes(self):
        native = run_ab_benchmark("native", n_requests=5000, seed=2)
        tcpdump = run_ab_benchmark("tcpdump", n_requests=5000, seed=2)
        sysdig = run_ab_benchmark("sysdig", n_requests=5000, seed=2)
        assert tcpdump.completion_time / native.completion_time \
            == pytest.approx(1.07, abs=0.02)
        assert sysdig.completion_time / native.completion_time \
            == pytest.approx(1.22, abs=0.03)

    def test_closed_loop_semantics(self):
        result = run_ab_benchmark("native", n_requests=100, concurrency=8)
        assert result.n_requests == 100
        assert result.throughput > 0
        # With concurrency c, wall time is about serial_time / c.
        serial = run_ab_benchmark("native", n_requests=100, concurrency=1)
        assert result.completion_time < serial.completion_time

    def test_application_wrapper(self):
        app = build_nginx_application()
        assert app.component_names == ["nginx"]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            run_ab_benchmark("native", n_requests=0)
        with pytest.raises(KeyError):
            run_ab_benchmark("strace")
