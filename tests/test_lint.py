"""Tests for ``repro lint``, the repo-invariant static analyzer.

Every rule gets fixture snippets both ways: a known-positive that must
fire and a known-negative that must stay quiet.  On top of the rules:
suppression and baseline round-trips, fixer application, the CLI
(including the deliberate-regression fixture the CI gate relies on),
and the meta-test that the live tree lints clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.lint import (
    Baseline,
    Finding,
    LintConfig,
    Linter,
    Rule,
    RULES,
    all_rules,
    apply_fixes,
    lint_paths,
    register_rule,
    render_json,
    render_rule_list,
    render_text,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
LIVE_TREE = REPO_ROOT / "src" / "repro"


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def run_lint(tmp_path: Path, files: dict[str, str], *,
             rules=None, baseline=None, config=None):
    write_tree(tmp_path, files)
    return Linter(rules=rules, baseline=baseline, config=config) \
        .run([tmp_path])


def rule_ids(result) -> list[str]:
    return [finding.rule for finding in result.active]


# -- RL001 guarded-by -------------------------------------------------------


GUARDED_POSITIVE = """
    import threading

    class Service:
        def __init__(self):
            self._stats_lock = threading.Lock()
            self.requests = 0  # guarded-by: _stats_lock

        def bump(self):
            self.requests += 1
"""

GUARDED_NEGATIVE = """
    import threading

    class Service:
        def __init__(self):
            self._stats_lock = threading.Lock()
            self.requests = 0  # guarded-by: _stats_lock

        def bump(self):
            with self._stats_lock:
                self.requests += 1

        def snapshot(self):
            with self._stats_lock:
                return {"requests": self.requests}
"""


class TestGuardedBy:
    def test_positive_unlocked_touch(self, tmp_path):
        result = run_lint(tmp_path, {"svc.py": GUARDED_POSITIVE},
                          rules=["RL001"])
        assert rule_ids(result) == ["RL001"]
        assert "requests" in result.active[0].message
        assert result.active[0].symbol == "Service.bump"

    def test_negative_locked_touch(self, tmp_path):
        result = run_lint(tmp_path, {"svc.py": GUARDED_NEGATIVE},
                          rules=["RL001"])
        assert result.ok

    def test_init_is_exempt(self, tmp_path):
        result = run_lint(tmp_path, {"svc.py": GUARDED_NEGATIVE},
                          rules=["RL001"])
        assert result.ok  # the annotated assignment itself is in __init__

    def test_nested_function_resets_lock_context(self, tmp_path):
        source = """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: _lock

                def attach(self):
                    with self._lock:
                        def sample():
                            return self.count
                        return sample
        """
        result = run_lint(tmp_path, {"svc.py": source}, rules=["RL001"])
        # The closure runs later, off-thread: holding the lock at
        # definition time proves nothing.
        assert rule_ids(result) == ["RL001"]

    def test_wrong_lock_does_not_count(self, tmp_path):
        source = """
            import threading

            class Service:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self.count = 0  # guarded-by: _a

                def bump(self):
                    with self._b:
                        self.count += 1
        """
        result = run_lint(tmp_path, {"svc.py": source}, rules=["RL001"])
        assert rule_ids(result) == ["RL001"]


# -- RL002 no-blocking-under-lock -------------------------------------------


class TestNoBlockingUnderLock:
    def test_positive_sleep_under_lock(self, tmp_path):
        source = """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def tick(self):
                    with self._lock:
                        time.sleep(1.0)
        """
        result = run_lint(tmp_path, {"poller.py": source}, rules=["RL002"])
        assert rule_ids(result) == ["RL002"]
        assert "time.sleep" in result.active[0].message

    def test_negative_sleep_outside_lock(self, tmp_path):
        source = """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def tick(self):
                    with self._lock:
                        pending = True
                    time.sleep(1.0)
                    return pending
        """
        result = run_lint(tmp_path, {"poller.py": source}, rules=["RL002"])
        assert result.ok

    def test_negative_str_join_is_not_blocking(self, tmp_path):
        source = """
            import threading

            class Names:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.names = []

                def render(self):
                    with self._lock:
                        return ", ".join(self.names)
        """
        result = run_lint(tmp_path, {"names.py": source}, rules=["RL002"])
        assert result.ok


# -- RL003 lock-order -------------------------------------------------------


class TestLockOrder:
    def test_positive_lexical_cycle(self, tmp_path):
        source = """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
        """
        result = run_lint(tmp_path, {"pair.py": source}, rules=["RL003"])
        assert rule_ids(result) == ["RL003"]
        assert "lock-order cycle" in result.active[0].message

    def test_negative_consistent_order(self, tmp_path):
        source = """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
        """
        result = run_lint(tmp_path, {"pair.py": source}, rules=["RL003"])
        assert result.ok

    def test_positive_cycle_through_method_call(self, tmp_path):
        source = """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def helper(self):
                    with self._b:
                        pass

                def forward(self):
                    with self._a:
                        self.helper()

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
        """
        result = run_lint(tmp_path, {"pair.py": source}, rules=["RL003"])
        assert rule_ids(result) == ["RL003"]

    def test_negative_rlock_reentry_is_not_a_cycle(self, tmp_path):
        source = """
            import threading

            class Reentrant:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
        """
        result = run_lint(tmp_path, {"re.py": source}, rules=["RL003"])
        assert result.ok


# -- RL010 determinism ------------------------------------------------------


class TestDeterminism:
    def in_analysis_path(self, tmp_path, body, name="streaming/analyzer.py"):
        return run_lint(tmp_path, {name: body}, rules=["RL010"])

    def test_positive_wall_clock(self, tmp_path):
        result = self.in_analysis_path(tmp_path, """
            import time

            def analyze():
                return time.time()
        """)
        assert rule_ids(result) == ["RL010"]
        assert "wall clock" in result.active[0].message

    def test_positive_global_random(self, tmp_path):
        result = self.in_analysis_path(tmp_path, """
            import random

            def jitter(xs):
                random.shuffle(xs)
                return xs
        """)
        assert rule_ids(result) == ["RL010"]

    def test_positive_numpy_default_rng(self, tmp_path):
        result = self.in_analysis_path(tmp_path, """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
        """)
        assert rule_ids(result) == ["RL010"]

    def test_negative_seeded_rngs(self, tmp_path):
        result = self.in_analysis_path(tmp_path, """
            import random

            import numpy as np

            def noise(n, seed):
                rng = np.random.default_rng(seed)
                state = np.random.RandomState(seed)
                local = random.Random(seed)
                return rng.random(n), state.rand(n), local.random()
        """)
        assert result.ok

    def test_positive_set_iteration(self, tmp_path):
        result = self.in_analysis_path(tmp_path, """
            def components(frame):
                return [c for c in set(frame.keys())]
        """)
        assert rule_ids(result) == ["RL010"]
        assert "sorted" in result.active[0].message

    def test_negative_sorted_set_iteration(self, tmp_path):
        result = self.in_analysis_path(tmp_path, """
            def components(frame):
                return [c for c in sorted(set(frame.keys()))]
        """)
        assert result.ok

    def test_negative_outside_analysis_path(self, tmp_path):
        result = run_lint(tmp_path, {"obs/server.py": """
            import time

            def now():
                return time.time()
        """}, rules=["RL010"])
        assert result.ok

    def test_negative_local_helper_named_time(self, tmp_path):
        result = self.in_analysis_path(tmp_path, """
            def time():
                return 0.0

            def analyze():
                return time()
        """)
        assert result.ok


# -- RL011 no-pickle-of-arrays ----------------------------------------------


class TestNoPickle:
    def test_positive_pickle_in_shm_path(self, tmp_path):
        result = run_lint(tmp_path, {"parallel/shm.py": """
            import pickle

            def pack(array):
                return pickle.dumps(array)
        """}, rules=["RL011"])
        assert rule_ids(result) == ["RL011"]
        assert "ArrayRef" in result.active[0].message

    def test_negative_json_in_shm_path(self, tmp_path):
        result = run_lint(tmp_path, {"parallel/shm.py": """
            import json

            def pack(meta):
                return json.dumps(meta)
        """}, rules=["RL011"])
        assert result.ok

    def test_negative_pickle_outside_shm_path(self, tmp_path):
        result = run_lint(tmp_path, {"persistence/checkpoint.py": """
            import pickle

            def save(state):
                return pickle.dumps(state)
        """}, rules=["RL011"])
        assert result.ok


# -- RL020 registry-only ----------------------------------------------------


class TestRegistryOnly:
    def test_positive_stray_backend_construction(self, tmp_path):
        result = run_lint(tmp_path, {"streaming/driver.py": """
            from repro.persistence.sqlite_backend import SqliteBackend

            def open_store(path):
                return SqliteBackend(path)
        """}, rules=["RL020"])
        assert rule_ids(result) == ["RL020"]
        assert "registry" in result.active[0].message

    def test_negative_defining_module(self, tmp_path):
        result = run_lint(tmp_path, {"persistence/sqlite_backend.py": """
            class SqliteBackend:
                pass

            def reopen(path):
                return SqliteBackend(path)
        """}, rules=["RL020"])
        assert result.ok

    def test_negative_registry_module(self, tmp_path):
        result = run_lint(tmp_path, {"api/registry.py": """
            def _sqlite_backend(path, **options):
                from repro.persistence.sqlite_backend import SqliteBackend

                return SqliteBackend(path, **options)
        """}, rules=["RL020"])
        assert result.ok

    def test_negative_tests_are_exempt(self, tmp_path):
        result = run_lint(tmp_path, {"tests/test_backend.py": """
            from repro.persistence.sqlite_backend import SqliteBackend

            def test_roundtrip(tmp_path):
                backend = SqliteBackend(tmp_path / "db")
                assert backend is not None
        """}, rules=["RL020"])
        assert result.ok


# -- RL021 frozen-spec ------------------------------------------------------


class TestFrozenSpec:
    def test_positive_unfrozen_spec(self, tmp_path):
        result = run_lint(tmp_path, {"api/extra.py": """
            from dataclasses import dataclass

            @dataclass
            class RetrySpec:
                attempts: int = 3
        """}, rules=["RL021"])
        assert rule_ids(result) == ["RL021"]
        assert result.active[0].fix is not None

    def test_positive_frozen_false(self, tmp_path):
        result = run_lint(tmp_path, {"api/extra.py": """
            from dataclasses import dataclass

            @dataclass(frozen=False)
            class RetrySpec:
                attempts: int = 3
        """}, rules=["RL021"])
        assert rule_ids(result) == ["RL021"]

    def test_negative_frozen_spec(self, tmp_path):
        result = run_lint(tmp_path, {"api/extra.py": """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class RetrySpec:
                attempts: int = 3
        """}, rules=["RL021"])
        assert result.ok

    def test_negative_non_spec_class(self, tmp_path):
        result = run_lint(tmp_path, {"api/extra.py": """
            from dataclasses import dataclass

            @dataclass
            class MutableScratch:
                count: int = 0
        """}, rules=["RL021"])
        assert result.ok

    def test_fixer_freezes_the_spec(self, tmp_path):
        target = write_tree(tmp_path, {"api/extra.py": """
            from dataclasses import dataclass

            @dataclass
            class RetrySpec:
                attempts: int = 3
        """}) / "api/extra.py"
        linter = Linter(rules=["RL021"])
        result = linter.run([tmp_path])
        assert not result.ok
        applied = apply_fixes(result.active)
        assert sum(applied.values()) == 1
        assert "@dataclass(frozen=True)" in target.read_text()
        assert linter.run([tmp_path]).ok


# -- RL022 no-print ---------------------------------------------------------


class TestNoPrint:
    def test_positive_print_in_library(self, tmp_path):
        result = run_lint(tmp_path, {"streaming/bus.py": """
            def debug(x):
                print(x)
        """}, rules=["RL022"])
        assert rule_ids(result) == ["RL022"]

    def test_negative_print_at_the_edge(self, tmp_path):
        result = run_lint(tmp_path, {"cli.py": """
            def cmd(x):
                print(x)
        """}, rules=["RL022"])
        assert result.ok


# -- RL000 unused-suppression -----------------------------------------------


class TestUnusedSuppression:
    def test_positive_dead_suppression(self, tmp_path):
        result = run_lint(tmp_path, {"clean.py": """
            def fine():
                return 1  # repro-lint: disable=RL022
        """})
        assert rule_ids(result) == ["RL000"]
        assert result.active[0].fix is not None

    def test_positive_unknown_rule(self, tmp_path):
        result = run_lint(tmp_path, {"clean.py": """
            def fine():
                return 1  # repro-lint: disable=RL999
        """})
        assert rule_ids(result) == ["RL000"]
        assert "unknown" in result.active[0].message

    def test_negative_live_suppression(self, tmp_path):
        result = run_lint(tmp_path, {"streaming/analyzer.py": """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=RL010
        """})
        assert result.ok
        assert len(result.suppressed) == 1

    def test_fixer_removes_dead_comment(self, tmp_path):
        target = write_tree(tmp_path, {"clean.py": """
            def fine():
                return 1  # repro-lint: disable=RL022
        """}) / "clean.py"
        result = Linter().run([tmp_path])
        applied = apply_fixes(result.active)
        assert sum(applied.values()) == 1
        assert "repro-lint" not in target.read_text()
        assert Linter().run([tmp_path]).ok

    def test_unselected_rules_are_not_judged(self, tmp_path):
        # Running only RL001 cannot decide whether an RL010
        # suppression is dead.
        result = run_lint(tmp_path, {"clean.py": """
            def fine():
                return 1  # repro-lint: disable=RL010
        """}, rules=["RL000", "RL001"])
        assert result.ok


# -- suppressions -----------------------------------------------------------


class TestSuppression:
    def test_line_suppression(self, tmp_path):
        result = run_lint(tmp_path, {"streaming/analyzer.py": """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=RL010 -- telemetry
        """}, rules=["RL010"])
        assert result.ok
        assert len(result.suppressed) == 1

    def test_disable_all(self, tmp_path):
        result = run_lint(tmp_path, {"streaming/analyzer.py": """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=all
        """}, rules=["RL010"])
        assert result.ok

    def test_other_rule_not_suppressed(self, tmp_path):
        result = run_lint(tmp_path, {"streaming/analyzer.py": """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=RL022
        """}, rules=["RL010"])
        assert rule_ids(result) == ["RL010"]

    def test_comment_in_string_is_not_a_suppression(self, tmp_path):
        result = run_lint(tmp_path, {"streaming/analyzer.py": """
            import time

            def stamp():
                note = "# repro-lint: disable=RL010"
                return time.time(), note
        """}, rules=["RL010"])
        assert rule_ids(result) == ["RL010"]


# -- baseline ---------------------------------------------------------------


class TestBaseline:
    def test_round_trip(self, tmp_path):
        files = {"streaming/analyzer.py": """
            import time

            def stamp():
                return time.time()
        """}
        first = run_lint(tmp_path, files, rules=["RL010"])
        assert not first.ok

        baseline_path = tmp_path / "baseline.json"
        baseline = Baseline.from_findings(first.active, path=baseline_path)
        baseline.save()
        reloaded = Baseline.load(baseline_path)
        assert len(reloaded) == 1

        second = Linter(rules=["RL010"], baseline=reloaded).run([tmp_path])
        assert second.ok
        assert len(second.baselined) == 1
        assert not second.stale_baseline

    def test_baseline_survives_line_moves(self, tmp_path):
        files = {"streaming/analyzer.py": """
            import time

            def stamp():
                return time.time()
        """}
        first = run_lint(tmp_path, files, rules=["RL010"])
        baseline = Baseline.from_findings(first.active)

        moved = {"streaming/analyzer.py": """
            import time

            # an unrelated comment pushing everything down


            def stamp():
                return time.time()
        """}
        second = run_lint(tmp_path, moved, rules=["RL010"],
                          baseline=baseline)
        assert second.ok
        assert len(second.baselined) == 1

    def test_new_finding_is_not_masked(self, tmp_path):
        files = {"streaming/analyzer.py": """
            import time

            def stamp():
                return time.time()
        """}
        first = run_lint(tmp_path, files, rules=["RL010"])
        baseline = Baseline.from_findings(first.active)

        grown = {"streaming/analyzer.py": """
            import random
            import time

            def stamp():
                return time.time()

            def jitter(xs):
                random.shuffle(xs)
        """}
        second = run_lint(tmp_path, grown, rules=["RL010"],
                          baseline=baseline)
        assert not second.ok
        assert len(second.active) == 1
        assert "random.shuffle" in second.active[0].message

    def test_stale_entries_reported(self, tmp_path):
        files = {"streaming/analyzer.py": """
            import time

            def stamp():
                return time.time()
        """}
        first = run_lint(tmp_path, files, rules=["RL010"])
        baseline = Baseline.from_findings(first.active)

        fixed = {"streaming/analyzer.py": """
            def stamp(t):
                return t
        """}
        second = run_lint(tmp_path, fixed, rules=["RL010"],
                          baseline=baseline)
        assert second.ok
        assert len(second.stale_baseline) == 1

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"not": "a baseline"}))
        with pytest.raises(ValueError, match="not a lint baseline"):
            Baseline.load(path)


# -- engine / registry ------------------------------------------------------


class TestEngine:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            Linter(rules=["RL999"])

    def test_parse_error_is_a_finding(self, tmp_path):
        result = run_lint(tmp_path, {"broken.py": "def oops(:\n"})
        assert rule_ids(result) == ["RL-PARSE"]

    def test_custom_rule_registration(self, tmp_path):
        @register_rule
        class NoTodoRule(Rule):
            id = "RL901"
            name = "no-todo-test-rule"
            description = "test-only rule"

            def check_file(self, ctx, config, project):
                for line_no, line in enumerate(ctx.lines, start=1):
                    if "TODO" in line:
                        yield Finding(
                            path=ctx.path, line=line_no, col=0,
                            rule=self.id, message="TODO found",
                            symbol=ctx.symbol_at(line_no),
                        )

        try:
            result = run_lint(
                tmp_path, {"todo.py": "x = 1  # TODO later\n"},
                rules=["RL901"])
            assert rule_ids(result) == ["RL901"]
        finally:
            RULES.unregister("RL901")

    def test_rule_listing_names_every_builtin(self):
        listing = render_rule_list()
        for rule_id in ("RL000", "RL001", "RL002", "RL003", "RL010",
                        "RL011", "RL020", "RL021", "RL022"):
            assert rule_id in listing

    def test_json_report_shape(self, tmp_path):
        result = run_lint(tmp_path, {"streaming/analyzer.py": """
            import time

            def stamp():
                return time.time()
        """}, rules=["RL010"])
        payload = json.loads(render_json(result))
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["active"][0]["rule"] == "RL010"
        assert payload["active"][0]["fingerprint"]

    def test_config_is_policy(self, tmp_path):
        # Widening the analysis path is a config change, not a rule
        # change.
        config = LintConfig(analysis_paths=("widget/*.py",))
        result = run_lint(tmp_path, {"widget/logic.py": """
            import time

            def stamp():
                return time.time()
        """}, rules=["RL010"], config=config)
        assert not result.ok


# -- CLI --------------------------------------------------------------------


class TestCli:
    def seeded_violation(self, tmp_path) -> Path:
        """The deliberate-regression fixture the CI gate must catch."""
        return write_tree(tmp_path, {"streaming/analyzer.py": """
            import time

            def stamp():
                return time.time()
        """})

    def test_cli_fails_on_seeded_violation(self, tmp_path, capsys):
        tree = self.seeded_violation(tmp_path)
        code = main(["lint", str(tree),
                     "--baseline", str(tmp_path / "baseline.json")])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL010" in out
        assert "FAIL" in out

    def test_cli_clean_tree_exits_zero(self, tmp_path, capsys):
        tree = write_tree(tmp_path, {"fine.py": "x = 1\n"})
        code = main(["lint", str(tree),
                     "--baseline", str(tmp_path / "baseline.json")])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_json_report_artifact(self, tmp_path, capsys):
        tree = self.seeded_violation(tmp_path)
        report = tmp_path / "lint-report.json"
        code = main(["lint", str(tree), "--format", "json",
                     "--output", str(report),
                     "--baseline", str(tmp_path / "baseline.json")])
        assert code == 1
        payload = json.loads(report.read_text())
        assert payload["active"][0]["rule"] == "RL010"

    def test_cli_write_and_honor_baseline(self, tmp_path, capsys):
        tree = self.seeded_violation(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(tree), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert main(["lint", str(tree),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_cli_rule_selection(self, tmp_path, capsys):
        tree = self.seeded_violation(tmp_path)
        code = main(["lint", str(tree), "--rules", "RL020",
                     "--baseline", str(tmp_path / "baseline.json")])
        assert code == 0  # RL010 not selected: the violation is unseen
        code = main(["lint", str(tree), "--rules", "bogus",
                     "--baseline", str(tmp_path / "baseline.json")])
        assert code == 2
        capsys.readouterr()

    def test_cli_fix(self, tmp_path, capsys):
        tree = write_tree(tmp_path, {"api/extra.py": """
            from dataclasses import dataclass

            @dataclass
            class RetrySpec:
                attempts: int = 3
        """})
        code = main(["lint", str(tree), "--fix",
                     "--baseline", str(tmp_path / "baseline.json")])
        assert code == 0
        assert "applied 1 fix" in capsys.readouterr().out
        assert "@dataclass(frozen=True)" in \
            (tree / "api/extra.py").read_text()


# -- the live tree ----------------------------------------------------------


class TestLiveTree:
    def test_repro_lint_runs_clean_on_the_live_tree(self):
        """The acceptance meta-test: the shipped tree has zero debt.

        The committed baseline is *empty* -- RL001/RL010/RL020 hold
        everywhere, not as grandfathered legacy findings.
        """
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert len(baseline) == 0
        result = lint_paths([LIVE_TREE], baseline=baseline)
        assert result.ok, "\n" + render_text(result)
        assert not result.stale_baseline
        assert result.files_checked > 100

    def test_live_guarded_by_annotations_exist(self):
        """The convention is actually in use, not just supported."""
        annotated = [
            path for path in LIVE_TREE.rglob("*.py")
            if "# guarded-by:" in path.read_text(encoding="utf-8")
        ]
        names = {path.name for path in annotated}
        assert {"service.py", "writer.py", "query.py"} <= names

    def test_every_rule_has_fixture_coverage(self):
        """Meta: each registered builtin appears in this test file."""
        source = Path(__file__).read_text(encoding="utf-8")
        for cls in all_rules():
            assert f'"{cls.id}"' in source, cls.id
