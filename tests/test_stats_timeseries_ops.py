"""Unit and property tests for repro.stats.timeseries_ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats.timeseries_ops import (
    first_difference,
    has_constant_trend,
    lag_matrix,
    variance_filter_mask,
    znormalize,
)

finite_series = arrays(
    np.float64, st.integers(min_value=2, max_value=200),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestZnormalize:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        z = znormalize(rng.normal(5.0, 3.0, size=500))
        assert abs(z.mean()) < 1e-12
        assert abs(z.std() - 1.0) < 1e-12

    def test_constant_series_maps_to_zeros(self):
        z = znormalize(np.full(10, 42.0))
        assert np.all(z == 0.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            znormalize(np.zeros((3, 3)))

    @given(finite_series)
    @settings(max_examples=50, deadline=None)
    def test_property_output_standardized_or_zero(self, series):
        z = znormalize(series)
        assert z.shape == series.shape
        # Relative criterion, matching the implementation: large equal
        # values have a tiny nonzero fp std that must map to zeros.
        if series.std() > 1e-12 * max(1.0, abs(series.mean())):
            assert abs(z.mean()) < 1e-6
            assert abs(z.std() - 1.0) < 1e-6
        else:
            assert np.all(z == 0.0)

    @given(finite_series,
           st.floats(0.1, 100.0),
           st.floats(-50.0, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_property_affine_invariance(self, series, scale, shift):
        """z-normalization is invariant to positive affine transforms."""
        if series.std() <= 1e-6 or series.std() >= 1e5:
            return
        z1 = znormalize(series)
        z2 = znormalize(series * scale + shift)
        np.testing.assert_allclose(z1, z2, atol=1e-5)


class TestFirstDifference:
    def test_values(self):
        out = first_difference(np.array([1.0, 4.0, 9.0, 16.0]))
        np.testing.assert_array_equal(out, [3.0, 5.0, 7.0])

    def test_shortens_by_one(self):
        assert first_difference(np.arange(10.0)).size == 9

    def test_too_short(self):
        with pytest.raises(ValueError):
            first_difference(np.array([1.0]))

    def test_removes_linear_trend(self):
        diffed = first_difference(3.0 * np.arange(100.0) + 2.0)
        assert np.allclose(diffed, 3.0)


class TestVarianceFilter:
    def test_flags_constant_rows(self):
        matrix = np.vstack([
            np.zeros(50),
            np.sin(np.linspace(0, 10, 50)),
            np.full(50, 7.0),
        ])
        mask = variance_filter_mask(matrix)
        np.testing.assert_array_equal(mask, [False, True, False])

    def test_threshold_boundary(self):
        # Variance exactly at the threshold is filtered (paper: var <= 0.002).
        row = np.array([0.0, 2 * np.sqrt(0.002)] * 50)
        tiny = row - row.mean()
        assert abs(tiny.var() - 0.002) < 1e-12
        assert not variance_filter_mask(tiny[None, :])[0]

    def test_custom_threshold(self):
        row = np.array([0.0, 1.0] * 20)
        assert variance_filter_mask(row[None, :], threshold=0.1)[0]
        assert not variance_filter_mask(row[None, :], threshold=0.5)[0]


class TestLagMatrix:
    def test_shape_and_content(self):
        series = np.arange(6.0)  # 0..5
        lm = lag_matrix(series, 2)
        assert lm.shape == (4, 2)
        # Row i corresponds to target series[i+2]; col 0 is lag 1.
        np.testing.assert_array_equal(lm[:, 0], [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(lm[:, 1], [0.0, 1.0, 2.0, 3.0])

    def test_alignment_with_target(self):
        """y[t] = 2*y[t-1] is exactly recoverable from the lag matrix."""
        series = 2.0 ** np.arange(10)
        lm = lag_matrix(series, 1)
        target = series[1:]
        np.testing.assert_allclose(target, 2.0 * lm[:, 0])

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            lag_matrix(np.arange(3.0), 3)

    def test_rejects_zero_lags(self):
        with pytest.raises(ValueError):
            lag_matrix(np.arange(10.0), 0)


class TestConstantTrend:
    def test_constant(self):
        assert has_constant_trend(np.full(10, 3.3))

    def test_not_constant(self):
        assert not has_constant_trend(np.array([1.0, 1.0, 1.001]))

    def test_empty_is_constant(self):
        assert has_constant_trend(np.array([]))
