"""Tests for the parallel subsystem: shard executors (serial / thread /
process determinism, pool-size-1 fallback), the concurrent-ingest
writer (ordering, error relay, crash safety with the journal), and
write-ahead journal rotation at checkpoint epochs."""

import time

import numpy as np
import pytest

from repro.causality.depgraph import edge_jaccard
from repro.clustering.reduction import reduce_frame
from repro.core import StreamingConfig
from repro.metrics.timeseries import MetricFrame, MetricKey, TimeSeries
from repro.parallel import (
    BatchingWriter,
    ShardExecutor,
    WriterError,
    default_workers,
    make_executor,
)
from repro.persistence import (
    CheckpointPolicy,
    IngestJournal,
    SqliteBackend,
    journal_record_count,
    journal_segments,
    replay_journal,
    restore_engine,
)
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.streaming import (
    IngestionBus,
    SimulationStreamDriver,
    StreamingSieve,
    WindowAnalyzer,
)
from repro.tracing.callgraph import CallGraph
from repro.workload import constant_rate


def _double(x):
    """Module-level so process pools can pickle it."""
    return 2 * x


def _spec(name, shift=False, **kwargs):
    custom = ()
    if shift:
        custom = (("mode_gauge",
                   lambda comp, now: 500.0 if now > 45.0
                   else comp.total_request_rate() * 1.2),)
    defaults = dict(
        kind="generic",
        endpoints=(EndpointSpec("op", service_time=0.02),),
        concurrency=16,
        custom_metrics=custom,
    )
    defaults.update(kwargs)
    return ComponentSpec(name=name, **defaults)


def _chain_app(shift_backend=False):
    return Application("demo", [
        _spec("front", calls=(CallSpec("mid", delay=0.4),)),
        _spec("mid", calls=(CallSpec("back", delay=0.4),)),
        _spec("back", shift=shift_backend),
    ])


def _synthetic_frame(components=4, metrics=5, points=120, seed=7,
                     shift_component=None):
    """Multi-component frame of noisy, load-shaped series."""
    rng = np.random.default_rng(seed)
    frame = MetricFrame()
    t = 0.5 * np.arange(points)
    for c in range(components):
        name = f"comp{c}"
        for m in range(metrics):
            base = (1.0 + m) * np.sin(t / (2.5 + c + 0.7 * m))
            values = base + rng.normal(0.0, 0.25, points)
            if name == shift_component:
                values = values + 50.0
            frame.add(TimeSeries(MetricKey(name, f"metric_{m}"),
                                 t, values))
    return frame


def _chain_graph(components=4):
    graph = CallGraph()
    for c in range(components - 1):
        graph.record_call(f"comp{c}", f"comp{c + 1}", 5)
    return graph


def _clustering_fingerprint(clusterings):
    return {
        component: (clustering.labels(),
                    clustering.representatives,
                    round(clustering.silhouette, 12))
        for component, clustering in clusterings.items()
    }


def _assert_same_analysis(left, right):
    assert left.reclustered == right.reclustered
    assert left.reused == right.reused
    assert left.recluster_reasons == right.recluster_reasons
    assert _clustering_fingerprint(left.clusterings) \
        == _clustering_fingerprint(right.clusterings)
    assert edge_jaccard(left.dependency_graph, right.dependency_graph,
                        level="metric") == 1.0


# ---------------------------------------------------------------------------
# Executor strategies


class TestMakeExecutor:
    def test_kinds_and_defaults(self):
        serial = make_executor("serial")
        assert serial.kind == "serial" and serial.workers == 1
        thread = make_executor("thread", 2)
        assert thread.kind == "thread" and thread.workers == 2
        process = make_executor("process", 2)
        assert process.kind == "process" and process.workers == 2
        for executor in (thread, process):
            executor.close()
        assert default_workers() >= 1

    def test_pool_size_one_falls_back_to_serial(self):
        # One worker cannot overlap anything; a pool would only add
        # dispatch overhead, so the factory degrades gracefully.
        for kind in ("thread", "process"):
            executor = make_executor(kind, 1)
            assert type(executor) is ShardExecutor
            assert executor.kind == "serial"

    def test_rejects_unknown_kind_and_bad_workers(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu")
        with pytest.raises(ValueError, match="workers"):
            make_executor("thread", -2)

    def test_map_preserves_payload_order(self):
        payloads = list(range(17))
        expected = [_double(p) for p in payloads]
        for kind in ("serial", "thread", "process"):
            with make_executor(kind, 2) as executor:
                assert executor.map(_double, payloads) == expected
                assert executor.tasks_dispatched == len(payloads)

    def test_single_payload_runs_inline(self):
        with make_executor("process", 2) as executor:
            assert executor.map(_double, [21]) == [42]
            assert executor._pool is None  # never spun up

    def test_close_is_idempotent(self):
        executor = make_executor("thread", 2)
        executor.map(_double, [1, 2, 3])
        executor.close()
        executor.close()


# ---------------------------------------------------------------------------
# Determinism: serial == thread == process


class TestExecutorDeterminism:
    @pytest.fixture(scope="class")
    def frames(self):
        first = _synthetic_frame()
        second = _synthetic_frame(shift_component="comp1")
        return first, second

    def _analyze_two_windows(self, executor, frames):
        first, second = frames
        analyzer = WindowAnalyzer(config=StreamingConfig(), seed=5,
                                  executor=executor)
        graph = _chain_graph()
        initial = analyzer.analyze(first, graph, 0.0, 60.0, index=0)
        drifted = analyzer.analyze(second, graph, 60.0, 120.0, index=1)
        return initial, drifted

    def test_thread_and_process_match_serial(self, frames):
        serial = self._analyze_two_windows(ShardExecutor(), frames)
        for kind in ("thread", "process"):
            with make_executor(kind, 2) as executor:
                parallel = self._analyze_two_windows(executor, frames)
            for left, right in zip(parallel, serial):
                _assert_same_analysis(left, right)
        # The shifted component escalated through the drift path on
        # every strategy (exercises parallel shape checks).
        assert serial[1].recluster_reasons.get("comp1") == "drift"

    def test_streamed_windows_match_serial(self):
        def run(executor_kind):
            config = StreamingConfig(
                window=20.0, hop=10.0, retention=120.0,
                executor=executor_kind, executor_workers=2,
            )
            driver = SimulationStreamDriver(
                _chain_app(), constant_rate(40.0), config=config,
                seed=3, record_frame=False,
            )
            try:
                return driver.run(50.0)
            finally:
                driver.close()

        reference = run("serial")
        assert reference
        produced = run("process")
        assert len(produced) == len(reference)
        for left, right in zip(produced, reference):
            assert (left.index, left.start, left.end) \
                == (right.index, right.start, right.end)
            _assert_same_analysis(left, right)

    def test_reduce_frame_executor_matches_inline(self, frames):
        first, _second = frames
        inline = reduce_frame(first, seed=9)
        with make_executor("process", 2) as executor:
            pooled = reduce_frame(first, seed=9, executor=executor)
        assert _clustering_fingerprint(inline) \
            == _clustering_fingerprint(pooled)

    def test_engine_builds_executor_from_config(self):
        config = StreamingConfig(executor="process", executor_workers=1)
        engine = StreamingSieve(config=config, seed=1)
        # pool-size-1 fallback reaches the engine wiring too.
        assert engine.executor.kind == "serial"
        engine.close()
        config = StreamingConfig(executor="thread", executor_workers=3)
        engine = StreamingSieve(config=config, seed=1)
        assert engine.executor.kind == "thread"
        assert engine.analyzer.executor is engine.executor
        assert engine.summary()["executor"] == "thread"
        engine.close()


# ---------------------------------------------------------------------------
# The concurrent-ingest writer


class _SlowBackend(SqliteBackend):
    """Sqlite with an artificial per-write stall (crash-window tests)."""

    def __init__(self, path, delay=0.002):
        super().__init__(path)
        self.delay = delay

    def write(self, component, metric, times, values):
        time.sleep(self.delay)
        return super().write(component, metric, times, values)


class _ExplodingBackend(SqliteBackend):
    def write(self, component, metric, times, values):
        raise OSError("disk on fire")


def _hard_kill(writer):
    """Abort the writer and drop its sqlite locks, as a dead process
    would: queued batches vanish, uncommitted work rolls back."""
    writer.abort()
    conn = writer.backend._conn
    conn.rollback()
    conn.close()


class TestBatchingWriter:
    def test_read_your_writes(self, tmp_path):
        writer = BatchingWriter(SqliteBackend(tmp_path / "w.db"))
        writer.write("web", "cpu", [1.0, 2.0], [0.5, 0.6])
        writer.write("web", "cpu", [3.0], [0.7])
        assert writer.query("web", "cpu").values.tolist() \
            == [0.5, 0.6, 0.7]
        assert writer.sample_count() == 3
        assert writer.newest_time("web", "cpu") == 3.0
        assert writer.keys() == [MetricKey("web", "cpu")]
        writer.set_metadata({"seed": 4})
        assert writer.metadata() == {"seed": 4}
        assert writer.stats.batches_written == 2
        writer.close()

    def test_speaks_the_bus_subscriber_protocol(self, tmp_path):
        writer = BatchingWriter(SqliteBackend(tmp_path / "w.db"))
        bus = IngestionBus()
        bus.subscribe(writer)
        bus.publish("api", 1.0, {"rps": 10.0})
        bus.publish("api", 2.0, {"rps": 12.0})
        bus.flush()
        assert writer.query("api", "rps").times.tolist() == [1.0, 2.0]
        writer.close()

    def test_relays_backend_errors_to_the_caller(self, tmp_path):
        writer = BatchingWriter(_ExplodingBackend(tmp_path / "w.db"))
        writer.write("web", "cpu", [1.0], [1.0])
        with pytest.raises(WriterError, match="disk on fire"):
            writer.drain()
        with pytest.raises(WriterError):
            writer.write("web", "cpu", [2.0], [2.0])

    def test_write_after_close_raises(self, tmp_path):
        writer = BatchingWriter(SqliteBackend(tmp_path / "w.db"))
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            writer.write("web", "cpu", [1.0], [1.0])

    def test_rejects_bad_queue_bound(self, tmp_path):
        with pytest.raises(ValueError, match="max_batches"):
            BatchingWriter(SqliteBackend(tmp_path / "w.db"),
                           max_batches=0)

    def test_abort_drops_queued_batches(self, tmp_path):
        writer = BatchingWriter(
            _SlowBackend(tmp_path / "w.db", delay=0.005),
            max_batches=512,
        )
        for i in range(200):
            writer.write("web", "cpu", [float(i)], [float(i)])
        _hard_kill(writer)  # the "kill -9"
        # The queue was nowhere near drained when the crash hit.
        survivor = SqliteBackend(tmp_path / "w.db")
        assert survivor.sample_count() < 200
        survivor.close()


class TestWriterCrashSafety:
    def test_journal_repairs_backend_after_writer_crash(self, tmp_path):
        """Kill mid-flush: queued writes die, journal replay heals."""
        journal = IngestJournal(tmp_path / "ingest.journal")
        writer = BatchingWriter(
            _SlowBackend(tmp_path / "points.db", delay=0.005),
            max_batches=512,
        )
        bus = IngestionBus()
        bus.attach_journal(journal)
        bus.subscribe(writer)
        for i in range(150):
            bus.publish("web", float(i), {"cpu": float(i)})
            if i % 10 == 9:
                bus.flush()  # journaled ahead of writer delivery
        bus.flush()
        journal.commit()
        # Crash between journal append and durable delivery.
        _hard_kill(writer)
        del bus

        crashed = SqliteBackend(tmp_path / "points.db")
        lost = 150 - crashed.sample_count()
        assert lost > 0  # the crash genuinely lost queued writes

        # Restore: journal replay rebuilds the rings and heals the
        # backend's missing tail through newest_time suffix writes.
        config = StreamingConfig(window=20.0, hop=10.0, retention=1e6)
        engine = restore_engine(
            _empty_state(config), config,
            journal_path=tmp_path / "ingest.journal",
            store_backend=crashed,
        )
        assert engine.windows.total_points() == 150
        assert crashed.sample_count() == 150
        assert crashed.query("web", "cpu").times.tolist() \
            == [float(i) for i in range(150)]
        crashed.close()

    def test_crash_restart_determinism_with_async_writer(
            self, tmp_path):
        """The PR-2 acceptance scenario, now with the writer thread
        and checkpoint-epoch journal rotation in the loop."""
        config = StreamingConfig(window=20.0, hop=10.0, retention=60.0)

        reference = SimulationStreamDriver(
            _chain_app(), constant_rate(40.0), config=config, seed=3,
            record_frame=False,
        )
        reference_windows = reference.run(90.0)

        journal = IngestJournal(tmp_path / "ingest.journal")
        writer = BatchingWriter(SqliteBackend(tmp_path / "points.db"))
        engine = StreamingSieve(config=config, seed=3, journal=journal,
                                application="demo", workload="stream",
                                store_backend=writer)
        doomed = SimulationStreamDriver(
            _chain_app(), constant_rate(40.0), config=config, seed=3,
            record_frame=False, engine=engine,
        )
        policy = CheckpointPolicy(engine, tmp_path / "state.ckpt",
                                  every=1)
        engine.subscribe(policy)
        early = doomed.run(50.0)
        journal.commit()
        _hard_kill(writer)
        assert journal.rotations >= 1  # epochs sealed the journal
        del doomed

        resumed_backend = SqliteBackend(tmp_path / "points.db")
        restored = restore_engine(
            tmp_path / "state.ckpt", config,
            journal_path=tmp_path / "ingest.journal",
            store_backend=resumed_backend,
        )
        resurrected = SimulationStreamDriver(
            _chain_app(), constant_rate(40.0), config=config, seed=3,
            record_frame=False, engine=restored,
        )
        late = resurrected.resume_run(40.0)
        produced = early + late
        assert len(produced) == len(reference_windows)
        for left, right in zip(produced, reference_windows):
            assert (left.index, left.start, left.end) \
                == (right.index, right.start, right.end)
            _assert_same_analysis(left, right)
        resumed_backend.close()


def _empty_state(config):
    """Checkpoint state of a fresh engine (restore plumbing helper)."""
    from repro.persistence import checkpoint_state

    return checkpoint_state(StreamingSieve(config=config, seed=1))


# ---------------------------------------------------------------------------
# Journal rotation


class TestJournalRotation:
    def _journal_with_epochs(self, path, epochs=3, points=10):
        journal = IngestJournal(path)
        for epoch in range(epochs):
            t0 = epoch * 10.0
            times = [t0 + i for i in range(points)]
            journal.append_batch("web", "cpu", times, times)
            if epoch < epochs - 1:
                journal.rotate()
        journal.commit()
        return journal

    def test_rotate_seals_segments_and_replay_spans_them(
            self, tmp_path):
        path = tmp_path / "ingest.journal"
        journal = self._journal_with_epochs(path)
        assert journal.rotations == 2
        assert len(journal_segments(path)) == 2
        assert journal_record_count(path) == 3
        times = [t for _c, _m, t, _v in replay_journal(path)]
        flattened = np.concatenate(times)
        assert np.all(np.diff(flattened) >= 0)  # global write order
        assert flattened[0] == 0.0 and flattened[-1] == 29.0
        journal.close()

    def test_rotate_without_records_creates_no_segment(self, tmp_path):
        journal = IngestJournal(tmp_path / "ingest.journal")
        assert journal.rotate() is None
        journal.append_batch("web", "cpu", [1.0], [1.0])
        assert journal.rotate() is not None
        assert journal.rotate() is None  # nothing new since the seal
        journal.close()

    def test_retire_drops_only_fully_stale_segments(self, tmp_path):
        path = tmp_path / "ingest.journal"
        journal = self._journal_with_epochs(path)
        # Segment 1 covers t<=9, segment 2 covers t<=19.  Retirement
        # is strict: a sample exactly at the cutoff is still retained
        # by ring eviction, so its segment must survive.
        assert journal.retire(9.0) == 0
        assert journal.retire(9.5) == 1
        assert len(journal_segments(path)) == 1
        assert journal.retire(9.5) == 0
        assert journal_record_count(path) == 2
        assert journal.retire(25.0) == 1
        assert journal_record_count(path) == 1  # active file survives
        journal.close()

    def test_retire_scans_segments_of_a_dead_run(self, tmp_path):
        path = tmp_path / "ingest.journal"
        self._journal_with_epochs(path).close()
        # A resumed journal has no in-memory newest-time cache; retire
        # must recover per-segment horizons from the files themselves.
        resumed = IngestJournal(path)
        assert resumed.retire(19.5) == 2
        assert journal_segments(path) == []
        resumed.close()

    def test_truncate_removes_stale_segments(self, tmp_path):
        path = tmp_path / "ingest.journal"
        self._journal_with_epochs(path).close()
        fresh = IngestJournal(path, truncate=True)
        assert journal_segments(path) == []
        assert journal_record_count(path) == 0
        fresh.append_batch("web", "cpu", [1.0], [1.0])
        fresh.rotate()
        # Sequence numbering restarts cleanly after a truncate.
        assert [s.name for s in journal_segments(path)] \
            == ["ingest.journal.000001"]
        fresh.close()

    def test_sequence_continues_across_reopen(self, tmp_path):
        path = tmp_path / "ingest.journal"
        self._journal_with_epochs(path).close()
        resumed = IngestJournal(path)
        resumed.append_batch("web", "cpu", [40.0], [1.0])
        resumed.rotate()
        assert [s.name for s in journal_segments(path)][-1] \
            == "ingest.journal.000003"
        resumed.close()

    def test_torn_tail_is_forgiven_only_on_the_active_file(
            self, tmp_path):
        path = tmp_path / "ingest.journal"
        journal = self._journal_with_epochs(path)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"c": "web", "m": "cpu", "t": [99')
        assert journal_record_count(path) == 3  # torn tail skipped
        segment = journal_segments(path)[0]
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        with pytest.raises(ValueError, match="corrupt journal record"):
            list(replay_journal(path))

    def test_checkpoint_policy_rotates_and_retires(self, tmp_path):
        config = StreamingConfig(window=20.0, hop=10.0, retention=30.0,
                                 checkpoint_every_windows=1)
        journal = IngestJournal(tmp_path / "ingest.journal")
        engine = StreamingSieve(config=config, seed=3, journal=journal,
                                application="demo", workload="stream")
        driver = SimulationStreamDriver(
            _chain_app(), constant_rate(40.0), config=config, seed=3,
            record_frame=False, engine=engine,
        )
        policy = CheckpointPolicy(engine, tmp_path / "state.ckpt")
        engine.subscribe(policy)
        windows = driver.run(80.0)
        assert policy.checkpoints_written == len(windows)
        assert journal.rotations == len(windows)
        # Short retention: early segments became redundant and were
        # retired, so the journal footprint is bounded.
        assert journal.segments_retired > 0
        remaining = journal_segments(tmp_path / "ingest.journal")
        assert len(remaining) < journal.rotations
        driver.close()

    def test_checkpoint_retire_respects_stale_series(self, tmp_path):
        """A quiet series' ring keeps old samples (eviction is
        relative to its *own* newest sample), so retirement anchors at
        the stalest series -- the global clock must not retire
        segments replay still needs."""
        config = StreamingConfig(window=20.0, hop=10.0, retention=30.0)
        journal = IngestJournal(tmp_path / "ingest.journal")
        engine = StreamingSieve(config=config, seed=1, journal=journal)
        policy = CheckpointPolicy(engine, tmp_path / "state.ckpt",
                                  every=1)
        # Epoch 1: a sparse series that then goes quiet at t=25.
        engine.bus.publish_points("quiet", "gauge", [20.0, 25.0],
                                  [1.0, 2.0])
        engine.bus.flush()
        journal.rotate()
        # Epoch 2: a busy series pushes the global clock far past the
        # naive cutoff (200 - 30 = 170 >> 25).
        times = [float(t) for t in range(100, 201)]
        engine.bus.publish_points("busy", "cpu", times, times)
        engine.bus.flush()
        engine.last_offer = 200.0
        policy.on_window(None)
        assert policy.checkpoints_written == 1
        # The quiet epoch survives: its ring still retains t=[20, 25].
        assert journal.segments_retired == 0
        replayed = {(c, m): t.tolist() for c, m, t, _v
                    in replay_journal(tmp_path / "ingest.journal")}
        assert replayed[("quiet", "gauge")] == [20.0, 25.0]
        engine.close()

    def test_rotation_can_be_disabled(self, tmp_path):
        config = StreamingConfig(window=20.0, hop=10.0,
                                 retention=300.0,
                                 journal_rotate_on_checkpoint=False)
        journal = IngestJournal(tmp_path / "ingest.journal")
        engine = StreamingSieve(config=config, seed=3, journal=journal,
                                application="demo", workload="stream")
        driver = SimulationStreamDriver(
            _chain_app(), constant_rate(40.0), config=config, seed=3,
            record_frame=False, engine=engine,
        )
        policy = CheckpointPolicy(engine, tmp_path / "state.ckpt",
                                  every=1)
        engine.subscribe(policy)
        driver.run(40.0)
        assert journal.rotations == 0
        assert journal_segments(tmp_path / "ingest.journal") == []
        driver.close()
