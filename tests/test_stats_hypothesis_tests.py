"""Tests for the F-test and the Augmented Dickey-Fuller test."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats.hypothesis_tests import (
    adf_test,
    f_test_nested,
    is_stationary,
    mackinnon_critical_values,
    mackinnon_pvalue,
)


class TestFTest:
    def test_no_improvement_accepts_null(self):
        result = f_test_nested(10.0, 10.0, 2, 40)
        assert result.f_statistic == 0.0
        assert result.p_value == pytest.approx(1.0)
        assert not result.rejects_null()

    def test_large_improvement_rejects(self):
        result = f_test_nested(100.0, 10.0, 1, 50)
        assert result.rejects_null(0.01)

    def test_f_statistic_formula(self):
        result = f_test_nested(20.0, 10.0, 2, 40)
        expected = ((20.0 - 10.0) / 2) / (10.0 / 40)
        assert result.f_statistic == pytest.approx(expected)
        assert result.p_value == pytest.approx(
            scipy_stats.f.sf(expected, 2, 40)
        )

    def test_perfect_unrestricted_fit(self):
        assert f_test_nested(5.0, 0.0, 1, 10).p_value == 0.0
        assert f_test_nested(0.0, 0.0, 1, 10).p_value == 1.0

    def test_negative_improvement_clamped(self):
        # RSS can be marginally larger numerically; never a negative F.
        result = f_test_nested(9.999, 10.0, 1, 30)
        assert result.f_statistic == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            f_test_nested(1.0, 1.0, 0, 10)
        with pytest.raises(ValueError):
            f_test_nested(1.0, 1.0, 1, 0)


class TestMacKinnon:
    def test_critical_values_ordering(self):
        cvs = mackinnon_critical_values(200)
        assert cvs[0.01] < cvs[0.05] < cvs[0.10] < 0

    def test_asymptotic_five_percent(self):
        # Large-sample 5% critical value is about -2.86.
        assert mackinnon_critical_values(10_000)[0.05] == pytest.approx(
            -2.86, abs=0.01
        )

    def test_pvalue_monotone(self):
        taus = np.linspace(-5.0, 1.5, 40)
        ps = [mackinnon_pvalue(t) for t in taus]
        assert all(a <= b + 1e-12 for a, b in zip(ps, ps[1:]))

    def test_pvalue_at_critical_values(self):
        # p-value at the asymptotic 5% critical value is about 0.05.
        assert mackinnon_pvalue(-2.86) == pytest.approx(0.05, abs=0.005)
        assert mackinnon_pvalue(-3.43) == pytest.approx(0.01, abs=0.003)

    def test_pvalue_saturates(self):
        assert mackinnon_pvalue(-50.0) == pytest.approx(0.0005)
        assert mackinnon_pvalue(50.0) == pytest.approx(0.999)


class TestADF:
    def test_random_walk_is_nonstationary(self):
        rng = np.random.default_rng(1)
        walk = np.cumsum(rng.normal(size=400))
        result = adf_test(walk)
        assert result.p_value > 0.05
        assert not result.is_stationary()

    def test_white_noise_is_stationary(self):
        rng = np.random.default_rng(2)
        noise = rng.normal(size=400)
        assert adf_test(noise, max_lags=2).is_stationary()

    def test_ar1_is_stationary(self):
        rng = np.random.default_rng(3)
        x = np.zeros(500)
        for i in range(1, 500):
            x[i] = 0.5 * x[i - 1] + rng.normal()
        assert adf_test(x, max_lags=4).is_stationary()

    def test_monotone_counter_is_nonstationary(self):
        """CPU/network byte counters -- the paper's canonical case."""
        rng = np.random.default_rng(4)
        counter = np.cumsum(np.abs(rng.normal(5.0, 1.0, size=300)))
        assert not adf_test(counter).is_stationary()

    def test_constant_series_reported_stationary(self):
        result = adf_test(np.full(50, 3.0))
        assert result.is_stationary()
        assert result.p_value == 0.0

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            adf_test(np.arange(5.0))

    def test_is_stationary_helper(self):
        rng = np.random.default_rng(5)
        assert is_stationary(rng.normal(size=300), max_lags=2)
        assert not is_stationary(np.cumsum(rng.normal(size=300)))

    def test_differencing_makes_walk_stationary(self):
        rng = np.random.default_rng(6)
        walk = np.cumsum(rng.normal(size=400))
        assert adf_test(np.diff(walk), max_lags=2).is_stationary()
