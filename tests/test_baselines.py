"""Tests for the PCA / random-projection baselines (paper §3.2 claims)."""

import numpy as np
import pytest

from repro.clustering.baselines import (
    pca_reduce,
    random_projection_reduce,
    reduction_stability,
)


def _correlated_metrics(seed=0, n_groups=3, per_group=5, length=200):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 20, length)
    rows = []
    for g in range(n_groups):
        base = np.sin((0.5 + g) * t)
        for _ in range(per_group):
            rows.append(base * rng.uniform(0.5, 2.0)
                        + rng.normal(0, 0.1, length))
    return np.vstack(rows)


class TestPCA:
    def test_reconstructs_low_rank_structure(self):
        data = _correlated_metrics()
        out = pca_reduce(data, 3)
        # Three latent signals: 3 components capture nearly everything.
        assert out.explained_variance_ratio.sum() > 0.95

    def test_orthonormal_axes(self):
        out = pca_reduce(_correlated_metrics(), 4)
        gram = out.components @ out.components.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-9)

    def test_transformed_shape(self):
        data = _correlated_metrics()
        out = pca_reduce(data, 2)
        assert out.transformed.shape == (2, data.shape[1])

    def test_components_not_interpretable(self):
        """The paper's complaint: loadings spread over many metrics."""
        out = pca_reduce(_correlated_metrics(), 3)
        # A representative metric would score 1.0.
        assert out.interpretability() < 0.5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            pca_reduce(_correlated_metrics(), 0)
        with pytest.raises(ValueError):
            pca_reduce(_correlated_metrics(), 999)


class TestRandomProjection:
    def test_shapes(self):
        data = _correlated_metrics()
        out = random_projection_reduce(data, 4, seed=1)
        assert out.projection.shape == (4, data.shape[0])
        assert out.transformed.shape == (4, data.shape[1])

    def test_seed_changes_projection(self):
        data = _correlated_metrics()
        a = random_projection_reduce(data, 4, seed=1)
        b = random_projection_reduce(data, 4, seed=2)
        assert not np.allclose(a.projection, b.projection)

    def test_approximately_preserves_distances(self):
        """The JL property that makes projections usable at all."""
        rng = np.random.default_rng(3)
        data = rng.normal(size=(40, 300))
        out = random_projection_reduce(data.T, 40, seed=0)
        # Project the 300-dim time axis down to 40 and compare pairwise
        # distances of the 40 series.
        original = np.linalg.norm(
            data[:, None, :] - data[None, :, :], axis=2)
        projected_rows = (out.projection @ data.T).T
        reduced = np.linalg.norm(
            projected_rows[:, None, :] - projected_rows[None, :, :],
            axis=2)
        mask = original > 0
        ratios = reduced[mask] / original[mask]
        assert 0.6 < ratios.mean() < 1.4

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            random_projection_reduce(_correlated_metrics(), 0)


class TestStability:
    def test_random_projection_unstable_across_runs(self):
        """The paper's §3.2 claim, measured."""
        data = _correlated_metrics()

        def project(matrix, k, seed):
            return random_projection_reduce(matrix, k, seed).transformed

        def principal(matrix, k, seed):
            return pca_reduce(matrix, k).transformed  # seed ignored

        rp_stability = reduction_stability(project, data, 3)
        pca_stability = reduction_stability(principal, data, 3)
        assert pca_stability == pytest.approx(1.0, abs=1e-9)
        assert rp_stability < pca_stability

    def test_single_seed_trivially_stable(self):
        data = _correlated_metrics()

        def project(matrix, k, seed):
            return random_projection_reduce(matrix, k, seed).transformed

        assert reduction_stability(project, data, 3, seeds=(0,)) == 1.0
