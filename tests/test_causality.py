"""Tests for Granger causality and dependency-graph extraction."""

import numpy as np
import pytest

from repro.causality import (
    DependencyGraph,
    MetricRelation,
    extract_dependencies,
    granger_test,
)
from repro.causality.granger import make_stationary
from repro.causality.pairwise import naive_pair_count
from repro.clustering import reduce_frame
from repro.metrics.timeseries import MetricFrame
from repro.tracing import CallGraph


def _var_pair(n=400, lag=2, coupling=0.8, seed=0):
    """x drives y with the given lag; y does not drive x."""
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    y = np.zeros(n)
    for t in range(1, n):
        x[t] = 0.5 * x[t - 1] + rng.normal()
        driver = x[t - lag] if t >= lag else 0.0
        y[t] = 0.4 * y[t - 1] + coupling * driver + rng.normal()
    return x, y


class TestGrangerTest:
    def test_detects_true_causality(self):
        x, y = _var_pair()
        result = granger_test(x, y, lags=(1, 2, 3))
        assert result.is_causal()
        assert result.p_value < 0.001

    def test_no_reverse_causality(self):
        x, y = _var_pair()
        result = granger_test(y, x, lags=(1, 2, 3))
        assert not result.is_causal(alpha=0.01)

    def test_independent_series_not_causal(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=300)
        b = rng.normal(size=300)
        assert not granger_test(a, b).is_causal(alpha=0.01)

    def test_lag_selection_prefers_true_lag(self):
        x, y = _var_pair(lag=2, coupling=1.5)
        result = granger_test(x, y, lags=(1, 2))
        assert result.lag == 2

    def test_nonstationary_inputs_differenced(self):
        """Monotone counters must not produce spurious causality."""
        rng = np.random.default_rng(2)
        a = np.cumsum(np.abs(rng.normal(3, 1, size=400)))
        b = np.cumsum(np.abs(rng.normal(5, 1, size=400)))
        result = granger_test(a, b)
        assert result.differenced
        assert not result.is_causal(alpha=0.01)

    def test_spurious_regression_without_differencing(self):
        """The Granger-Newbold effect our ADF handling protects against:
        independent random walks look 'causal' if taken at face value."""
        rng = np.random.default_rng(3)
        spurious_hits = 0
        for seed in range(10):
            rng = np.random.default_rng(seed)
            a = np.cumsum(rng.normal(size=300))
            b = np.cumsum(rng.normal(size=300))
            raw = granger_test(a, b, pre_differenced=True)  # skip guard
            if raw.is_causal(alpha=0.05):
                spurious_hits += 1
        protected_hits = 0
        for seed in range(10):
            rng = np.random.default_rng(seed)
            a = np.cumsum(rng.normal(size=300))
            b = np.cumsum(rng.normal(size=300))
            if granger_test(a, b).is_causal(alpha=0.05):
                protected_hits += 1
        assert protected_hits < spurious_hits

    def test_make_stationary(self):
        rng = np.random.default_rng(4)
        noise = rng.normal(size=300)
        walk = np.cumsum(rng.normal(size=300))
        out_noise, diffed_noise = make_stationary(noise)
        out_walk, diffed_walk = make_stationary(walk)
        assert not diffed_noise and out_noise.size == 300
        assert diffed_walk and out_walk.size == 299

    def test_input_validation(self):
        with pytest.raises(ValueError):
            granger_test(np.ones(5), np.ones(5))
        with pytest.raises(ValueError):
            granger_test(np.ones(20), np.ones(21))


class TestDependencyGraph:
    def _relation(self, src="a", sm="m1", dst="b", dm="m2", lag=1, p=0.01):
        return MetricRelation(src, sm, dst, dm, lag, p)

    def test_add_and_query(self):
        graph = DependencyGraph()
        graph.add_relation(self._relation())
        assert len(graph) == 1
        assert graph.components == ["a", "b"]
        assert len(graph.relations_between("a", "b")) == 1
        assert graph.relations_between("b", "a") == []

    def test_component_edges_aggregate(self):
        graph = DependencyGraph()
        graph.add_relation(self._relation(sm="m1"))
        graph.add_relation(self._relation(sm="m2"))
        graph.add_relation(self._relation(src="c"))
        assert ("a", "b", 2) in graph.component_edges()
        assert ("c", "b", 1) in graph.component_edges()

    def test_most_connected_metric(self):
        graph = DependencyGraph()
        graph.add_relation(self._relation(sm="hub"))
        graph.add_relation(self._relation(sm="hub", dst="c"))
        graph.add_relation(self._relation(src="d", sm="other"))
        assert graph.most_connected_metric() == ("a", "hub")

    def test_most_connected_metric_scoped(self):
        graph = DependencyGraph()
        graph.add_relation(self._relation(sm="hub"))
        graph.add_relation(self._relation(sm="hub", dst="c"))
        assert graph.most_connected_metric(component="b") == ("b", "m2")
        assert graph.most_connected_metric(component="ghost") is None

    def test_empty_graph(self):
        graph = DependencyGraph(components=["a"])
        assert graph.most_connected_metric() is None
        assert graph.summary()["metric_relations"] == 0
        assert graph.components == ["a"]

    def test_edges_of_metric(self):
        graph = DependencyGraph()
        relation = self._relation()
        graph.add_relation(relation)
        assert graph.edges_of_metric("a", "m1") == [relation]
        assert graph.edges_of_metric("a", "nope") == []

    def test_to_networkx(self):
        graph = DependencyGraph()
        graph.add_relation(self._relation(lag=2))
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_edges() == 1
        _, _, data = next(iter(nx_graph.edges(data=True)))
        assert data["lag"] == 2


def _coupled_frame(seed=0, n=300, interval=0.5):
    """Two components whose metrics are genuinely lag-coupled.

    The load must be *bursty* (weak autocorrelation): a smooth periodic
    load is predictable from either side, making every relation
    bidirectional -- which the extraction correctly filters out.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(n) * interval
    load = np.abs(rng.normal(5.0, 2.0, n)) + 1.0
    frame = MetricFrame()
    for i, noise_scale in enumerate((0.2, 0.3)):
        values = load * (1 + 0.1 * i) + rng.normal(0, noise_scale, n)
        name = f"front_rate_{i}"
        for time, value in zip(t, values):
            frame.series("front", name).append(time, value)
    lagged = np.roll(load, 2)
    lagged[:2] = load[0]
    for i, noise_scale in enumerate((0.2, 0.3)):
        values = lagged * (2 + 0.1 * i) + rng.normal(0, noise_scale, n)
        name = f"back_rate_{i}"
        for time, value in zip(t, values):
            frame.series("back", name).append(time, value)
    # An independent metric that should not pick up relations.
    indep = rng.normal(5, 1, n)
    for time, value in zip(t, indep):
        frame.series("back", "independent_gauge").append(time, value)
    return frame


class TestExtractDependencies:
    def test_finds_dependency_along_call_edge(self):
        frame = _coupled_frame()
        call_graph = CallGraph()
        call_graph.record_call("front", "back", 100)
        clusterings = reduce_frame(frame, seed=0)
        graph = extract_dependencies(frame, call_graph, clusterings)
        assert any(
            r.source_component == "front" and r.target_component == "back"
            for r in graph.relations
        )

    def test_call_graph_restricts_search(self):
        frame = _coupled_frame()
        empty_graph = CallGraph()  # no communication observed
        clusterings = reduce_frame(frame, seed=0)
        graph = extract_dependencies(frame, empty_graph, clusterings)
        assert len(graph) == 0

    def test_bidirectional_filter_reduces_relations(self):
        frame = _coupled_frame()
        call_graph = CallGraph()
        call_graph.record_call("front", "back", 100)
        clusterings = reduce_frame(frame, seed=0)
        kept = extract_dependencies(frame, call_graph, clusterings,
                                    filter_bidirectional=True)
        unfiltered = extract_dependencies(frame, call_graph, clusterings,
                                          filter_bidirectional=False)
        assert len(unfiltered) >= len(kept)

    def test_naive_pair_count(self):
        # 15 components x ~60 metrics: the scale argument of the paper.
        assert naive_pair_count(15, 60) == 15 * 14 * 3600
        with pytest.raises(ValueError):
            naive_pair_count(-1, 5)
