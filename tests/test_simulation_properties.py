"""Property-based tests for simulation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.fluid import _DelayLine
from repro.simulator.kernel import EventLoop
from repro.workload import RallyRunner, WorldCupTrace


class TestDelayLineProperties:
    @given(st.floats(0.1, 5.0), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_reads_signal_delayed(self, delay, seed):
        """A delay line replays the pushed rate exactly `delay` later."""
        rng = np.random.default_rng(seed)
        line = _DelayLine(delay)
        dt = 0.1
        pushed = []
        for step in range(100):
            t = step * dt
            rate = float(rng.uniform(0, 50))
            line.push(t, rate)
            pushed.append((t, rate))
        # Read at a time where the delayed signal is fully defined.
        read_at = 100 * dt
        value = line.read(read_at)
        cutoff = read_at - delay
        expected = 0.0
        for t, rate in pushed:
            if t <= cutoff:
                expected = rate
        assert value == expected

    def test_zero_before_any_signal_matures(self):
        line = _DelayLine(10.0)
        line.push(0.0, 42.0)
        assert line.read(5.0) == 0.0
        assert line.read(10.0) == 42.0

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_last_matured_value_persists(self, rates):
        line = _DelayLine(0.5)
        for i, rate in enumerate(rates):
            line.push(i * 0.1, float(rate))
        late = line.read(len(rates) * 0.1 + 100.0)
        assert late == float(rates[-1])


class TestEventLoopProperties:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=60),
           st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_events_fire_in_time_order(self, delays, _seed):
        loop = EventLoop()
        fired: list[float] = []
        for delay in delays:
            loop.schedule(delay, lambda: fired.append(loop.now))
        loop.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert loop.now == max(delays)


class TestWorkloadProperties:
    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_worldcup_sessions_conserved(self, seed):
        """Active sessions never exceed total arrivals and end at ~0."""
        trace = WorldCupTrace(duration=600, seed=seed)
        peak_active = max(trace.active_sessions(t) for t in range(0, 600, 5))
        assert peak_active <= trace.n_sessions
        # Only sessions arriving within the first grid second can be
        # active at t=0; with ~2 arrivals/s that is a handful at most.
        assert trace.active_sessions(0.0) <= 12

    @given(st.integers(1, 30), st.integers(1, 5), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_rally_rate_bounded_by_concurrency(self, times, concurrency,
                                               seed):
        """At most `concurrency` iterations burst at once."""
        runner = RallyRunner(times=times, concurrency=concurrency,
                             background_rate=0.0, seed=seed)
        peak_possible = concurrency * max(runner.task.boot_rate(),
                                          runner.task.delete_rate())
        step = max(runner.duration / 500.0, 0.05)
        observed = max(
            runner.rate(i * step)
            for i in range(int(runner.duration / step) + 1)
        )
        assert observed <= peak_possible + 1e-6

    @given(st.integers(1, 40), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_rally_all_iterations_scheduled(self, times, seed):
        runner = RallyRunner(times=times, concurrency=3, seed=seed)
        assert len(runner.iterations) == times
        for start, boot_end, delete_start in runner.iterations:
            assert start < boot_end <= delete_start
            assert delete_start + runner.task.delete_duration \
                <= runner.duration + 1e-9
