"""Tests for the simulator substrate (kernel, components, fluid engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (
    Application,
    CallSpec,
    ComponentCrash,
    ComponentSpec,
    Degradation,
    EndpointSpec,
    EventLoop,
    FaultPlan,
    FluidSimulation,
)
from repro.simulator.component import Component
from repro.simulator.faults import EnvFlag


class TestEventLoop:
    def test_processes_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("late"))
        loop.schedule(1.0, lambda: order.append("early"))
        loop.run()
        assert order == ["early", "late"]
        assert loop.now == 2.0

    def test_ties_break_by_insertion(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append(1))
        loop.schedule(1.0, lambda: order.append(2))
        loop.run()
        assert order == [1, 2]

    def test_run_until(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run(until=2.0)
        assert fired == [1]
        assert loop.now == 2.0
        assert loop.pending() == 1

    def test_cascading_events(self):
        loop = EventLoop()
        count = [0]

        def reschedule():
            count[0] += 1
            if count[0] < 10:
                loop.schedule(1.0, reschedule)

        loop.schedule(1.0, reschedule)
        loop.run()
        assert count[0] == 10
        assert loop.now == pytest.approx(10.0)

    def test_rejects_past_scheduling(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule_at(0.5, lambda: None)

    def test_max_events_bound(self):
        loop = EventLoop()
        for _ in range(10):
            loop.schedule(1.0, lambda: None)
        loop.run(max_events=3)
        assert loop.processed == 3


def _simple_spec(name="svc", **kwargs):
    defaults = dict(
        kind="generic",
        endpoints=(EndpointSpec("op", service_time=0.02),),
        concurrency=8,
    )
    defaults.update(kwargs)
    return ComponentSpec(name=name, **defaults)


class TestComponent:
    def test_utilization_tracks_load(self):
        comp = Component(_simple_spec(), seed=1)
        comp.step(0.1, {"op": 100.0})  # work = 2.0 of capacity 8
        assert 0.2 < comp.utilization < 0.3

    def test_overload_grows_queue_and_errors(self):
        comp = Component(_simple_spec(), seed=1)
        for _ in range(100):
            comp.step(0.1, {"op": 1000.0})  # work 20 >> capacity 8
        assert comp.queue_length > 0
        assert comp.error_rate > 0.1

    def test_latency_rises_with_congestion(self):
        comp = Component(_simple_spec(), seed=1)
        comp.step(0.1, {"op": 10.0})
        calm = comp.mean_latency()
        for _ in range(50):
            comp.step(0.1, {"op": 390.0})  # near saturation
        assert comp.mean_latency() > 2 * calm

    def test_unknown_endpoint_distributed_by_weight(self):
        spec = ComponentSpec(
            name="c", endpoints=(
                EndpointSpec("a", weight=3.0), EndpointSpec("b", weight=1.0),
            ),
        )
        comp = Component(spec, seed=0)
        comp.step(0.1, {"__external__": 40.0})
        assert comp.endpoint_rates["a"] == pytest.approx(30.0)
        assert comp.endpoint_rates["b"] == pytest.approx(10.0)

    def test_outgoing_rates_follow_ratios(self):
        spec = _simple_spec(calls=(CallSpec("x", ratio=2.0),
                                   CallSpec("y", ratio=0.5)))
        comp = Component(spec, seed=0)
        comp.step(0.1, {"op": 10.0})
        out = comp.outgoing_rates()
        assert out["x"] == pytest.approx(20.0, rel=0.05)
        assert out["y"] == pytest.approx(5.0, rel=0.05)

    def test_crash_stops_everything(self):
        spec = _simple_spec(calls=(CallSpec("x", ratio=1.0),))
        comp = Component(spec, seed=0)
        comp.crashed = True
        comp.step(0.1, {"op": 50.0})
        assert comp.total_request_rate() == 0.0
        assert comp.outgoing_rates()["x"] == 0.0
        assert comp.error_rate == 1.0

    def test_counters_are_monotone(self):
        comp = Component(_simple_spec(), seed=2)
        previous = 0.0
        for _ in range(50):
            comp.step(0.1, {"op": 20.0})
            assert comp.net_in_total >= previous
            previous = comp.net_in_total

    def test_scaling_changes_capacity(self):
        comp = Component(_simple_spec(), seed=0)
        comp.set_instances(4)
        assert comp.capacity == 32.0
        with pytest.raises(ValueError):
            comp.set_instances(0)

    def test_scaling_causes_transient_disruption(self):
        comp = Component(_simple_spec(), seed=0)
        for _ in range(20):
            comp.step(0.1, {"op": 300.0})
        settled = comp.mean_latency()
        comp.set_instances(3)
        comp.step(0.1, {"op": 300.0})
        assert comp.mean_latency() > settled

    def test_metric_profiles_are_nested(self):
        full = Component(_simple_spec(metric_profile="full"), seed=0)
        slim = Component(_simple_spec(metric_profile="slim"), seed=0)
        tiny = Component(_simple_spec(metric_profile="tiny"), seed=0)
        for c in (full, slim, tiny):
            c.step(0.1, {"op": 10.0})
        m_full = set(full.sample_metrics(0.0))
        m_slim = set(slim.sample_metrics(0.0))
        m_tiny = set(tiny.sample_metrics(0.0))
        assert m_tiny < m_slim < m_full

    def test_error_export_policies(self):
        always = Component(_simple_spec(export_errors="always"), seed=0)
        never = Component(_simple_spec(export_errors="never",
                                       error_base_rate=0.5), seed=0)
        always.step(0.1, {"op": 1.0})
        never.step(0.1, {"op": 100.0})
        assert "error_count_total" in always.sample_metrics(0.0)
        assert "error_count_total" not in never.sample_metrics(0.0)

    def test_kind_metrics_present(self):
        for kind, marker in [
            ("nodejs", "nodejs_heap_used_mb"),
            ("database", "db_queries_count"),
            ("kv-store", "kv_hits"),
            ("loadbalancer", "lb_sessions"),
            ("queue", "messages"),
        ]:
            comp = Component(_simple_spec(kind=kind), seed=0)
            comp.step(0.1, {"op": 5.0})
            assert marker in comp.sample_metrics(0.0)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            ComponentSpec(name="x", kind="mainframe")
        with pytest.raises(ValueError):
            ComponentSpec(name="x", endpoints=())
        with pytest.raises(ValueError):
            ComponentSpec(name="x", metric_profile="verbose")

    @given(st.floats(1.0, 500.0), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_requests_conserved(self, rate, seed):
        """Accumulated request counter equals integrated arrival rate."""
        comp = Component(_simple_spec(), seed=seed)
        for _ in range(10):
            comp.step(0.1, {"op": rate})
        assert comp.requests_total == pytest.approx(rate * 1.0, rel=1e-6)


class TestFluidSimulation:
    def _two_tier(self, workload, **kwargs):
        specs = [
            _simple_spec("front", calls=(CallSpec("back", ratio=1.0,
                                                  delay=0.5),)),
            _simple_spec("back", concurrency=16),
        ]
        return FluidSimulation(specs, workload, **kwargs)

    def test_load_propagates_downstream(self):
        sim = self._two_tier(lambda t: {"front": 40.0}, seed=1)
        sim.run(10.0)
        assert sim.component("front").total_request_rate() \
            == pytest.approx(40.0)
        assert sim.component("back").total_request_rate() \
            == pytest.approx(40.0, rel=0.1)

    def test_propagation_delay(self):
        sim = self._two_tier(lambda t: {"front": 40.0}, seed=1)
        sim.run(0.4)  # less than the 0.5 s edge delay
        assert sim.component("back").total_request_rate() == 0.0
        sim.run(0.4)
        assert sim.component("back").total_request_rate() > 0.0

    def test_trace_sink_receives_connections(self):
        events = []
        sim = self._two_tier(
            lambda t: {"front": 40.0}, seed=1,
            trace_sink=lambda t, s, d, n: events.append((s, d, n)),
        )
        sim.run(10.0)
        assert events
        assert all(s == "front" and d == "back" for s, d, _n in events)

    def test_unknown_call_target_rejected(self):
        specs = [_simple_spec("a", calls=(CallSpec("ghost"),))]
        with pytest.raises(ValueError):
            FluidSimulation(specs, lambda t: {})

    def test_unknown_workload_target_rejected(self):
        sim = self._two_tier(lambda t: {"ghost": 1.0})
        with pytest.raises(KeyError):
            sim.step()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FluidSimulation([_simple_spec("a"), _simple_spec("a")],
                            lambda t: {})

    def test_determinism(self):
        runs = []
        for _ in range(2):
            sim = self._two_tier(lambda t: {"front": 30.0}, seed=9)
            sim.run(5.0)
            runs.append(sim.component("back").sample_metrics(5.0))
        assert runs[0] == runs[1]


class TestFaults:
    def test_component_crash(self):
        specs = [_simple_spec("a")]
        plan = FaultPlan(faults=[ComponentCrash("a", at_time=1.0)])
        sim = FluidSimulation(specs, lambda t: {"a": 10.0},
                              fault_plan=plan, seed=0)
        sim.run(0.5)
        assert not sim.component("a").crashed
        sim.run(1.0)
        assert sim.component("a").crashed

    def test_degradation_window(self):
        specs = [_simple_spec("a")]
        plan = FaultPlan(faults=[Degradation("a", factor=4.0,
                                             at_time=1.0, until=2.0)])
        sim = FluidSimulation(specs, lambda t: {"a": 10.0},
                              fault_plan=plan, seed=0)
        sim.run(1.5)
        assert sim.component("a").degradation == 4.0
        sim.run(1.0)
        assert sim.component("a").degradation == 1.0

    def test_env_flag(self):
        specs = [_simple_spec("a")]
        plan = FaultPlan(faults=[EnvFlag("broken", True, at_time=0.5)])
        sim = FluidSimulation(specs, lambda t: {"a": 1.0},
                              fault_plan=plan, seed=0)
        sim.run(0.3)
        assert "broken" not in sim.env
        sim.run(0.5)
        assert sim.env["broken"] is True

    def test_crash_on_unknown_component(self):
        plan = FaultPlan(faults=[ComponentCrash("ghost")])
        sim = FluidSimulation([_simple_spec("a")], lambda t: {"a": 1.0},
                              fault_plan=plan)
        with pytest.raises(KeyError):
            sim.step()

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.none()


class TestApplication:
    def test_load_records_everything(self):
        app = Application("demo", [
            _simple_spec("front", calls=(CallSpec("back", delay=0.3),)),
            _simple_spec("back"),
        ])
        run = app.load(lambda t: 30.0, duration=30.0, seed=1)
        assert run.metric_count() > 10
        assert run.call_graph.has_edge("front", "back")
        assert run.store.sample_count() > 0
        assert run.sla_samples

    def test_entrypoint_validation(self):
        with pytest.raises(ValueError):
            Application("x", [_simple_spec("a")], entrypoints={"nope": 1.0})
        with pytest.raises(ValueError):
            Application("x", [_simple_spec("a")], entrypoints={"a": 0.0})
        with pytest.raises(ValueError):
            Application("x", [_simple_spec("a")], sla_path=["ghost"])

    def test_entry_shares_normalized(self):
        app = Application("x", [_simple_spec("a"), _simple_spec("b")],
                          entrypoints={"a": 2.0, "b": 2.0})
        assert app.entrypoints == {"a": 0.5, "b": 0.5}

    def test_spec_lookup(self):
        app = Application("x", [_simple_spec("a")])
        assert app.spec_of("a").name == "a"
        with pytest.raises(KeyError):
            app.spec_of("ghost")
