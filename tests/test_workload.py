"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.workload import (
    BootAndDeleteTask,
    LocustLoadGenerator,
    RallyRunner,
    RandomWorkload,
    WorldCupTrace,
    constant_rate,
    ramp_rate,
)


class TestLocust:
    def test_ramp_then_hold(self):
        gen = LocustLoadGenerator(users=30, spawn_rate=3.0, wobble=0.0)
        assert gen.active_users(0.0) == 0.0
        assert gen.active_users(5.0) == 15.0
        assert gen.active_users(100.0) == 30.0

    def test_steady_rate_matches_behavior(self):
        gen = LocustLoadGenerator(users=10, spawn_rate=100.0, wobble=0.0)
        expected = 10 * gen.behavior.request_rate()
        assert gen.rate(100.0) == pytest.approx(expected)

    def test_wobble_stays_positive(self):
        gen = LocustLoadGenerator(users=10, wobble=0.5, seed=3)
        rates = [gen.rate(t) for t in np.linspace(0, 500, 200)]
        assert all(r >= 0 for r in rates)
        assert np.std(rates[50:]) > 0  # wobble actually wobbles

    def test_deterministic_per_seed(self):
        a = LocustLoadGenerator(users=10, seed=5)
        b = LocustLoadGenerator(users=10, seed=5)
        assert a.rate(33.3) == b.rate(33.3)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LocustLoadGenerator(users=0)
        with pytest.raises(ValueError):
            LocustLoadGenerator(spawn_rate=0.0)


class TestWorldCup:
    def test_spike_shape(self):
        """The trace has the WC'98 signature: plateau, spike, decay."""
        trace = WorldCupTrace(duration=3600, seed=1)
        early = np.mean([trace.rate(t) for t in range(100, 500, 10)])
        spike = np.mean([trace.rate(t) for t in range(1700, 2200, 10)])
        assert spike > 3 * early

    def test_sessions_positive_and_bounded(self):
        trace = WorldCupTrace(duration=600, seed=2)
        assert trace.n_sessions > 0
        for t in (0, 100, 300, 599):
            assert trace.active_sessions(t) >= 0.0
        assert trace.active_sessions(-5.0) == 0.0
        assert trace.active_sessions(1e9) == 0.0

    def test_peak_window_finds_spike(self):
        trace = WorldCupTrace(duration=3600, seed=3)
        start, end = trace.peak_window(300.0)
        assert end - start == pytest.approx(300.0)
        spike_centre = 0.45 * 3600
        assert start > spike_centre - 600

    def test_deterministic(self):
        a = WorldCupTrace(duration=600, seed=4)
        b = WorldCupTrace(duration=600, seed=4)
        assert a.n_sessions == b.n_sessions
        assert a.rate(250.0) == b.rate(250.0)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            WorldCupTrace(duration=0)


class TestRally:
    def test_iteration_count_and_duration(self):
        runner = RallyRunner(times=10, concurrency=2, seed=0)
        assert len(runner.iterations) == 10
        assert runner.duration > 0

    def test_boot_rate_bursts(self):
        runner = RallyRunner(times=4, concurrency=1, background_rate=1.0,
                             seed=0)
        start, boot_end, _delete = runner.iterations[0]
        during_boot = runner.rate(start + 1.0)
        assert during_boot > runner.task.boot_rate()  # burst + background
        idle_point = boot_end + 2.0
        assert runner.rate(idle_point) < during_boot

    def test_background_rate_outside_run(self):
        runner = RallyRunner(times=2, concurrency=1, background_rate=2.5)
        assert runner.rate(runner.duration + 100.0) == 2.5
        assert runner.rate(-1.0) == 2.5

    def test_concurrency_shortens_run(self):
        serial = RallyRunner(times=20, concurrency=1, seed=1)
        parallel = RallyRunner(times=20, concurrency=5, seed=1)
        assert parallel.duration < serial.duration

    def test_task_rates(self):
        task = BootAndDeleteTask(vms=5, boot_duration=10.0,
                                 boot_requests_per_vm=10.0)
        assert task.boot_rate() == pytest.approx(5.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RallyRunner(times=0)


class TestProfiles:
    def test_random_workload_in_bounds(self):
        workload = RandomWorkload(duration=300, min_rate=5, max_rate=50,
                                  seed=0)
        rates = [workload.rate(t) for t in np.linspace(0, 300, 100)]
        assert min(rates) >= 0.0
        assert max(rates) <= 60.0  # bound + wobble margin

    def test_random_workload_varies(self):
        workload = RandomWorkload(duration=600, seed=1)
        rates = [workload.rate(t) for t in np.linspace(0, 600, 200)]
        assert np.std(rates) > 1.0

    def test_different_seeds_differ(self):
        a = RandomWorkload(duration=300, seed=1)
        b = RandomWorkload(duration=300, seed=2)
        rates_a = [a.rate(t) for t in range(0, 300, 10)]
        rates_b = [b.rate(t) for t in range(0, 300, 10)]
        assert rates_a != rates_b

    def test_constant_and_ramp(self):
        assert constant_rate(5.0)(123.4) == 5.0
        ramp = ramp_rate(0.0, 10.0, 100.0)
        assert ramp(0.0) == 0.0
        assert ramp(50.0) == 5.0
        assert ramp(1000.0) == 10.0
        with pytest.raises(ValueError):
            constant_rate(-1.0)
        with pytest.raises(ValueError):
            ramp_rate(0, 1, 0)
