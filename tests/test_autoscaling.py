"""Tests for the autoscaling engine (case study #1)."""

import numpy as np
import pytest

from repro.apps import build_sharelatex_application
from repro.autoscaling import (
    SLACondition,
    ScalingRule,
    calibrate_thresholds,
    run_autoscaling,
)
from repro.simulator import Application, ComponentSpec, EndpointSpec
from repro.workload import constant_rate


class TestSLACondition:
    def test_violation_detection(self):
        sla = SLACondition(percentile=90.0, threshold=1.0)
        assert not sla.violated([0.1] * 10)
        assert sla.violated([0.1] * 5 + [2.0] * 5)

    def test_empty_window_not_violated(self):
        assert not SLACondition().violated([])

    def test_count_violations_windows(self):
        sla = SLACondition(percentile=90.0, threshold=1.0)
        latencies = [0.1] * 10 + [2.0] * 10
        violations, windows = sla.count_violations(latencies, window=5)
        assert windows == 4
        assert violations == 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SLACondition(percentile=0.0)
        with pytest.raises(ValueError):
            SLACondition(threshold=0.0)
        with pytest.raises(ValueError):
            SLACondition().count_violations([1.0], window=0)


class TestScalingRule:
    def _rule(self, **kwargs):
        defaults = dict(
            component="web", metric_component="web", metric="cpu_usage",
            scale_up_threshold=50.0, scale_down_threshold=10.0,
            min_instances=1, max_instances=5, cooldown=10.0,
        )
        defaults.update(kwargs)
        return ScalingRule(**defaults)

    def test_scale_up_decision(self):
        rule = self._rule()
        assert rule.decide(0.0, [60.0, 70.0], 2) == 1

    def test_scale_down_decision(self):
        rule = self._rule()
        assert rule.decide(0.0, [5.0], 3) == -1

    def test_within_band_no_action(self):
        rule = self._rule()
        assert rule.decide(0.0, [30.0], 3) == 0

    def test_cooldown_blocks_consecutive_actions(self):
        rule = self._rule()
        assert rule.decide(0.0, [90.0], 2) == 1
        assert rule.decide(5.0, [90.0], 3) == 0
        assert rule.decide(11.0, [90.0], 3) == 1

    def test_bounds_respected(self):
        rule = self._rule()
        assert rule.decide(0.0, [90.0], 5) == 0  # at max
        assert rule.decide(100.0, [1.0], 1) == 0  # at min

    def test_empty_window(self):
        assert self._rule().decide(0.0, [], 2) == 0

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            self._rule(scale_down_threshold=60.0)
        with pytest.raises(ValueError):
            self._rule(min_instances=0)


def _tiny_app():
    spec = ComponentSpec(
        name="svc", kind="generic",
        endpoints=(EndpointSpec("op", service_time=0.05),),
        concurrency=8, instances=1,
    )
    return Application("tiny", [spec], sla_path=["svc"])


class TestRunAutoscaling:
    def test_scales_up_under_overload(self):
        app = _tiny_app()
        rule = ScalingRule("svc", "svc", "cpu_usage", 50.0, 5.0,
                           min_instances=1, max_instances=6, cooldown=5.0)
        # Offered work 15 >> capacity 8 at one instance.
        outcome = run_autoscaling(app, constant_rate(300.0), rule,
                                  duration=120.0, seed=0)
        assert outcome.scaling_actions >= 1
        assert outcome.instance_trace[-1][1] > 1

    def test_scales_down_when_idle(self):
        app = _tiny_app()
        rule = ScalingRule("svc", "svc", "cpu_usage", 60.0, 20.0,
                           min_instances=1, max_instances=6, cooldown=5.0)
        outcome = run_autoscaling(app, constant_rate(1.0), rule,
                                  duration=60.0, seed=0,
                                  start_instances=5)
        assert outcome.instance_trace
        assert outcome.instance_trace[-1][1] < 5

    def test_records_sla_and_cpu(self):
        app = _tiny_app()
        rule = ScalingRule("svc", "svc", "cpu_usage", 99.0, 0.1,
                           min_instances=1, max_instances=2)
        outcome = run_autoscaling(app, constant_rate(10.0), rule,
                                  duration=30.0, seed=0)
        assert outcome.sla_samples > 0
        assert outcome.mean_cpu_per_component > 0
        summary = outcome.summary()
        assert set(summary) == {
            "metric", "mean_cpu_per_component", "sla_violations",
            "sla_samples", "scaling_actions",
        }

    def test_overload_without_scaling_violates_sla(self):
        app = _tiny_app()
        noop = ScalingRule("svc", "svc", "cpu_usage", 1e9, -1e9 + 1,
                           min_instances=1, max_instances=1)
        outcome = run_autoscaling(app, constant_rate(400.0), noop,
                                  duration=90.0, seed=0)
        assert outcome.sla_violations > 0


class TestCalibration:
    def test_thresholds_ordered_and_above_floor(self):
        app = build_sharelatex_application()
        thresholds = calibrate_thresholds(
            app, constant_rate(900.0), "web",
            "web", "cpu_usage",
            sla=SLACondition(), duration=15.0, max_instances=6,
            refinement_duration=30.0, max_refinements=2, seed=0,
        )
        assert thresholds.scale_down < thresholds.scale_up
        assert thresholds.scale_down >= 0.0
        assert thresholds.levels  # sweep recorded

    def test_unsatisfiable_sla_raises(self):
        app = _tiny_app()
        with pytest.raises(RuntimeError):
            calibrate_thresholds(
                app, constant_rate(5000.0), "svc", "svc", "cpu_usage",
                sla=SLACondition(threshold=0.001),
                duration=10.0, max_instances=2, seed=0,
            )
