"""Parallel window-analysis scaling: executors, shm transport, SBD.

Sizes the tentpole of the parallel subsystem: wall-clock of one full
window analysis (per-component reduce + re-cluster + dependency
extraction) under each :mod:`repro.parallel.executor` strategy,
across component counts and worker counts.  The per-window critical
path is the largest component, so speedup saturates near
``components / max_component_share`` -- and on a single-core runner
(``cpus: 1`` in the output) a process pool cannot beat serial at all;
read the numbers together with the recorded core count.

The ``shm`` strategies are routed through a shared-memory-homed
:class:`~repro.streaming.window.WindowStore` (ingest -> snapshot),
exactly the engine's path, so the timing covers the zero-copy
descriptor transport rather than staged copies.  A separate
microbenchmark times the batched SBD kernel against the per-pair
reference on the re-cluster hot shape (64 series x 240 points).

Also measures the concurrent-ingest win: seconds the *ingest path*
spends blocked inside backend writes, sync vs the batching writer
thread -- the writer's point is unblocking the bus, which holds even
on one core.

Writes ``BENCH_parallel.json`` with the headline numbers; CI uploads
it and ``benchmarks/check_regression.py`` gates it against the
committed baseline (including the ``_gates`` absolute floors, e.g.
``speedup_shm@4 >= 1.5`` on hosts with four or more cores).
"""

import json
import os
import time

import numpy as np

from repro.metrics.timeseries import MetricFrame, MetricKey, TimeSeries
from repro.parallel import BatchingWriter, make_executor
from repro.persistence import SqliteBackend
from repro.core import StreamingConfig
from repro.stats.correlation import sbd_matrix, use_reference_kernel
from repro.stats.timeseries_ops import znormalize
from repro.streaming import WindowAnalyzer
from repro.streaming.window import WindowStore
from repro.tracing.callgraph import CallGraph

from conftest import print_table

#: Component counts the executor sweep covers.
COMPONENT_COUNTS = (4, 8)

#: (kind, workers) strategies the sweep times.
STRATEGIES = (("serial", 1), ("thread", 2), ("process", 2),
              ("process", 4), ("shm", 2), ("shm", 4))

METRICS_PER_COMPONENT = 12
POINTS_PER_SERIES = 240

RESULTS_PATH = "BENCH_parallel.json"
_results: dict = {"name": "parallel_scaling",
                  "cpus": os.cpu_count(),
                  "metrics_per_component": METRICS_PER_COMPONENT,
                  "points_per_series": POINTS_PER_SERIES}


def _frame(components: int) -> MetricFrame:
    """Synthetic multi-component frame with clusterable structure."""
    rng = np.random.default_rng(17)
    frame = MetricFrame()
    t = 0.5 * np.arange(POINTS_PER_SERIES)
    for c in range(components):
        for m in range(METRICS_PER_COMPONENT):
            base = (1.0 + m % 4) * np.sin(t / (2.0 + c + 0.5 * (m % 3)))
            frame.add(TimeSeries(
                MetricKey(f"component_{c}", f"metric_{m}"),
                t, base + rng.normal(0.0, 0.2, POINTS_PER_SERIES),
            ))
    return frame


def _call_graph(components: int) -> CallGraph:
    graph = CallGraph()
    for c in range(components - 1):
        graph.record_call(f"component_{c}", f"component_{c + 1}", 5)
    return graph


def _fingerprint(analysis) -> dict:
    return {component: clustering.labels()
            for component, clustering in analysis.clusterings.items()}


def _identity(x):
    """Module-level warm-up task (process pools must pickle it)."""
    return x


def test_executor_scaling():
    rows = []
    for components in COMPONENT_COUNTS:
        frame = _frame(components)
        graph = _call_graph(components)
        span = float(frame.time_span()[1])
        timings: dict = {}
        reference = None
        for kind, workers in STRATEGIES:
            executor = make_executor(kind, workers)
            store = None
            run_frame = frame
            if kind == "shm":
                # Route the frame through a shared-memory-homed
                # WindowStore (the engine's path), so the timed
                # analysis ships window arrays as descriptors.
                store = WindowStore(
                    retention=1e9,
                    max_points_per_series=POINTS_PER_SERIES,
                )
                for ts in frame:
                    store.ingest(ts.key.component, ts.key.metric,
                                 ts.times, ts.values)
                store.attach_shm_pool(executor.segments)
            analyzer = WindowAnalyzer(config=StreamingConfig(),
                                      seed=11, executor=executor)
            # One warm-up pass pays pool spin-up outside the timing
            # (pools are reused across windows in the engine too).
            if kind != "serial":
                executor.map(_identity, [0, 1])
            if store is not None:
                run_frame = store.snapshot()
            t0 = time.perf_counter()
            analysis = analyzer.analyze(run_frame, graph, 0.0, span,
                                        index=0)
            elapsed = time.perf_counter() - t0
            if store is not None:
                store.detach_shm()
            executor.close()
            label = "serial" if kind == "serial" \
                else f"{kind}@{workers}"
            timings[label] = elapsed
            if reference is None:
                reference = _fingerprint(analysis)
            else:
                # Distribution policy must not change the analysis.
                assert _fingerprint(analysis) == reference, label
        serial_s = timings["serial"]
        entry = {f"{label}_s": round(value, 4)
                 for label, value in timings.items()}
        for label, value in timings.items():
            if label != "serial":
                entry[f"speedup_{label}"] = round(serial_s / value, 3)
        _results[f"components_{components}"] = entry
        rows.append([components] + [round(v, 3)
                                    for v in timings.values()]
                    + [round(serial_s / timings["process@4"], 2),
                       round(serial_s / timings["shm@4"], 2)])

    print_table(
        f"Window-analysis scaling ({os.cpu_count()} cores)",
        ["components", "serial s", "thread@2 s", "process@2 s",
         "process@4 s", "shm@2 s", "shm@4 s", "speedup p@4",
         "speedup shm@4"],
        rows,
    )
    if (os.cpu_count() or 1) >= 4:
        # The acceptance bars only apply where the hardware can
        # physically deliver them (CI perf-gate runners have >= 4
        # cores); single-core hosts record cpus=1 and the regression
        # gate downgrades the floor to a warning.
        for label in ("process@4", "shm@4"):
            speedup = _results["components_8"][f"speedup_{label}"]
            assert speedup >= 1.5, (
                f"{label} speedup {speedup} < 1.5x on a multi-core host"
            )


def test_sbd_kernel_batching():
    """Batched SBD matrix vs the per-pair reference loops.

    The re-cluster hot shape: 64 z-normalized series of 240 points.
    The batched kernel does one ``rfft`` over the stacked rows and one
    ``irfft`` per pair chunk instead of a transform round-trip per
    pair; the floor it must clear (2x) is far below the measured win.
    """
    rng = np.random.default_rng(23)
    n_series = 64
    series = np.stack([
        znormalize(np.sin(0.07 * np.arange(POINTS_PER_SERIES) + phase)
                   + rng.normal(0.0, 0.3, POINTS_PER_SERIES))
        for phase in rng.uniform(0.0, 6.28, n_series)
    ])

    sbd_matrix(series[:4])  # warm the FFT plan caches
    t0 = time.perf_counter()
    batched = sbd_matrix(series)
    batched_s = time.perf_counter() - t0

    with use_reference_kernel():
        t0 = time.perf_counter()
        reference = sbd_matrix(series)
        reference_s = time.perf_counter() - t0

    assert np.allclose(batched, reference, atol=1e-10)
    speedup = reference_s / max(batched_s, 1e-9)
    _results["sbd"] = {
        "n_series": n_series,
        "batched_s": round(batched_s, 4),
        "reference_s": round(reference_s, 4),
        "speedup_batched": round(speedup, 2),
    }
    print_table(
        f"SBD kernel ({n_series} x {POINTS_PER_SERIES})",
        ["kernel", "seconds"],
        [["batched", round(batched_s, 4)],
         ["per-pair reference", round(reference_s, 4)]],
    )
    # Single-threaded win, so this holds on any host (acceptance bar).
    assert speedup >= 2.0, f"batched SBD speedup {speedup} < 2x"


def test_writer_ingest_blocking(tmp_path):
    """Seconds the ingest path spends blocked in durable writes."""
    rng = np.random.default_rng(3)
    n_series, batches, batch_points = 32, 80, 50
    values = rng.random((n_series, batches * batch_points))

    def ingest(backend) -> float:
        blocked = 0.0
        for b in range(batches):
            lo = b * batch_points
            t = 0.5 * np.arange(lo, lo + batch_points, dtype=float)
            for s in range(n_series):
                t0 = time.perf_counter()
                backend.write(f"component_{s % 8}", f"metric_{s}",
                              t, values[s, lo:lo + batch_points])
                blocked += time.perf_counter() - t0
        return blocked

    sync = SqliteBackend(tmp_path / "sync.db")
    sync_blocked = ingest(sync)
    sync.flush()
    sync.close()

    inner = SqliteBackend(tmp_path / "async.db")
    writer = BatchingWriter(inner, max_batches=4096)
    async_blocked = ingest(writer)
    t0 = time.perf_counter()
    writer.flush()
    drain_s = time.perf_counter() - t0
    assert writer.sample_count() == n_series * batches * batch_points
    writer.close()

    speedup = sync_blocked / max(async_blocked, 1e-9)
    _results["writer"] = {
        "sync_ingest_blocked_s": round(sync_blocked, 4),
        "async_ingest_blocked_s": round(async_blocked, 4),
        "async_drain_s": round(drain_s, 4),
        "ingest_unblock_speedup": round(speedup, 2),
    }
    print_table(
        "Concurrent-ingest writer (ingest-path blocking)",
        ["path", "blocked s"],
        [["sync backend", round(sync_blocked, 4)],
         ["async writer", round(async_blocked, 4)]],
    )
    # Handing writes to the writer thread must cost the ingest path
    # less than doing the writes inline costs it.
    assert async_blocked < sync_blocked

    with open(RESULTS_PATH, "w") as fh:
        json.dump(_results, fh, indent=2)
    print(f"results written to {RESULTS_PATH}")
