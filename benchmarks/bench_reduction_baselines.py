"""Quantifying the paper's §3.2 arguments against PCA and random
projections as metric-reduction techniques.

Paper: PCA "produces results that are not easily interpreted by
developers"; random projections "sacrifice accuracy to achieve
performance and have stability issues producing different results
across runs".  This bench measures both claims on a real component's
metrics (ShareLatex `web`): interpretability of the reduced dimensions
and run-to-run subspace stability, against k-Shape representative
selection.
"""

import numpy as np

from repro.clustering.baselines import (
    pca_reduce,
    random_projection_reduce,
    reduction_stability,
)
from repro.clustering.reduction import reduce_component
from repro.stats.interpolate import align_series

from conftest import print_table


def test_reduction_baselines(benchmark, sharelatex_result):
    result = sharelatex_result
    view = result.run.frame.component_view("web")

    def compute():
        # Align every series onto one grid: conditional metrics (error
        # counters) start mid-run, so individual resampling would give
        # unequal lengths.
        _grid, aligned = align_series(
            {name: (ts.times, ts.values) for name, ts in view.items()},
            interval=0.5,
        )
        matrix = np.vstack([aligned[name] for name in sorted(aligned)])
        k = result.clusterings["web"].n_clusters

        pca = pca_reduce(matrix, k)

        def project(m, kk, seed):
            return random_projection_reduce(m, kk, seed).transformed

        rp_stability = reduction_stability(project, matrix, k,
                                           seeds=(0, 1, 2))

        # k-Shape representatives across seeds: stability of the
        # representative *set* (Jaccard of chosen metric names).
        rep_sets = []
        for seed in (0, 1, 2):
            clustering = reduce_component("web", view, seed=seed)
            rep_sets.append(set(clustering.representatives))
        jaccards = []
        for i in range(3):
            for j in range(i + 1, 3):
                union = rep_sets[i] | rep_sets[j]
                inter = rep_sets[i] & rep_sets[j]
                jaccards.append(len(inter) / len(union) if union else 1.0)
        kshape_stability = float(np.mean(jaccards))
        return pca, rp_stability, kshape_stability, k

    pca, rp_stability, kshape_stability, k = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    rows = [
        ["k-Shape representatives", "1.00 (actual metrics)",
         f"{kshape_stability:.2f}"],
        ["PCA", f"{pca.interpretability():.2f} (loadings mix)", "1.00"],
        ["Random projection", "~0 (random mix)", f"{rp_stability:.2f}"],
    ]
    print_table(
        f"Reduction baselines on web's metrics (k={k})",
        ["Technique", "Interpretability", "Run-to-run stability"], rows,
    )
    print(f"PCA explained variance at k={k}: "
          f"{pca.explained_variance_ratio.sum():.2f}")

    # The paper's two claims, as assertions.
    assert pca.interpretability() < 0.5       # components mix metrics
    assert rp_stability < 0.98                # projections vary per run
    assert kshape_stability > 0.5             # representatives persist
