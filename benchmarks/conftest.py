"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one table or figure of the paper's
evaluation (Section 6) and prints the rows/series the paper reports.
Heavy pipeline runs are shared through session-scoped fixtures so the
whole suite stays minutes, not hours.

Run everything:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.apps import (
    build_openstack_application,
    build_sharelatex_application,
    openstack_fault_plan,
)
from repro.core import Sieve
from repro.workload import RallyRunner, RandomWorkload

#: Load duration of the shared ShareLatex runs (seconds of simulated time).
SHARELATEX_DURATION = 150.0

#: Rally iterations for the OpenStack runs (paper: 100).
RALLY_ITERATIONS = 20


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render one experiment table to stdout (the bench 'figure')."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows), 4)
        for i in range(len(header))
    ] if rows else [len(h) for h in header]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def sharelatex_result():
    """One full Sieve pipeline run on ShareLatex (random workload)."""
    sieve = Sieve(build_sharelatex_application())
    workload = RandomWorkload(duration=SHARELATEX_DURATION, seed=1)
    return sieve.run(workload, duration=SHARELATEX_DURATION, seed=1,
                     workload_name="random-1")


@pytest.fixture(scope="session")
def sharelatex_repeated_runs():
    """Three independent randomized loads (Figure 3 consistency runs)."""
    runs = []
    for seed in (1, 2, 3):
        sieve = Sieve(build_sharelatex_application())
        workload = RandomWorkload(duration=SHARELATEX_DURATION, seed=seed)
        loaded = sieve.load(workload, duration=SHARELATEX_DURATION,
                            seed=seed, workload_name=f"random-{seed}")
        runs.append((sieve, loaded))
    return runs


@pytest.fixture(scope="session")
def openstack_pair():
    """Correct and faulty OpenStack Sieve results (RCA experiments)."""
    sieve = Sieve(build_openstack_application())
    rally = RallyRunner(times=RALLY_ITERATIONS, concurrency=5, seed=11)
    duration = min(rally.duration, 180.0)
    correct = sieve.run(rally, duration=duration, seed=11,
                        workload_name="rally-correct")
    faulty = sieve.run(rally, duration=duration, seed=11,
                       fault_plan=openstack_fault_plan(),
                       workload_name="rally-faulty")
    return correct, faulty
