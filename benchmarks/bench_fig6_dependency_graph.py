"""Figure 6: the ShareLatex dependency graph from Granger causality.

Paper: the extracted graph connects the components along the call
topology, and the metric appearing in the most relations (dashed edges
in the figure) is ``http-requests_Project_id_GET_mean`` on ``web`` --
the metric the autoscaling case study then uses.
"""

from conftest import print_table


def test_fig6_dependency_graph(benchmark, sharelatex_result):
    result = sharelatex_result

    def compute():
        graph = result.dependency_graph
        return {
            "edges": graph.component_edges(),
            "hub": graph.most_connected_metric(component="web"),
            "hub_global": graph.most_connected_metric(),
            "relations": len(graph),
        }

    stats = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [[src, dst, count] for src, dst, count in stats["edges"]]
    print_table("Figure 6: ShareLatex dependency graph (component edges)",
                ["Caller side", "Callee side", "# metric relations"], rows)
    hub_component, hub_metric = stats["hub"]
    print(f"most connected web metric: {hub_component}/{hub_metric}")
    print(f"paper's highlighted metric: web/http-requests_Project_id_"
          f"GET_mean")
    print(f"total metric relations: {stats['relations']}")

    edge_pairs = {(src, dst) for src, dst, _ in stats["edges"]}
    # The spine of the architecture must be present.
    assert any("web" in pair for pair in edge_pairs)
    assert any("mongodb" in pair for pair in edge_pairs)
    assert any("redis" in pair for pair in edge_pairs)
    # The guiding metric is one of web's request statistics, like the
    # paper's http-requests_Project_id_GET_mean.
    assert hub_component == "web"
    assert stats["relations"] > 20
