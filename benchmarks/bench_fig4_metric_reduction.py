"""Figure 4 / Section 6.1.2: metrics before vs after Sieve's reduction.

Paper: 889 unique ShareLatex metrics reduce to 65 representative
metrics on average (per-component bars in Figure 4); reduction is an
order of magnitude or more (10-100x across applications).
"""

from conftest import print_table

PAPER_BEFORE, PAPER_AFTER = 889, 65


def test_fig4_metric_reduction(benchmark, sharelatex_result):
    result = sharelatex_result

    def compute():
        return result.reduction_by_component()

    per_component = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        [component, before, after]
        for component, (before, after) in sorted(per_component.items())
    ]
    total_before = result.total_metrics()
    total_after = result.total_representatives()
    rows.append(["TOTAL", total_before, total_after])
    rows.append(["(paper)", PAPER_BEFORE, PAPER_AFTER])
    print_table("Figure 4: metrics before/after clustering per component",
                ["Component", "Before", "After"], rows)
    print(f"reduction factor: {result.reduction_factor():.1f}x "
          f"(paper: {PAPER_BEFORE / PAPER_AFTER:.1f}x)")

    assert total_after < total_before / 5
    for component, (before, after) in per_component.items():
        assert after <= 7, component
