"""Tiered retention: on-disk footprint and cold-query cost.

Sizes what the retention schedule buys: the canonical
``1000s:full,4000s:1m,inf:10m`` ladder applied to a long synthetic
stream on the spill and sqlite backends, reporting the scheduled vs
full-resolution on-disk footprint (the headline >= 5x reduction),
migration cost, and what cold reads pay afterwards (full-range
``query_rollup`` scans and hot-horizon raw range queries).

Writes ``BENCH_retention.json`` with the headline numbers.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.persistence import SpillBackend, SqliteBackend

from conftest import print_table

SCHEDULE = "1000s:full,4000s:1m,inf:10m"
N_SERIES = 8
CADENCE = 0.5
SPAN = 20_000.0
BATCH = 2000

RESULTS_PATH = "BENCH_retention.json"
_results: dict = {}


def _fill(backend):
    t = np.arange(0.0, SPAN, CADENCE)
    for s in range(N_SERIES):
        rng = np.random.default_rng(100 + s)
        v = np.cumsum(rng.standard_normal(t.size))
        for lo in range(0, t.size, BATCH):
            backend.write(f"component_{s % 4}", f"metric_{s}",
                          t[lo:lo + BATCH], v[lo:lo + BATCH])
    backend.flush()
    return t


def _tree_bytes(path):
    path = Path(path)
    if path.is_file():
        return path.stat().st_size
    return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())


def _make(kind, tmp_path, schedule, name):
    if kind == "spill":
        return SpillBackend(tmp_path / name, hot_points=2048,
                            schedule=schedule)
    return SqliteBackend(tmp_path / f"{name}.db", schedule=schedule)


def _store_path(kind, tmp_path, name):
    return tmp_path / name if kind == "spill" \
        else tmp_path / f"{name}.db"


def test_retention_footprint_and_cold_queries(tmp_path):
    n_points = int(N_SERIES * SPAN / CADENCE)
    rows = []
    for kind in ("spill", "sqlite"):
        full = _make(kind, tmp_path, None, f"{kind}-full")
        tiered = _make(kind, tmp_path, SCHEDULE, f"{kind}-tiered")
        t = _fill(full)
        _fill(tiered)
        full.compact()  # merge small segments: a fair baseline

        t0 = time.perf_counter()
        tiered.compact()
        compact_s = time.perf_counter() - t0

        # Close before measuring: sqlite holds pages in the WAL
        # sidecar until checkpoint, spill holds hot tails in RAM.
        full.close()
        tiered.close()
        full_bytes = _tree_bytes(_store_path(kind, tmp_path,
                                             f"{kind}-full"))
        tiered_bytes = _tree_bytes(_store_path(kind, tmp_path,
                                               f"{kind}-tiered"))
        reduction = full_bytes / tiered_bytes

        reopened = _make(kind, tmp_path, SCHEDULE, f"{kind}-tiered")
        t0 = time.perf_counter()
        represented = 0
        for s in range(N_SERIES):
            rolled = reopened.query_rollup(
                f"component_{s % 4}", f"metric_{s}",
                float("-inf"), float("inf"))
            represented += rolled.total_samples()
        cold_s = time.perf_counter() - t0
        assert represented == n_points  # nothing lost, nothing doubled

        newest = float(t[-1])
        t0 = time.perf_counter()
        for s in range(N_SERIES):
            ts = reopened.query(f"component_{s % 4}", f"metric_{s}",
                                newest - 1000.0, newest)
            assert len(ts) == 2001  # raw resolution inside the horizon
        hot_s = time.perf_counter() - t0
        reopened.close()

        _results[kind] = {
            "full_bytes": full_bytes,
            "tiered_bytes": tiered_bytes,
            "footprint_reduction": round(reduction, 2),
            "compact_s": round(compact_s, 4),
            "cold_scan_ms": round(1000.0 * cold_s / N_SERIES, 3),
            "hot_query_ms": round(1000.0 * hot_s / N_SERIES, 3),
        }
        rows.append([kind, f"{full_bytes:,}", f"{tiered_bytes:,}",
                     f"{reduction:.1f}x", round(compact_s, 3),
                     round(1000.0 * cold_s / N_SERIES, 3)])
        # The acceptance floor: the canonical schedule must shrink
        # the store at least 5x on a long stream.
        assert reduction >= 5.0, f"{kind}: only {reduction:.1f}x"

    print_table(
        "Tiered retention footprint",
        ["backend", "full bytes", "tiered bytes", "reduction",
         "compact s", "cold scan ms"],
        rows,
    )
    with open(RESULTS_PATH, "w") as fh:
        json.dump({"name": "retention_footprint", "points": n_points,
                   "series": N_SERIES, "schedule": SCHEDULE,
                   **_results}, fh, indent=2)
    print(f"results written to {RESULTS_PATH}")
