"""Table 5: OpenStack components ranked by metric novelty (C vs F).

Paper (bug #1533942, Rally boot_and_delete x100):

    Component         Changed (New/Disc)   Total   Final rank
    Nova API          29 (7/22)            59      1
    Nova libvirt      21 (0/21)            39      2
    Nova scheduler    14 (7/7)             30      -
    Neutron server    12 (2/10)            42      3
    RabbitMQ          11 (5/6)             57      4
    ...                                            ...
    Totals            113 (22/91)          508
"""

from repro.rca import RCAEngine

from conftest import print_table

PAPER_TOP = [
    ("nova-api", 29, 59),
    ("nova-libvirt", 21, 39),
    ("nova-scheduler", 14, 30),
    ("neutron-server", 12, 42),
    ("rabbitmq", 11, 57),
]


def test_table5_rca_rankings(benchmark, openstack_pair):
    correct, faulty = openstack_pair

    def compare():
        return RCAEngine().compare(correct, faulty, threshold=0.5)

    report = benchmark.pedantic(compare, rounds=1, iterations=1)

    final_rank = {c.component: c.rank for c in report.final_ranking}
    rows = []
    for diff in report.component_ranking:
        rows.append([
            diff.component,
            f"{diff.novelty_score} ({len(diff.new)}/{len(diff.discarded)})",
            diff.total_metrics,
            final_rank.get(diff.component, "-"),
        ])
    totals_changed = sum(d.novelty_score for d in report.component_ranking)
    totals_new = sum(len(d.new) for d in report.component_ranking)
    totals_disc = sum(len(d.discarded) for d in report.component_ranking)
    totals_all = sum(d.total_metrics for d in report.diffs.values())
    rows.append(["TOTALS",
                 f"{totals_changed} ({totals_new}/{totals_disc})",
                 totals_all, "-"])
    rows.append(["(paper totals row)", "113 (22/91)", 508, "-"])
    print_table("Table 5: components by metric novelty (C vs F)",
                ["Component", "Changed (New/Disc)", "Total", "Final rank"],
                rows)
    print("note: the paper's printed totals row (113/22/91/508) does not "
          "equal the sum of its own listed rows (120/22/98/506); we "
          "reproduce the rows.")

    # The paper's top-5 novelty ordering must reproduce exactly, and
    # the column sums must match the sum of the paper's listed rows.
    ours_top = [(d.component, d.novelty_score, d.total_metrics)
                for d in report.component_ranking[:5]]
    assert ours_top == PAPER_TOP
    assert totals_changed == 120
    assert totals_new == 22 and totals_disc == 98
    assert totals_all == 506
