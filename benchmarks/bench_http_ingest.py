"""HTTP ingest throughput: the live operations surface under load.

Measures the full ``POST /ingest`` path -- HTTP parsing, strict
payload decoding, source sequencing, bus publish and the watermark
``offer`` that may run a window analysis -- over a single keep-alive
connection, the shape one collector agent produces.  Three numbers:

* ``json_ingest_points_per_sec`` -- sequenced JSON envelopes carrying
  pre-batched point runs (the high-throughput shape);
* ``text_ingest_points_per_sec`` -- Prometheus text exposition, one
  sample per line (the drop-in scrape-forwarding shape);
* ``query_requests_per_sec`` -- ``GET /api/clusters`` while the
  engine holds analyzed windows (the read side must stay cheap).

Writes ``BENCH_http_ingest.json``; the CI regression gate compares
the ``*_per_sec`` keys against the committed baseline.
"""

import http.client
import json
import time

from repro.api import PipelineBuilder

from conftest import print_table

RESULTS_PATH = "BENCH_http_ingest.json"

JSON_REQUESTS = 300
POINTS_PER_RUN = 40
TEXT_REQUESTS = 200
TEXT_SAMPLES = 32
QUERY_REQUESTS = 400

_results: dict = {}


def _session():
    return (PipelineBuilder("bench-http").mode("serve")
            .workload("constant", rate=10.0)
            .streaming(window=20.0, hop=10.0, retention=120.0,
                       min_window_samples=8)
            .service(port=0, clock="ingest")
            .duration(60).seed(5).build())


def _connect(session):
    server = session.server
    return http.client.HTTPConnection(server.host, server.port,
                                      timeout=30)


def _post(conn, path, body, content_type):
    conn.request("POST", path, body=body,
                 headers={"Content-Type": content_type})
    response = conn.getresponse()
    payload = response.read()
    assert response.status == 200, payload
    return payload


def test_json_ingest_throughput():
    """Sequenced JSON point runs over one keep-alive connection."""
    session = _session()
    conn = _connect(session)
    try:
        step = 0.5 / POINTS_PER_RUN
        started = time.perf_counter()
        for index in range(JSON_REQUESTS):
            base = index * 0.5
            times = [base + i * step for i in range(POINTS_PER_RUN)]
            body = json.dumps({
                "source": "bench", "seq": index,
                "batches": [
                    {"component": component, "metric": "cpu",
                     "times": times,
                     "values": [0.5 + 0.001 * (index % 50)]
                     * POINTS_PER_RUN}
                    for component in ("front", "back")
                ],
            })
            _post(conn, "/ingest", body, "application/json")
        elapsed = time.perf_counter() - started
        points = JSON_REQUESTS * 2 * POINTS_PER_RUN
        assert session.engine.stats.windows >= 1
        _results["json_ingest_points_per_sec"] = round(
            points / elapsed, 1)
        _results["json_ingest_windows"] = session.engine.stats.windows
    finally:
        conn.close()
        session.close()


def test_text_ingest_throughput():
    """Prometheus text exposition, one sample per line."""
    session = _session()
    conn = _connect(session)
    try:
        started = time.perf_counter()
        for index in range(TEXT_REQUESTS):
            base = index * 0.5
            lines = [
                f'metric_{sample % 8}{{component="front"}} '
                f'{0.5 + 0.001 * sample} {base + sample * 0.01}'
                for sample in range(TEXT_SAMPLES)
            ]
            _post(conn, "/ingest", "\n".join(lines) + "\n",
                  "text/plain")
        elapsed = time.perf_counter() - started
        points = TEXT_REQUESTS * TEXT_SAMPLES
        _results["text_ingest_points_per_sec"] = round(
            points / elapsed, 1)
    finally:
        conn.close()
        session.close()


def test_query_throughput():
    """GET /api/clusters against a warm engine."""
    session = _session()
    conn = _connect(session)
    try:
        # Feed enough windows that queries return real payloads.
        for index in range(60):
            body = json.dumps([
                {"component": component, "time": index * 0.5,
                 "metrics": {"cpu": 0.5, "mem": 100.0, "net": 5.0}}
                for component in ("front", "back")
            ])
            _post(conn, "/ingest", body, "application/json")
        assert session.engine.stats.windows >= 1

        started = time.perf_counter()
        for _ in range(QUERY_REQUESTS):
            conn.request("GET", "/api/clusters")
            response = conn.getresponse()
            payload = response.read()
            assert response.status == 200
        elapsed = time.perf_counter() - started
        assert json.loads(payload)["window"] is not None
        _results["query_requests_per_sec"] = round(
            QUERY_REQUESTS / elapsed, 1)
    finally:
        conn.close()
        session.close()

    print_table(
        "HTTP operations surface throughput",
        ["metric", "value"],
        [[key, value] for key, value in sorted(_results.items())],
    )
    with open(RESULTS_PATH, "w") as fh:
        json.dump({"name": "http_ingest", **_results}, fh, indent=2)
    print(f"results written to {RESULTS_PATH}")
