"""Table 4: autoscaling with CPU usage vs Sieve's metric selection.

Paper (1 h WorldCup'98 trace, SLA: p90 latency < 1000 ms):

    Mean CPU usage per component:   5.98 -> 9.26   (+54.8%)
    SLA violations (of 1400):       188  -> 70     (-62.8%)
    Scaling actions:                32   -> 21     (-34.4%)

Thresholds come from the iterative peak-window calibration of §6.2
(their refined values: CPU 21%/1%, latency metric 1400 ms/1120 ms).
Our replay uses a shorter trace (30 min) to keep the suite fast; the
reported quantities are the same three rows.
"""

from repro.apps import build_sharelatex_application
from repro.autoscaling import (
    SLACondition,
    ScalingRule,
    calibrate_thresholds,
    run_autoscaling,
)
from repro.workload import WorldCupTrace, constant_rate

from conftest import print_table

TRACE_DURATION = 1800.0
REPLAY_SEEDS = (21, 22, 23)
SCALED = "web"
PAPER = {
    "cpu": {"mean_cpu": 5.98, "violations": 188, "actions": 32},
    "sieve": {"mean_cpu": 9.26, "violations": 70, "actions": 21},
}


def _run_with_metric(metric_component: str, metric: str, seed: int):
    trace = WorldCupTrace(duration=TRACE_DURATION, seed=seed)
    application = build_sharelatex_application()
    peak_start, _ = trace.peak_window()
    peak = constant_rate(trace.rate(peak_start + 1.0))
    thresholds = calibrate_thresholds(
        application, peak, SCALED, metric_component, metric,
        sla=SLACondition(), duration=45.0, seed=seed,
    )
    totals = {"mean_cpu": 0.0, "violations": 0, "actions": 0, "samples": 0}
    for replay_seed in REPLAY_SEEDS:
        rule = ScalingRule(
            component=SCALED, metric_component=metric_component,
            metric=metric,
            scale_up_threshold=thresholds.scale_up,
            scale_down_threshold=thresholds.scale_down,
            min_instances=1, max_instances=10,
        )
        outcome = run_autoscaling(
            build_sharelatex_application(),
            WorldCupTrace(duration=TRACE_DURATION, seed=replay_seed),
            rule, duration=TRACE_DURATION, seed=replay_seed,
        )
        totals["mean_cpu"] += outcome.mean_cpu_per_component
        totals["violations"] += outcome.sla_violations
        totals["actions"] += outcome.scaling_actions
        totals["samples"] += outcome.sla_samples
    totals["mean_cpu"] /= len(REPLAY_SEEDS)
    return thresholds, totals


def test_table4_autoscaling(benchmark):
    def run_experiment():
        cpu = _run_with_metric(SCALED, "cpu_usage", seed=7)
        sieve = _run_with_metric(
            SCALED, "http-requests_Project_id_GET_mean", seed=7
        )
        return cpu, sieve

    (cpu_thresholds, cpu), (sieve_thresholds, sieve) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    def diff(a, b):
        return f"{100.0 * (b - a) / a:+.1f} %" if a else "n/a"

    rows = [
        ["Mean CPU usage per component",
         f"{cpu['mean_cpu']:.2f}", f"{sieve['mean_cpu']:.2f}",
         diff(cpu["mean_cpu"], sieve["mean_cpu"]), "+54.8 %"],
        [f"SLA violations (of {cpu['samples']})",
         cpu["violations"], sieve["violations"],
         diff(cpu["violations"], sieve["violations"])
         if cpu["violations"] else "n/a", "-62.8 %"],
        ["Number of scaling actions",
         cpu["actions"], sieve["actions"],
         diff(cpu["actions"], sieve["actions"]), "-34.4 %"],
    ]
    print_table("Table 4: CPU-usage trigger vs Sieve's metric",
                ["Metric", "CPU usage", "Sieve", "Diff", "Paper diff"],
                rows)
    print(f"calibrated CPU thresholds: up {cpu_thresholds.scale_up:.1f}% "
          f"/ down {cpu_thresholds.scale_down:.1f}% "
          f"(paper: 21% / 1%)")
    print(f"calibrated Sieve thresholds: up {sieve_thresholds.scale_up:.0f}"
          f"ms / down {sieve_thresholds.scale_down:.0f}ms "
          f"(paper: 1400ms / 1120ms)")

    # Shape assertions: Sieve's metric needs far fewer scaling actions,
    # keeps the SLA essentially intact (violation counts at this scale
    # are single digits out of thousands of samples -- we bound the
    # rate rather than compare noise-level counts), and matches or
    # beats the CPU rule's efficiency.
    assert sieve["actions"] < cpu["actions"]
    assert sieve["violations"] <= max(cpu["violations"],
                                      0.01 * sieve["samples"])
    assert sieve["mean_cpu"] >= 0.95 * cpu["mean_cpu"]
