"""Figure 3: clustering consistency across randomized runs (AMI).

The paper loads ShareLatex with random workloads in independent runs,
clusters each component's metrics per run, and reports the pairwise
Adjusted Mutual Information of the assignments per component.  Average
AMI in the paper: 0.597 -- "better than random assignments", i.e. the
clusterings are consistent.
"""

import numpy as np

from repro.clustering import reduce_frame
from repro.stats import adjusted_mutual_info

from conftest import print_table

PAPER_MEAN_AMI = 0.597


def _common_label_vectors(clustering_a, clustering_b):
    """Cluster labels over the metrics both runs clustered."""
    labels_a = clustering_a.labels()
    labels_b = clustering_b.labels()
    common = sorted(set(labels_a) & set(labels_b))
    if len(common) < 2:
        return None, None
    return ([labels_a[m] for m in common], [labels_b[m] for m in common])


def test_fig3_ami_consistency(benchmark, sharelatex_repeated_runs):
    def compute():
        clusterings = [
            reduce_frame(loaded.frame, seed=0)
            for _sieve, loaded in sharelatex_repeated_runs
        ]
        pairs = [(0, 1), (0, 2), (1, 2)]
        scores: dict[str, dict[tuple, float]] = {}
        for i, j in pairs:
            for component in clusterings[i]:
                a, b = _common_label_vectors(
                    clusterings[i][component], clusterings[j][component]
                )
                if a is None:
                    continue
                scores.setdefault(component, {})[(i, j)] = \
                    adjusted_mutual_info(a, b)
        return scores

    scores = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    all_values = []
    for component in sorted(scores):
        per_pair = scores[component]
        values = [per_pair.get(p, float("nan")) for p in
                  [(0, 1), (0, 2), (1, 2)]]
        all_values.extend(v for v in values if not np.isnan(v))
        rows.append([component] + [f"{v:.3f}" for v in values])
    mean_ami = float(np.mean(all_values))
    rows.append(["MEAN", f"{mean_ami:.3f}", "", ""])
    print_table(
        "Figure 3: pairwise AMI of cluster assignments "
        f"(paper mean {PAPER_MEAN_AMI})",
        ["Component", "AMI(1,2)", "AMI(1,3)", "AMI(2,3)"], rows,
    )
    # The paper's bar is "clearly better than random" (AMI ~0 for random).
    assert mean_ami > 0.3
