"""Self-telemetry overhead: the observability tax, on and off.

The obs subsystem's contract is that monitoring the engine must obey
the paper's own thesis about monitoring: cheap enough to leave on, and
*free* when off.  Two measurements check it:

* **end-to-end streaming wall time** with telemetry disabled vs
  enabled -- the full instrumented path (bus flush spans, analyzer
  phases, per-window trace cuts, scrape-time collectors are idle);
* **hot-path instrument costs** -- nanoseconds per null-instrument
  call (the disabled path every call site pays), per real counter
  increment, per histogram observation and per recorded span.

Writes ``BENCH_telemetry.json`` with the headline numbers; the CI
regression gate compares the ``*_s`` keys against the committed
baseline.
"""

import json
import time

from repro.core import StreamingConfig
from repro.obs import Telemetry, TelemetryRegistry
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.streaming import SimulationStreamDriver, StreamingSieve
from repro.workload import constant_rate

from conftest import print_table

STREAM_SECONDS = 60.0
HOT_CALLS = 200_000

RESULTS_PATH = "BENCH_telemetry.json"
_results: dict = {}


def _chain_app():
    def spec(name, **kwargs):
        defaults = dict(kind="generic",
                        endpoints=(EndpointSpec("op", service_time=0.02),),
                        concurrency=16)
        defaults.update(kwargs)
        return ComponentSpec(name=name, **defaults)

    return Application("bench", [
        spec("front", calls=(CallSpec("mid", delay=0.4),)),
        spec("mid", calls=(CallSpec("back", delay=0.4),)),
        spec("back"),
    ])


def _stream(telemetry=None):
    config = StreamingConfig(window=20.0, hop=10.0, retention=120.0)
    engine = StreamingSieve(config=config, seed=5, telemetry=telemetry)
    driver = SimulationStreamDriver(
        _chain_app(), constant_rate(40.0), config=config, seed=5,
        record_frame=False, engine=engine,
    )
    driver.run(STREAM_SECONDS)
    return driver


def test_streaming_telemetry_disabled(benchmark):
    """The default path: no instruments, no traces, no collectors."""
    driver = benchmark.pedantic(_stream, rounds=1, iterations=1)
    assert not driver.engine.telemetry.enabled
    _results["stream_disabled_s"] = round(benchmark.stats.stats.mean, 3)
    _results["windows"] = driver.engine.stats.windows


def test_streaming_telemetry_enabled(benchmark):
    """The fully instrumented path, scrape server not running."""
    driver = benchmark.pedantic(lambda: _stream(Telemetry()),
                                rounds=1, iterations=1)
    telemetry = driver.engine.telemetry
    assert telemetry.enabled
    assert len(telemetry.tracer) == driver.engine.stats.windows
    enabled = round(benchmark.stats.stats.mean, 3)
    disabled = _results.get("stream_disabled_s", enabled)
    overhead = (enabled / disabled - 1.0) * 100.0 if disabled else 0.0
    _results["stream_enabled_s"] = enabled
    _results["telemetry_overhead_percent"] = round(overhead, 2)
    print_table(
        "Streaming wall time, telemetry off vs on",
        ["telemetry", "seconds", "overhead"],
        [["disabled", disabled, "-"],
         ["enabled", enabled, f"{overhead:+.1f}%"]],
    )


def test_instrument_hot_path_costs():
    """Per-call cost of the disabled and enabled instrument paths."""
    disabled = TelemetryRegistry(enabled=False)
    null_counter = disabled.counter("repro_bench_total", "bench")
    enabled = TelemetryRegistry()
    counter = enabled.counter("repro_bench_total", "bench")
    histogram = enabled.histogram("repro_bench_seconds", "bench")
    telemetry = Telemetry()

    def per_call_ns(fn, calls=HOT_CALLS):
        started = time.perf_counter()
        for _ in range(calls):
            fn()
        return (time.perf_counter() - started) / calls * 1e9

    def one_span():
        with telemetry.tracer.span("ingest"):
            pass

    costs = {
        "null_inc_ns": per_call_ns(null_counter.inc),
        "counter_inc_ns": per_call_ns(counter.inc),
        "histogram_observe_ns":
            per_call_ns(lambda: histogram.observe(0.003)),
        "span_record_ns": per_call_ns(one_span, calls=20_000),
    }
    for key, value in costs.items():
        _results[key] = round(value, 1)
    print_table(
        "Instrument hot-path cost",
        ["operation", "ns/call"],
        [[key, round(value, 1)] for key, value in costs.items()],
    )
    # The disabled path must stay a fraction of a real increment's
    # cost -- it is what every call site pays when telemetry is off.
    assert costs["null_inc_ns"] < costs["histogram_observe_ns"]

    with open(RESULTS_PATH, "w") as fh:
        json.dump({"name": "telemetry_overhead", **_results}, fh,
                  indent=2)
    print(f"results written to {RESULTS_PATH}")
