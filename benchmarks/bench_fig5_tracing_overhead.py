"""Figure 5: call-graph capture overhead (10k HTTP requests on nginx).

Paper: completing 10 000 small static-file requests takes ~7% longer
under tcpdump and ~22% longer under sysdig than natively; sysdig is
chosen because it maps events to processes/containers, which tcpdump
cannot.
"""

from repro.apps import run_ab_benchmark

from conftest import print_table

PAPER_FACTORS = {"native": 1.0, "tcpdump": 1.07, "sysdig": 1.22}


def test_fig5_tracing_overhead(benchmark):
    def run_all():
        return {
            name: run_ab_benchmark(name, n_requests=10_000, concurrency=8,
                                   seed=3)
            for name in ("native", "tcpdump", "sysdig", "ptrace")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    native_time = results["native"].completion_time

    rows = []
    for name, outcome in results.items():
        factor = outcome.completion_time / native_time
        paper = PAPER_FACTORS.get(name, "--")
        rows.append([
            name,
            f"{outcome.completion_time:.3f}",
            f"{factor:.3f}",
            paper,
            f"{outcome.throughput:,.0f}",
        ])
    print_table(
        "Figure 5: time to complete 10k requests under each tracer",
        ["Technique", "Time [s]", "Slowdown", "Paper slowdown", "req/s"],
        rows,
    )

    assert results["native"].completion_time \
        < results["tcpdump"].completion_time \
        < results["sysdig"].completion_time \
        < results["ptrace"].completion_time
    sysdig_factor = results["sysdig"].completion_time / native_time
    tcpdump_factor = results["tcpdump"].completion_time / native_time
    assert abs(tcpdump_factor - 1.07) < 0.03
    assert abs(sysdig_factor - 1.22) < 0.04
