"""Figure 8: final edge differences between the top-5 components.

Paper (similarity threshold 0.50): the surviving edge set between the
top-5 novelty components includes a *new* edge whose Nova-API endpoint
cluster swapped ``nova-instances-in-state-ACTIVE`` for
``nova-instances-in-state-ERROR`` and whose Neutron endpoint aggregates
VM-networking metrics including ``neutron-ports-in-status-DOWN`` --
pointing straight at the root cause.
"""

from repro.rca import RCAEngine

from conftest import print_table

TOP5 = ("nova-api", "nova-libvirt", "nova-scheduler", "neutron-server",
        "rabbitmq")


def _cluster_metrics(result, component, cluster_idx):
    clustering = result.clusterings.get(component)
    if clustering is None:
        return []
    for cluster in clustering.clusters:
        if cluster.index == cluster_idx:
            return cluster.metrics
    return []


def test_fig8_edge_diffs(benchmark, openstack_pair):
    correct, faulty = openstack_pair

    def compare():
        return RCAEngine().compare(correct, faulty, threshold=0.5)

    report = benchmark.pedantic(compare, rounds=1, iterations=1)
    classification = report.edge_classifications[0.5]

    def within_top5(edge):
        return edge.source_component in TOP5 \
            and edge.target_component in TOP5

    rows = []
    highlight_metrics = set()
    for kind, edges in (("new", classification.new),
                        ("discarded", classification.discarded),
                        ("novel endpoint", classification.novel_endpoint)):
        for edge in edges:
            if not within_top5(edge):
                continue
            version = correct if kind == "discarded" else faulty
            src_metrics = _cluster_metrics(
                version, edge.source_component, edge.source_cluster)
            dst_metrics = _cluster_metrics(
                version, edge.target_component, edge.target_cluster)
            interesting = [m for m in src_metrics + dst_metrics
                           if "ERROR" in m or "DOWN" in m
                           or "fail" in m.lower()]
            highlight_metrics.update(interesting)
            rows.append([
                kind,
                f"{edge.source_component}#{edge.source_cluster}",
                f"{edge.target_component}#{edge.target_cluster}",
                f"{len(src_metrics)}+{len(dst_metrics)}",
                ", ".join(interesting[:2]) or "-",
            ])
    for c_edge, f_edge in classification.lag_changed:
        if within_top5(f_edge):
            rows.append([
                "lag change",
                f"{f_edge.source_component}#{f_edge.source_cluster}",
                f"{f_edge.target_component}#{f_edge.target_cluster}",
                f"{c_edge.lag} -> {f_edge.lag}", "-",
            ])
    print_table(
        "Figure 8: edge differences among top-5 components (thr 0.50)",
        ["Kind", "Source cluster", "Target cluster", "Metrics",
         "Highlights"], rows,
    )
    print("paper's key finding: a new edge joins the Nova-API cluster "
          "holding nova_instances_in_state_ERROR with Neutron's "
          "VM-networking cluster (neutron_ports_in_status_DOWN)")

    # The root-cause metrics surface among the top-5 edge differences.
    assert rows, "no edge differences among the top-5 components"
    assert any("ERROR" in m for m in highlight_metrics)
    assert any("DOWN" in m for m in highlight_metrics)
