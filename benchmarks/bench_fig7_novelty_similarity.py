"""Figure 7: cluster novelty, edge novelty and implicated state vs the
similarity threshold.

Paper: (a) the novel metrics concentrate in 27 of 67 clusters;
(b) raising the similarity threshold shrinks the novel-edge set
(42 edges at no threshold, 24 at 0.50); (c) the implicated state
shrinks from 13 components / 29 clusters / 221 metrics (threshold 0)
to 10 / 16 / 163 (threshold 0.50).
"""

from repro.rca import RCAEngine

from conftest import print_table

THRESHOLDS = (0.0, 0.5, 0.6, 0.7)
PAPER_7C = {0.0: (13, 29, 221), 0.5: (10, 16, 163),
            0.6: (7, 10, 121), 0.7: (3, 5, 68)}


def test_fig7_novelty_similarity(benchmark, openstack_pair):
    correct, faulty = openstack_pair

    def compare():
        return RCAEngine(thresholds=THRESHOLDS).compare(
            correct, faulty, threshold=0.5
        )

    report = benchmark.pedantic(compare, rounds=1, iterations=1)

    # (a) cluster novelty histogram.
    histogram = report.cluster_novelty_histogram()
    rows_a = [
        ["New", histogram.get("new", 0)],
        ["Discarded", histogram.get("discarded", 0)],
        ["New and discarded", histogram.get("new_and_discarded", 0)],
        ["Changed", histogram.get("changed", 0)],
        ["Unchanged", histogram.get("unchanged", 0)],
        ["Total", histogram.get("total", 0)],
    ]
    print_table("Figure 7(a): cluster novelty categories",
                ["Category", "# clusters"], rows_a)

    # (b) edge classes per threshold.
    rows_b = []
    for threshold in THRESHOLDS:
        counts = report.edge_classifications[threshold].counts()
        rows_b.append([threshold, counts["new"], counts["discarded"],
                       counts["lag_changed"], counts["novel_endpoint"],
                       counts["unchanged"]])
    print_table("Figure 7(b): edge novelty vs similarity threshold",
                ["Threshold", "New", "Discarded", "Lag change",
                 "Novel endpoint", "Unchanged"], rows_b)

    # (c) implicated components / clusters / metrics per threshold.
    rows_c = []
    for threshold in THRESHOLDS:
        state = report.implicated_state(threshold)
        paper = PAPER_7C[threshold]
        rows_c.append([
            threshold, state["components"], state["clusters"],
            state["metrics"],
            f"{paper[0]}/{paper[1]}/{paper[2]}",
        ])
    print_table("Figure 7(c): implicated state vs similarity threshold",
                ["Threshold", "Components", "Clusters", "Metrics",
                 "Paper (c/cl/m)"], rows_c)

    # Shape: novel clusters exist but are a minority; the filter
    # monotonically shrinks the implicated state.
    novel = (histogram.get("new", 0) + histogram.get("discarded", 0)
             + histogram.get("new_and_discarded", 0))
    assert 0 < novel < histogram["total"]
    metrics_series = [report.implicated_state(t)["metrics"]
                      for t in THRESHOLDS]
    assert all(a >= b for a, b in zip(metrics_series, metrics_series[1:]))
    edges_series = [
        len(report.edge_classifications[t].interesting_edges())
        for t in THRESHOLDS
    ]
    assert all(a >= b for a, b in zip(edges_series, edges_series[1:]))
