"""Table 1: metrics exposed by microservices-based applications.

Paper values: ShareLatex 889 metrics, OpenStack 17 608 metrics (plus
industry anecdotes: Netflix/Quantcast ~2M, Uber ~500M).  We report the
metric surface of our two application models.
"""

from repro.apps import (
    build_openstack_application,
    build_sharelatex_application,
    full_metric_catalog,
)
from repro.workload import constant_rate

from conftest import print_table

PAPER = {"sharelatex": 889, "openstack": 17_608}


def _count_metrics() -> dict[str, int]:
    sharelatex = build_sharelatex_application()
    run = sharelatex.load(constant_rate(25.0), duration=30.0, seed=0)
    openstack_live = build_openstack_application()
    run_os = openstack_live.load(constant_rate(20.0), duration=30.0, seed=0)
    return {
        "sharelatex": run.metric_count(),
        "openstack (live control plane)": run_os.metric_count(),
        "openstack (full telemetry catalog)": len(full_metric_catalog()),
    }


def test_table1_metric_counts(benchmark):
    counts = benchmark.pedantic(_count_metrics, rounds=1, iterations=1)
    rows = [
        ["ShareLatex", counts["sharelatex"], PAPER["sharelatex"]],
        ["OpenStack (live 16-component plane)",
         counts["openstack (live control plane)"], "--"],
        ["OpenStack (full telemetry catalog)",
         counts["openstack (full telemetry catalog)"],
         PAPER["openstack"]],
    ]
    print_table("Table 1: metrics exposed per application",
                ["Application", "Measured", "Paper"], rows)
    assert 700 <= counts["sharelatex"] <= 1000
    assert counts["openstack (full telemetry catalog)"] == 17_608
