"""Ablation benchmarks for Sieve's design choices (DESIGN.md §5).

Not figures from the paper, but measurements backing its design
arguments:

* the call-graph restriction shrinks the Granger search space
  (Section 3.3's argument against the naive all-pairs approach);
* the metric reduction multiplies that saving;
* Jaro name-similarity initialization converges k-Shape in fewer
  iterations than random initialization (Section 3.2);
* the variance pre-filter removes a meaningful share of metrics before
  clustering;
* the bidirectional-edge filter drops mutually-causal (spurious)
  relations.
"""

import numpy as np

from repro.causality.pairwise import extract_dependencies, naive_pair_count
from repro.clustering import kshape, name_based_labels
from repro.clustering.model_selection import sbd_matrix
from repro.stats.timeseries_ops import znormalize

from conftest import print_table


def test_ablation_callgraph_restriction(benchmark, sharelatex_result):
    """How much search space the call graph + reduction save."""
    result = sharelatex_result

    def compute():
        n_components = len(result.clusterings)
        mean_metrics = np.mean([
            c.total_metrics for c in result.clusterings.values()
        ])
        mean_reps = np.mean([
            c.n_clusters for c in result.clusterings.values()
        ])
        naive = naive_pair_count(n_components, int(mean_metrics))
        reduced_metrics_only = naive_pair_count(n_components,
                                                int(round(mean_reps)))
        edges = len(result.run.call_graph.communicating_pairs())
        actual = int(edges * mean_reps * mean_reps * 2)
        return naive, reduced_metrics_only, actual

    naive, reduced, actual = benchmark.pedantic(compute, rounds=1,
                                                iterations=1)
    rows = [
        ["naive all-pairs, all metrics", f"{naive:,}", "1x"],
        ["all pairs, representatives only", f"{reduced:,}",
         f"{naive / reduced:.0f}x"],
        ["call-graph edges, representatives", f"{actual:,}",
         f"{naive / actual:.0f}x"],
    ]
    print_table("Ablation: Granger search space",
                ["Configuration", "Pairwise tests", "Saving"], rows)
    assert actual < reduced < naive


def _metric_families(seed=0, n_families=4, per_family=6, length=160):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 6 * np.pi, length)
    data, names = [], []
    for f in range(n_families):
        base = np.sin((0.7 + 0.9 * f) * t)
        for i in range(per_family):
            data.append(znormalize(base + rng.normal(0, 0.2, length)))
            names.append(f"family{f}_metric_{i}")
    return np.vstack(data), names


def test_ablation_name_initialization(benchmark):
    """Jaro name init converges in fewer iterations than random init."""
    data, names = _metric_families()
    k = 4

    def run_both():
        random_iters, seeded_iters = [], []
        for seed in range(5):
            random_iters.append(
                kshape(data, k, seed=seed).iterations
            )
            init = name_based_labels(names, k)
            seeded_iters.append(
                kshape(data, k, initial_labels=init, seed=seed).iterations
            )
        return float(np.mean(random_iters)), float(np.mean(seeded_iters))

    random_mean, seeded_mean = benchmark.pedantic(run_both, rounds=1,
                                                  iterations=1)
    print_table(
        "Ablation: k-Shape initialization",
        ["Initialization", "Mean iterations to converge"],
        [["random", f"{random_mean:.1f}"],
         ["Jaro name similarity", f"{seeded_mean:.1f}"]],
    )
    assert seeded_mean <= random_mean


def test_ablation_variance_filter(benchmark, sharelatex_result):
    """Share of metrics the variance pre-filter removes."""
    result = sharelatex_result

    def compute():
        filtered = sum(len(c.filtered_metrics)
                       for c in result.clusterings.values())
        total = sum(c.total_metrics for c in result.clusterings.values())
        return filtered, total

    filtered, total = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Ablation: variance pre-filter",
        ["Quantity", "Value"],
        [["metrics before filter", total],
         ["filtered as unvarying", filtered],
         ["share", f"{100.0 * filtered / total:.1f} %"]],
    )
    assert 0 < filtered < total


def test_ablation_bidirectional_filter(benchmark, sharelatex_result):
    """Relations admitted without the bidirectional (spuriousness) filter."""
    result = sharelatex_result
    run = result.run

    def compute():
        unfiltered = extract_dependencies(
            run.frame, run.call_graph, result.clusterings,
            filter_bidirectional=False,
        )
        return len(result.dependency_graph), len(unfiltered)

    kept, unfiltered = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Ablation: bidirectional-edge filter",
        ["Configuration", "Metric relations"],
        [["filter on (Sieve)", kept],
         ["filter off", unfiltered],
         ["suppressed as spurious", unfiltered - kept]],
    )
    assert unfiltered >= kept
