"""Table 3: monitoring-pipeline overhead before/after Sieve's reduction.

Paper (InfluxDB resource usage): CPU time -81.2%, DB size -93.8%,
network in -79.3%, network out -50.7% when only the Sieve-selected
metrics are collected.
"""

from repro.metrics import MetricsStore
from repro.metrics.accounting import reduction_percent

from conftest import print_table

PAPER_REDUCTIONS = {
    "CPU time [s]": 81.2,
    "DB size [KB]": 93.8,
    "Network in [MB]": 79.3,
    "Network out [KB]": 50.7,
}

_ROWS = [
    ("CPU time [s]", "cpu_seconds", 1.0),
    ("DB size [KB]", "db_bytes", 1024.0),
    ("Network in [MB]", "network_in_bytes", 1024.0 * 1024.0),
    ("Network out [KB]", "network_out_bytes", 1024.0),
]


def test_table3_monitoring_overhead(benchmark, sharelatex_result):
    result = sharelatex_result

    def replay_both():
        before = MetricsStore()
        before.replay_frame(result.run.frame)
        before.simulate_dashboard_reads()
        after = MetricsStore()
        after.replay_frame(result.run.frame,
                           keep=result.representative_keys())
        after.simulate_dashboard_reads()
        return before.usage.summary(), after.usage.summary()

    before, after = benchmark.pedantic(replay_both, rounds=1, iterations=1)

    rows = []
    measured = {}
    for label, key, unit in _ROWS:
        saving = reduction_percent(before[key], after[key])
        measured[label] = saving
        rows.append([
            label,
            f"{before[key] / unit:.2f}",
            f"{after[key] / unit:.2f}",
            f"{saving:.1f} %",
            f"{PAPER_REDUCTIONS[label]:.1f} %",
        ])
    print_table("Table 3: monitoring overhead before/after reduction",
                ["Metric", "Before", "After", "Reduction", "Paper"], rows)

    # Shape: heavy savings on ingest-side resources, smaller on egress.
    assert measured["CPU time [s]"] > 60.0
    assert measured["DB size [KB]"] > 70.0
    assert measured["Network in [MB]"] > 60.0
    assert 25.0 < measured["Network out [KB]"] < measured["Network in [MB]"]
