"""Persistence backend throughput: write and scan rates vs in-memory.

Sizes the cost of durability: points/second through each
:class:`~repro.persistence.backend.StorageBackend` on the batched
write path (the ingestion-bus discipline), full-scan throughput for
``to_frame`` (what a replay pays), and range-query latency (what the
window store's backend fallback pays).  Uses plain ``perf_counter``
timing so it runs under vanilla pytest.

Writes ``BENCH_persistence.json`` with the headline numbers.
"""

import json
import time

import numpy as np

from repro.persistence import MemoryBackend, SpillBackend, SqliteBackend

from conftest import print_table

N_SERIES = 40
POINTS_PER_SERIES = 4000
BATCH = 200

RESULTS_PATH = "BENCH_persistence.json"
_results: dict = {}


def _batches():
    """Synthetic ingest stream: per-series batches in time order."""
    rng = np.random.default_rng(11)
    values = rng.random((N_SERIES, POINTS_PER_SERIES))
    out = []
    for start in range(0, POINTS_PER_SERIES, BATCH):
        t = 0.5 * np.arange(start, start + BATCH, dtype=float)
        for s in range(N_SERIES):
            out.append((f"component_{s % 8}", f"metric_{s}",
                        t, values[s, start:start + BATCH]))
    return out


def _make_backends(tmp_path):
    return {
        "memory": MemoryBackend(),
        "sqlite": SqliteBackend(tmp_path / "bench.db"),
        "spill": SpillBackend(tmp_path / "spill", hot_points=2048),
    }


def test_backend_write_and_scan_throughput(tmp_path):
    batches = _batches()
    n_points = N_SERIES * POINTS_PER_SERIES
    rows = []
    for name, backend in _make_backends(tmp_path).items():
        t0 = time.perf_counter()
        for component, metric, t, v in batches:
            backend.write(component, metric, t, v)
        backend.flush()
        write_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        frame = backend.to_frame()
        scan_s = time.perf_counter() - t0
        assert frame.total_samples() == n_points

        t0 = time.perf_counter()
        for s in range(N_SERIES):
            ts = backend.query(f"component_{s % 8}", f"metric_{s}",
                               500.0, 600.0)
            assert len(ts) == 201
        query_s = time.perf_counter() - t0

        write_rate = n_points / write_s
        scan_rate = n_points / max(scan_s, 1e-9)
        _results[name] = {
            "write_points_per_sec": round(write_rate),
            "scan_points_per_sec": round(scan_rate),
            "range_query_ms": round(1000.0 * query_s / N_SERIES, 3),
        }
        rows.append([name, f"{write_rate:,.0f}", f"{scan_rate:,.0f}",
                     round(1000.0 * query_s / N_SERIES, 3)])
        backend.close()

    print_table(
        "Persistence backend throughput",
        ["backend", "write pts/s", "scan pts/s", "range query ms"],
        rows,
    )
    # Durability must stay within an order of magnitude of usable:
    # even the slowest backend has to absorb a healthy scrape load.
    for name, numbers in _results.items():
        assert numbers["write_points_per_sec"] > 10_000, name

    with open(RESULTS_PATH, "w") as fh:
        json.dump({"name": "persistence_throughput",
                   "points": n_points, "series": N_SERIES,
                   **_results}, fh, indent=2)
    print(f"results written to {RESULTS_PATH}")


def test_spill_backend_bounds_ram(tmp_path):
    """The spill tier keeps the hot set bounded while scans stay exact."""
    backend = SpillBackend(tmp_path / "spill", hot_points=512)
    for component, metric, t, v in _batches():
        backend.write(component, metric, t, v)
    assert backend.hot_sample_count() <= N_SERIES * (512 + BATCH)
    assert backend.spills > 0
    assert backend.sample_count() == N_SERIES * POINTS_PER_SERIES
