"""Streaming engine throughput: ingest rate and per-window latency.

Two quantities size the streaming subsystem:

* **ingest throughput** -- points/second through the bus -> window-store
  path (batched, vectorized ring writes).  This bounds how much
  monitored infrastructure one engine process can absorb.
* **per-window analysis latency** -- a full re-cluster of every
  component versus the incremental path (reuse + drift checks only),
  which is the paper's §9 "update the dependency graph incrementally"
  speedup, measured per window.

Writes ``BENCH_streaming.json`` with the headline numbers.
"""

import json
import time

import numpy as np

from repro.core import StreamingConfig
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.streaming import IngestionBus, SimulationStreamDriver, WindowStore
from repro.workload import constant_rate

from conftest import print_table

INGEST_COMPONENTS = 20
INGEST_METRICS = 50
INGEST_SCRAPES = 40

RESULTS_PATH = "BENCH_streaming.json"
_results: dict = {}


def _chain_app():
    def spec(name, **kwargs):
        defaults = dict(kind="generic",
                        endpoints=(EndpointSpec("op", service_time=0.02),),
                        concurrency=16)
        defaults.update(kwargs)
        return ComponentSpec(name=name, **defaults)

    return Application("bench", [
        spec("front", calls=(CallSpec("mid", delay=0.4),)),
        spec("mid", calls=(CallSpec("back", delay=0.4),)),
        spec("back"),
    ])


def test_ingest_throughput(benchmark):
    """Points/second through bus + ring-buffer windows."""
    rng = np.random.default_rng(7)
    scrapes = [
        {f"metric_{m}": float(rng.random())
         for m in range(INGEST_METRICS)}
        for _ in range(INGEST_SCRAPES)
    ]
    n_points = INGEST_COMPONENTS * INGEST_METRICS * INGEST_SCRAPES

    def ingest():
        bus = IngestionBus()
        store = WindowStore(retention=1e9, max_points_per_series=1 << 16)
        bus.subscribe(store)
        t = 0.0
        for batch in scrapes:
            for c in range(INGEST_COMPONENTS):
                bus.publish(f"component_{c}", t, batch)
            t += 0.5
        bus.flush()
        return store

    store = benchmark.pedantic(ingest, rounds=3, iterations=1)
    assert store.total_points() == n_points
    seconds = benchmark.stats.stats.mean
    points_per_sec = n_points / seconds
    _results["ingest_points_per_sec"] = round(points_per_sec)
    print_table(
        "Streaming ingest throughput",
        ["series", "points", "seconds", "points/sec"],
        [[INGEST_COMPONENTS * INGEST_METRICS, n_points,
          round(seconds, 4), f"{points_per_sec:,.0f}"]],
    )
    assert points_per_sec > 50_000


def test_window_latency_incremental_vs_full(benchmark):
    """Per-window analysis cost: full re-cluster vs incremental reuse."""
    config = StreamingConfig(window=20.0, hop=10.0, retention=120.0)
    driver = SimulationStreamDriver(
        _chain_app(), constant_rate(40.0), config=config, seed=5,
        record_frame=False,
    )

    def stream():
        return driver.run(90.0)

    analyses = benchmark.pedantic(stream, rounds=1, iterations=1)
    assert len(analyses) >= 5
    full = [a for a in analyses if not a.reused]
    incremental = [a for a in analyses if a.reused and not a.reclustered]
    assert full and incremental
    full_ms = float(np.mean([a.analysis_seconds for a in full]) * 1e3)
    incr_ms = float(
        np.mean([a.analysis_seconds for a in incremental]) * 1e3)
    speedup = full_ms / incr_ms if incr_ms else float("inf")

    _results["window_latency_full_ms"] = round(full_ms, 2)
    _results["window_latency_incremental_ms"] = round(incr_ms, 2)
    _results["incremental_speedup"] = round(speedup, 2)
    _results["windows"] = len(analyses)
    _results["reuse_fraction"] = round(
        driver.engine.stats.reuse_fraction(), 3)

    print_table(
        "Per-window analysis latency",
        ["mode", "windows", "mean ms"],
        [["full re-cluster", len(full), round(full_ms, 1)],
         ["incremental", len(incremental), round(incr_ms, 1)],
         ["speedup", "", f"{speedup:.1f}x"]],
    )
    assert incr_ms < full_ms

    with open(RESULTS_PATH, "w") as fh:
        json.dump({"name": "streaming_throughput", **_results}, fh,
                  indent=2)
    print(f"results written to {RESULTS_PATH}")


def test_engine_keeps_up_with_realtime():
    """Sanity: analysis spends far less than the simulated wall time."""
    config = StreamingConfig(window=20.0, hop=10.0, retention=120.0)
    driver = SimulationStreamDriver(
        _chain_app(), constant_rate(40.0), config=config, seed=6,
        record_frame=False,
    )
    t0 = time.perf_counter()
    driver.run(60.0)
    wall = time.perf_counter() - t0
    print(f"\n60 simulated seconds processed in {wall:.1f}s wall "
          f"({driver.engine.stats.analysis_seconds:.2f}s analyzing)")
    assert driver.engine.stats.analysis_seconds < 60.0
