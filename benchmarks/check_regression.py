#!/usr/bin/env python
"""Benchmark-regression gate: compare results against baselines.

Compares freshly produced benchmark JSON files (``BENCH_*.json``)
against the committed baselines in ``benchmarks/baselines/`` and
fails when a time-like metric got more than ``--factor`` slower (or a
rate-like metric more than ``--factor`` lower).  CI runs it hard on
pushes and ``--warn-only`` on pull requests, so a PR shows the
regression without blocking on runner noise.

Two kinds of gate run per file:

* **Relative** -- every metric key shared with the baseline, classified
  by suffix (lower-is-better: ``*_s``, ``*_ms``, ``*_seconds``,
  ``*_blocked_s``; higher-is-better: ``*_per_sec``, ``*_per_s``,
  ``speedup*``; everything else is informational), fails when it moved
  more than ``--factor`` the wrong way.
* **Absolute floors** -- a baseline may carry a ``_gates`` metadata
  block (keys starting with ``_`` are never treated as metrics)::

      "_gates": {
        "components_8.speedup_shm@4":
          {"floor": 1.5, "higher_is_better": true, "min_cpus": 4}
      }

  The dotted path is looked up in the *current* results and must meet
  the floor outright -- no relative slack.  A gate with ``min_cpus``
  only *fails* on hosts whose recorded ``cpus`` meets it; smaller
  hosts (laptops, 1-core containers) get a warning line instead, so
  the multi-core speedup floor is enforced exactly where the hardware
  can deliver it.

Baselines were recorded on one reference machine; a 2x default factor
absorbs normal machine-to-machine spread while still catching real
algorithmic regressions.  Refresh a baseline by re-running the
benchmark and copying the JSON into ``benchmarks/baselines/``
(keeping the ``_gates`` block).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

LOWER_IS_BETTER = ("_s", "_ms", "_seconds", "_blocked_s")
HIGHER_IS_BETTER = ("_per_sec", "_per_s")


def _leaves(node, prefix=""):
    """Flatten nested dicts to {dotted.path: numeric value}.

    Keys starting with ``_`` (e.g. the ``_gates`` metadata block) are
    metadata, not metrics, and are skipped at every nesting level.
    """
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            if str(key).startswith("_"):
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_leaves(value, path))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)
    return out


def _direction(path: str) -> str | None:
    key = path.rsplit(".", 1)[-1]
    if "speedup" in key or key.endswith(HIGHER_IS_BETTER):
        return "higher"
    if key.endswith(LOWER_IS_BETTER):
        return "lower"
    return None


def compare(baseline: dict, current: dict,
            factor: float) -> tuple[list[str], int]:
    """Returns (report lines, number of regressions)."""
    lines, regressions = [], 0
    base_leaves = _leaves(baseline)
    curr_leaves = _leaves(current)
    for path in sorted(base_leaves):
        direction = _direction(path)
        if direction is None or path not in curr_leaves:
            continue
        base, curr = base_leaves[path], curr_leaves[path]
        if base <= 0.0:
            continue
        ratio = curr / base
        if direction == "lower":
            regressed = ratio > factor
            trend = f"{ratio:.2f}x slower" if ratio > 1.0 \
                else f"{1.0 / ratio:.2f}x faster"
        else:
            regressed = ratio < 1.0 / factor
            trend = f"{1.0 / ratio:.2f}x lower" if ratio < 1.0 \
                else f"{ratio:.2f}x higher"
        marker = "REGRESSION" if regressed else "ok"
        lines.append(f"  {marker:>10}  {path:<48} "
                     f"{base:>12.4f} -> {curr:>12.4f}  ({trend})")
        regressions += int(regressed)
    return lines, regressions


def check_gates(baseline: dict, current: dict) -> tuple[list[str], int]:
    """Apply the baseline's ``_gates`` absolute floors to ``current``.

    Returns (report lines, number of hard failures).  A gate whose
    ``min_cpus`` exceeds the current run's recorded ``cpus`` degrades
    to a warning line -- the floor describes multi-core behaviour a
    small host cannot physically exhibit.
    """
    gates = baseline.get("_gates", {})
    if not isinstance(gates, dict):
        return [f"  malformed _gates block: {type(gates).__name__}"], 1
    curr_leaves = _leaves(current)
    cpus = int(curr_leaves.get("cpus", 0))
    lines, failures = [], 0
    for path in sorted(gates):
        gate = gates[path]
        floor = float(gate["floor"])
        higher = bool(gate.get("higher_is_better", True))
        min_cpus = int(gate.get("min_cpus", 0))
        bound = f"{'>=' if higher else '<='} {floor:g}"
        curr = curr_leaves.get(path)
        if curr is None:
            lines.append(f"  {'GATE FAIL':>10}  {path:<48} "
                         f"missing from results (need {bound})")
            failures += 1
            continue
        met = curr >= floor if higher else curr <= floor
        if met:
            marker = "gate ok"
        elif min_cpus and cpus < min_cpus:
            marker = "gate warn"
            bound += f" needs >= {min_cpus} cpus, have {cpus}"
        else:
            marker = "GATE FAIL"
            failures += 1
        lines.append(f"  {marker:>10}  {path:<48} "
                     f"{curr:>12.4f}  (floor {bound})")
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="+", metavar="RESULT.json",
                        help="freshly produced benchmark JSON files")
    parser.add_argument("--baselines",
                        default=str(Path(__file__).parent / "baselines"),
                        help="directory holding committed baselines")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed slowdown factor (default 2.0)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (PR mode)")
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baselines)
    total_regressions = 0
    for result_path in map(Path, args.results):
        baseline_path = baseline_dir / result_path.name
        if not result_path.exists():
            print(f"{result_path}: missing result file", file=sys.stderr)
            total_regressions += 1
            continue
        if not baseline_path.exists():
            print(f"{result_path.name}: no baseline committed; "
                  f"skipping (add one under {baseline_dir})")
            continue
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        with open(result_path) as fh:
            current = json.load(fh)
        lines, regressions = compare(baseline, current, args.factor)
        gate_lines, gate_failures = check_gates(baseline, current)
        total_regressions += regressions + gate_failures
        print(f"{result_path.name} vs {baseline_path} "
              f"(factor {args.factor:g}x):")
        print("\n".join(lines) if lines else "  (no gated metrics)")
        if gate_lines:
            print("\n".join(gate_lines))

    if total_regressions:
        verdict = f"{total_regressions} benchmark regression(s)"
        if args.warn_only:
            print(f"WARNING: {verdict} (warn-only mode, not failing)")
            return 0
        print(f"FAIL: {verdict}", file=sys.stderr)
        return 1
    print("benchmark gate: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
