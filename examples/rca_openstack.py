#!/usr/bin/env python
"""Case study #2: root cause analysis on OpenStack (paper §6.3).

Reproduces the Launchpad bug #1533942 investigation: VM launches fail
('No valid host was found') after the Neutron Open vSwitch agent
crashes.  The script runs the Rally ``boot_and_delete`` workload against
a correct (C) and a faulty (F) OpenStack version, runs the full Sieve
pipeline on both, and lets the RCA engine compare them -- producing the
component rankings of Table 5 and the filtered edge diff of Figure 8.

Run:  python examples/rca_openstack.py [--iterations N]
"""

import argparse

from repro.apps import build_openstack_application, openstack_fault_plan
from repro.core import Sieve
from repro.rca import RCAEngine
from repro.workload import RallyRunner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=25,
                        help="Rally boot_and_delete iterations (paper: 100)")
    args = parser.parse_args()

    application = build_openstack_application()
    rally = RallyRunner(times=args.iterations, concurrency=5, seed=11)
    duration = min(rally.duration, 240.0)
    sieve = Sieve(application)

    print(f"Rally boot_and_delete x{args.iterations} "
          f"(5 VMs concurrent), ~{duration:.0f}s per version")
    print("\nLoading + analyzing the CORRECT version...")
    result_c = sieve.run(rally, duration=duration, seed=11,
                         workload_name="rally-correct")
    print(f"  {result_c.summary()}")

    print("Loading + analyzing the FAULTY version (bug #1533942 analog)...")
    result_f = sieve.run(rally, duration=duration, seed=11,
                         fault_plan=openstack_fault_plan(),
                         workload_name="rally-faulty")
    print(f"  {result_f.summary()}")

    engine = RCAEngine(thresholds=(0.0, 0.5, 0.6, 0.7))
    report = engine.compare(result_c, result_f, threshold=0.5)

    print("\n=== Step 2: components by metric novelty (Table 5) ===")
    print(f"{'Component':<22}{'Changed':>9}{'New':>6}{'Disc.':>7}"
          f"{'Total':>7}")
    for diff in report.component_ranking:
        print(f"{diff.component:<22}{diff.novelty_score:>9}"
              f"{len(diff.new):>6}{len(diff.discarded):>7}"
              f"{diff.total_metrics:>7}")

    print("\n=== Step 3: cluster novelty (Figure 7a) ===")
    for category, count in sorted(
            report.cluster_novelty_histogram().items()):
        print(f"  {category:<18} {count}")

    print("\n=== Step 4: edge filtering sweep (Figure 7b/c) ===")
    for threshold, classification in report.edge_classifications.items():
        counts = classification.counts()
        state = report.implicated_state(threshold)
        print(f"  threshold {threshold:.1f}: edges new={counts['new']} "
              f"discarded={counts['discarded']} "
              f"lag-change={counts['lag_changed']} | implicates "
              f"{state['components']} components, {state['clusters']} "
              f"clusters, {state['metrics']} metrics")

    print("\n=== Step 5: final root-cause candidates ===")
    for candidate in report.final_ranking[:5]:
        highlights = [m for m in candidate.metrics
                      if "ERROR" in m or "DOWN" in m or "fail" in m]
        print(f"  #{candidate.rank} {candidate.component} "
              f"(novelty {candidate.novelty_score}, "
              f"{len(candidate.metrics)} metrics)")
        for metric in highlights[:4]:
            print(f"       -> {metric}")

    neutron = [c for c in report.final_ranking
               if c.component == "neutron-server"]
    if neutron and any("DOWN" in m for m in neutron[0].metrics):
        print("\nRoot cause localized: neutron-server cluster containing "
              "neutron_ports_in_status_DOWN -- the VM-networking failure "
              "behind the launch errors (as in the paper).")


if __name__ == "__main__":
    main()
