"""Self-telemetry, end to end: instrument, scrape, diagnose.

The streaming engine can observe *itself* the way it observes the
application under study: counters and histograms for every hot path
(bus flushes, ring appends, re-cluster fan-outs, writer queues),
per-window span traces that break each analyzed window into its
phases, and a health surface an orchestrator can probe.  This
walkthrough:

1. builds a streaming session with telemetry on and an HTTP scrape
   endpoint on an ephemeral port (the ``repro stream
   --telemetry-port`` wiring, minus the CLI);
2. scrapes ``/metrics`` (Prometheus text format), ``/healthz`` and
   ``/traces`` while the engine runs;
3. shows the per-window phase breakdown -- where did the analysis
   time actually go -- and the end-of-run telemetry summary;
4. re-runs with telemetry off and shows the windows are reproduced
   identically: observation never changes the analysis.

Run with:  PYTHONPATH=src python examples/telemetry_stream.py
"""

import json
import urllib.request

from repro.api import PipelineBuilder
from repro.causality.depgraph import edge_jaccard


def _build(telemetry: bool):
    builder = (PipelineBuilder("sharelatex").mode("stream")
               .workload("constant", rate=30.0)
               .streaming(window=15.0, hop=10.0, retention=120.0)
               .duration(40.0).seed(1))
    if telemetry:
        builder = builder.telemetry()
    return builder.build()


def main() -> None:
    # 1. Telemetry on, scrape endpoint on an ephemeral port.
    session = _build(telemetry=True)
    server = session.telemetry.serve()
    print(f"scrape endpoint: {server.url}/metrics")

    outcome = session.run()

    # 2. Scrape while the session (and its server) is still open.
    text = urllib.request.urlopen(f"{server.url}/metrics").read().decode()
    families = sorted(line.split()[2] for line in text.splitlines()
                      if line.startswith("# TYPE"))
    print(f"\n{len(families)} instrument families exposed, e.g.:")
    for family in families[:6]:
        print(f"  {family}")

    with urllib.request.urlopen(f"{server.url}/healthz") as response:
        health = json.loads(response.read())
    print(f"\nhealthz: {'ok' if health['healthy'] else 'FAILING'} "
          f"({', '.join(health['probes']) or 'no probes'})")

    # 3. Where did each window's time go?
    traces = json.loads(
        urllib.request.urlopen(f"{server.url}/traces").read())
    last = traces[-1]
    print(f"\nwindow {last['index']} phase breakdown "
          f"({last['total_seconds'] * 1e3:.1f} ms total):")
    for phase, seconds in last["phases"].items():
        print(f"  {phase:<12} {seconds * 1e3:>8.1f} ms")

    summary = outcome.summary["telemetry"]
    print(f"\nlifetime phase totals over "
          f"{summary['instruments']} instruments:")
    for phase, seconds in summary["phase_seconds"].items():
        print(f"  {phase:<12} {seconds:>8.3f} s")

    telemetered = outcome.analyses
    session.close()

    # 4. Observation changes nothing: same seed, telemetry off.
    session = _build(telemetry=False)
    plain = session.run().analyses
    session.close()
    jaccard = edge_jaccard(telemetered[-1].dependency_graph,
                           plain[-1].dependency_graph)
    print(f"\ntelemetry on vs off: {len(telemetered)} windows each, "
          f"final-window edge Jaccard {jaccard:.3f}")
    assert jaccard == 1.0


if __name__ == "__main__":
    main()
