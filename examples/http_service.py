"""The live operations surface, end to end: ingest, query, observe.

``serve`` mode runs the streaming engine as an HTTP service -- no
simulator driver.  A collector (here: this script) pushes metric
samples to ``POST /ingest``; the engine schedules its analysis hops
off the ingest watermarks, so the service stays deterministic; the
latest clustering, drift state and operational events are queryable
over ``GET /api/...`` while the run is live.  This walkthrough:

1. builds a ``serve`` session on an ephemeral port with a small
   two-component topology;
2. pushes sequenced JSON scrapes (and one Prometheus text line) for
   two simulated components, watching windows appear;
3. queries ``/api/windows``, ``/api/clusters``, ``/api/drift`` and
   the incremental ``/api/events?since=N`` log;
4. demonstrates the ingest guarantees: duplicate sequence numbers are
   acknowledged but not re-published, torn payloads are 400s that
   leave the engine untouched, and the scrape endpoint serves the
   staleness gauges.

Run with:  PYTHONPATH=src python examples/http_service.py
"""

import json
import urllib.error
import urllib.request

from repro.api import PipelineBuilder


def _post(url: str, payload, content_type="application/json"):
    body = payload if isinstance(payload, bytes) \
        else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": content_type})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def main() -> None:
    # 1. A serve-mode session: HTTP-fed engine, ephemeral port.
    session = (PipelineBuilder("http-demo").mode("serve")
               .workload("constant", rate=10.0)
               .streaming(window=10.0, hop=5.0, retention=60.0,
                          min_window_samples=8)
               .service(port=0, clock="ingest",
                        topology=(("front", "back"),))
               .duration(60).seed(1).build())
    url = session.url
    print(f"service: {url}  (ingest clock, window=10s hop=5s)")

    # 2. Push 90 sequenced scrapes -- 45 simulated seconds.
    for seq in range(90):
        t = seq * 0.5
        status, reply = _post(f"{url}/ingest", {
            "source": "agent-1", "seq": seq,
            "batches": [
                {"component": "front", "time": t,
                 "metrics": {"cpu": 0.5 + 0.01 * (seq % 10),
                             "mem": 100.0 + seq % 7}},
                {"component": "back", "time": t,
                 "metrics": {"cpu": 0.4 + 0.02 * (seq % 5),
                             "mem": 80.0 + seq % 11}},
            ],
        })
        assert status == 200, reply
        if reply["analyzed_window"] is not None:
            print(f"  watermark {reply['watermark']:>5}s -> "
                  f"window {reply['analyzed_window']} analyzed")

    # Text exposition works too (timestamps in seconds).
    status, reply = _post(
        f"{url}/ingest",
        b'cpu_usage{component="front"} 0.61 45.5\n',
        content_type="text/plain")
    print(f"text exposition sample: {status} "
          f"accepted={reply['accepted']}")

    # 3. The query surface.
    windows = _get(f"{url}/api/windows")
    print(f"\n{windows['count']} windows analyzed; latest: "
          f"{windows['windows'][-1]['span']}")
    clusters = _get(f"{url}/api/clusters")
    for component, payload in sorted(clusters["clusters"].items()):
        print(f"  {component}: {payload['n_clusters']} cluster(s), "
              f"representatives {payload['representatives']}")
    drift = _get(f"{url}/api/drift")
    print(f"drift readings for window {drift['window']}: "
          f"{sorted(drift['drift'])}")
    events = _get(f"{url}/api/events")
    kinds = [event["kind"] for event in events["events"]]
    print(f"event log: {len(kinds)} events {sorted(set(kinds))}; "
          f"poll /api/events?since={events['latest_seq']} for more")

    # 4. Ingest guarantees.
    status, reply = _post(f"{url}/ingest", {
        "source": "agent-1", "seq": 3,
        "batches": [{"component": "front", "time": 1.5,
                     "metrics": {"cpu": 0.9}}],
    })
    print(f"\nreplayed seq 3: {status} status={reply['status']} "
          f"(acknowledged, nothing re-published)")
    status, reply = _post(f"{url}/ingest", b'{"batches": [',
                          content_type="application/json")
    print(f"torn payload: {status} ({reply['error'][:40]}...)")

    scrape = urllib.request.urlopen(f"{url}/metrics").read().decode()
    staleness = [line for line in scrape.splitlines()
                 if line.startswith("repro_last_")]
    print("staleness gauges: " + "; ".join(staleness))

    session.close()


if __name__ == "__main__":
    main()
