"""The public pipeline API, end to end: spec file in, session out.

Everything the pipeline needs for one run -- application, workload,
analysis tunables, storage / executor / consumer policy -- lives in a
declarative :class:`~repro.api.spec.RunSpec` that round-trips through
TOML or JSON.  This walkthrough:

1. declares a streaming run with the fluent
   :class:`~repro.api.session.PipelineBuilder` and saves it to a spec
   file (the artifact you would commit next to an experiment);
2. loads the file back and runs it through
   :func:`~repro.api.session.build_pipeline` -- the same call the
   ``repro`` CLI delegates to -- then compacts the durable store;
3. registers a third-party workload plugin and shows that specs can
   name it exactly like a builtin;
4. re-runs the loaded spec and shows the windows are reproduced
   identically (the ``repro spec`` reproducibility contract).

Run with:  PYTHONPATH=src python examples/api_pipeline.py
"""

import math
import tempfile
from pathlib import Path

from repro.api import (
    WORKLOADS,
    PipelineBuilder,
    build_pipeline,
    load_spec,
    register_workload,
    save_spec,
)
from repro.causality.depgraph import edge_jaccard


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = Path(tmp) / "run.toml"
        store_path = Path(tmp) / "run.db"

        # 1. Declare the run once, save the spec.
        spec = (PipelineBuilder("sharelatex").mode("stream")
                .workload("constant", rate=30.0)
                .storage("sqlite", str(store_path), retention=15.0)
                .streaming(window=15.0, hop=10.0, retention=120.0)
                .duration(45.0).seed(1).spec())
        save_spec(spec, spec_path)
        print(f"spec written: {spec_path.name} "
              f"({spec_path.stat().st_size} bytes of TOML)")

        # 2. Load and run it -- exactly what `repro stream --spec
        #    run.toml` does under the hood.
        loaded = load_spec(spec_path)
        assert loaded == spec
        session = build_pipeline(loaded)
        try:
            outcome = session.run()
            print(f"windows analyzed: {outcome.summary['windows']}, "
                  f"series stored: {session.backend.series_count()}")
            stats = session.compact()  # trim past storage.retention
            print(f"compacted store: {stats}")
        finally:
            session.close()

        # 3. A third-party workload plugin: one registration call and
        #    every spec, config and CLI flag can name it.
        if "sine" not in WORKLOADS:
            @register_workload("sine")
            def _sine(duration, seed, rate, *, period=30.0, **options):
                return lambda now: rate * (
                    1.0 + 0.5 * math.sin(2.0 * math.pi * now / period)
                )

        plugin_spec = (PipelineBuilder("sharelatex").mode("pipeline")
                       .workload("sine", rate=25.0, period=20.0)
                       .duration(40.0).seed(2).spec())
        with build_pipeline(plugin_spec) as batch:
            result = batch.run()
        print(f"plugin workload run: "
              f"{result.total_metrics()} metrics -> "
              f"{result.total_representatives()} representatives")

        # 4. Reproducibility: the same spec yields the same windows.
        with build_pipeline(loaded) as session:
            again = session.run()
        pairs = zip(outcome.analyses, again.analyses)
        jaccards = [
            edge_jaccard(left.dependency_graph, right.dependency_graph)
            for left, right in pairs
        ]
        print(f"re-run edge Jaccard per window: "
              f"{[round(j, 3) for j in jaccards]} (1.0 = identical)")


if __name__ == "__main__":
    main()
