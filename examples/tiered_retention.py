"""Tiered retention: downsampled cold storage behind a hot horizon.

A monitoring store that keeps everything at full resolution grows
without bound; real TSDBs (Graphite, M3) age samples through
progressively coarser rollup tiers instead.  This walkthrough:

1. streams a long synthetic run into two spill backends -- one
   unscheduled, one with the canonical
   ``1000s:full,4000s:1m,inf:10m`` schedule;
2. compacts the scheduled store and compares on-disk footprints;
3. shows reads inside the full-resolution horizon are *bit-identical*
   to the unscheduled store, while older ranges serve (mean, min,
   max, count) rollups that conserve every raw sample.

Run with:  PYTHONPATH=src python examples/tiered_retention.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.persistence import RetentionSchedule, SpillBackend

SCHEDULE = "1000s:full,4000s:1m,inf:10m"
CADENCE = 0.5
SPAN = 20_000.0


def fill(backend):
    """A long, deterministic ingest stream: two drifting series."""
    t = np.arange(0.0, SPAN, CADENCE)
    for i, component in enumerate(("web", "db")):
        rng = np.random.default_rng(100 + i)
        v = np.cumsum(rng.standard_normal(t.size)) + 50.0 * i
        for lo in range(0, t.size, 2000):
            backend.write(component, "cpu", t[lo:lo + 2000],
                          v[lo:lo + 2000])
    backend.close()  # spill hot tails so the footprint is on disk
    return t


def tree_bytes(path):
    return sum(f.stat().st_size for f in Path(path).rglob("*"))


def main():
    tmp = Path(tempfile.mkdtemp(prefix="tiered-retention-"))
    schedule = RetentionSchedule.parse(SCHEDULE)
    print(f"schedule      {schedule.format()}")
    print(f"full horizon  {schedule.full_horizon:g}s of raw samples\n")

    plain = SpillBackend(tmp / "plain")
    tiered = SpillBackend(tmp / "tiered", schedule=SCHEDULE)
    t = fill(plain)
    fill(tiered)

    # Re-open and migrate: rows older than each tier's aligned cutoff
    # are re-bucketed to that tier's resolution.
    tiered = SpillBackend(tmp / "tiered", schedule=SCHEDULE)
    stats = tiered.compact()
    tiered.close()
    print(f"compacted     {stats['samples_rolled']:,} samples into "
          f"{stats['rollup_segments_written']} rollup segments")
    full_bytes = tree_bytes(tmp / "plain")
    cold_bytes = tree_bytes(tmp / "tiered")
    print(f"footprint     {full_bytes:,} -> {cold_bytes:,} bytes "
          f"({full_bytes / cold_bytes:.1f}x smaller)\n")

    # Inside the full-resolution horizon nothing changed -- reads are
    # bit-identical to the unscheduled store.
    plain = SpillBackend(tmp / "plain")
    tiered = SpillBackend(tmp / "tiered", schedule=SCHEDULE)
    newest = float(t[-1])
    raw = plain.query("web", "cpu", newest - 1000.0, newest)
    hot = tiered.query("web", "cpu", newest - 1000.0, newest)
    assert np.array_equal(raw.times, hot.times)
    assert np.array_equal(raw.values, hot.values)
    print(f"hot horizon   [{newest - 1000:.0f}s, {newest:.0f}s]: "
          f"{len(hot)} raw samples, bit-identical")

    # Beyond it, aggregate-aware reads get rollup columns; the bucket
    # counts conserve every raw sample ever written.
    rolled = tiered.query_rollup("web", "cpu",
                                 float("-inf"), float("inf"))
    print(f"whole series  {len(rolled)} stored rows representing "
          f"{rolled.total_samples():,} raw samples "
          f"(wrote {t.size:,})")
    coarse = rolled.counts > 1
    print(f"rollups       {int(coarse.sum())} buckets, e.g. t={{"
          f"{rolled.times[0]:.0f}}} mean={rolled.means[0]:.2f} "
          f"min={rolled.mins[0]:.2f} max={rolled.maxs[0]:.2f} "
          f"n={int(rolled.counts[0])}")
    assert rolled.total_samples() == t.size
    plain.close()
    tiered.close()


if __name__ == "__main__":
    main()
