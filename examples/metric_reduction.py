#!/usr/bin/env python
"""Metric reduction and monitoring-cost savings (paper §6.1.2/6.1.3).

Demonstrates the Step-2 machinery in isolation:

* cluster one component's metrics with k-Shape and inspect the clusters
  (memberships, representatives, silhouette);
* replay the recorded run into two metered stores -- all metrics vs
  representatives only -- and report the monitoring-overhead savings of
  Table 3 (CPU, storage, network in/out).

Run:  python examples/metric_reduction.py
"""

from repro.apps import build_sharelatex_application
from repro.core import Sieve
from repro.metrics import CostModel, MetricsStore
from repro.metrics.accounting import reduction_percent
from repro.workload import RandomWorkload

DURATION = 120.0
SEED = 3


def main() -> None:
    application = build_sharelatex_application()
    sieve = Sieve(application)
    workload = RandomWorkload(duration=DURATION, seed=SEED)
    print(f"Loading {application.name} under a random workload...")
    result = sieve.run(workload, duration=DURATION, seed=SEED)

    print("\n--- Clusters of the 'web' component ---")
    clustering = result.clusterings["web"]
    print(f"{clustering.total_metrics} metrics, "
          f"{len(clustering.filtered_metrics)} filtered as unvarying, "
          f"{clustering.n_clusters} clusters "
          f"(silhouette {clustering.silhouette:.3f})")
    for cluster in clustering.clusters:
        members = ", ".join(cluster.metrics[:4])
        suffix = ", ..." if len(cluster.metrics) > 4 else ""
        print(f"  cluster {cluster.index}: {len(cluster.metrics):>3} "
              f"metrics, representative={cluster.representative}")
        print(f"      [{members}{suffix}]")

    print("\n--- Monitoring overhead: all metrics vs Sieve's selection ---")
    model = CostModel()
    store_before = MetricsStore(model)
    store_before.replay_frame(result.run.frame)
    store_before.simulate_dashboard_reads()

    store_after = MetricsStore(model)
    store_after.replay_frame(result.run.frame,
                             keep=result.representative_keys())
    store_after.simulate_dashboard_reads()

    before = store_before.usage.summary()
    after = store_after.usage.summary()
    rows = [
        ("CPU time [s]", "cpu_seconds"),
        ("DB size [KB]", "db_bytes"),
        ("Network in [KB]", "network_in_bytes"),
        ("Network out [KB]", "network_out_bytes"),
    ]
    print(f"{'Metric':<20}{'Before':>12}{'After':>12}{'Reduction':>12}")
    for label, key in rows:
        b, a = before[key], after[key]
        if "KB" in label:
            b, a = b / 1024.0, a / 1024.0
        print(f"{label:<20}{b:>12.2f}{a:>12.2f}"
              f"{reduction_percent(before[key], after[key]):>11.1f}%")


if __name__ == "__main__":
    main()
