#!/usr/bin/env python
"""Case study #1: Sieve-guided autoscaling of ShareLatex (paper §6.2).

Compares two autoscaling configurations over a WorldCup'98-like traffic
hour:

* the traditional default -- trigger on the scaled component's CPU
  usage (what e.g. AWS Auto Scaling does out of the box);
* Sieve's selection -- trigger on the application metric that appears
  most often in the Granger dependency graph (in the paper:
  ``http-requests_Project_id_GET_mean``).

For both, thresholds are calibrated against a peak-load sample, then a
trace replay measures mean CPU usage per component, SLA violations
(90th percentile latency < 1000 ms) and the number of scaling actions
-- the three rows of Table 4.

Run:  python examples/autoscaling_sharelatex.py [--fast]
"""

import argparse

from repro.apps import build_sharelatex_application
from repro.autoscaling import (
    SLACondition,
    ScalingRule,
    calibrate_thresholds,
    run_autoscaling,
)
from repro.core import Sieve
from repro.workload import WorldCupTrace, constant_rate

SCALED_COMPONENT = "web"


def pick_sieve_metric(duration: float, seed: int) -> tuple[str, str]:
    """Run the Sieve pipeline and return its guiding-metric choice."""
    application = build_sharelatex_application()
    sieve = Sieve(application)
    trace = WorldCupTrace(duration=duration, seed=seed)
    result = sieve.run(trace, duration=duration, seed=seed,
                       workload_name="worldcup-sample")
    hub = result.dependency_graph.most_connected_metric(
        component=SCALED_COMPONENT
    )
    if hub is None:
        raise RuntimeError("dependency graph is empty; cannot pick a metric")
    return hub


def build_rule(metric_component: str, metric: str, trace: WorldCupTrace,
               seed: int, calibration_duration: float) -> ScalingRule:
    """Calibrate thresholds on the trace's peak window (paper §6.2)."""
    application = build_sharelatex_application()
    peak_start, _peak_end = trace.peak_window()
    peak_rate = constant_rate(trace.rate(peak_start + 1.0))
    thresholds = calibrate_thresholds(
        application, peak_rate, SCALED_COMPONENT,
        metric_component, metric,
        sla=SLACondition(), duration=calibration_duration, seed=seed,
    )
    print(f"  calibrated {metric_component}/{metric}: "
          f"up>{thresholds.scale_up:.1f} down<{thresholds.scale_down:.1f}")
    return ScalingRule(
        component=SCALED_COMPONENT,
        metric_component=metric_component,
        metric=metric,
        scale_up_threshold=thresholds.scale_up,
        scale_down_threshold=thresholds.scale_down,
        min_instances=1,
        max_instances=10,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="shorter trace for a quick demo")
    args = parser.parse_args()

    trace_duration = 600.0 if args.fast else 3600.0
    pipeline_duration = 120.0 if args.fast else 300.0
    calibration_duration = 30.0 if args.fast else 60.0
    seed = 7

    print("Selecting the guiding metric with Sieve...")
    metric_component, metric = pick_sieve_metric(pipeline_duration, seed)
    print(f"  Sieve picked: {metric_component}/{metric}")

    trace = WorldCupTrace(duration=trace_duration, seed=seed)
    print(f"\nTrace: {trace.n_sessions} sessions over "
          f"{trace_duration:.0f}s")

    print("\nCalibrating thresholds on the peak window...")
    cpu_rule = build_rule(SCALED_COMPONENT, "cpu_usage", trace, seed,
                          calibration_duration)
    sieve_rule = build_rule(metric_component, metric, trace, seed,
                            calibration_duration)

    print("\nReplaying the trace with each rule...")
    application = build_sharelatex_application()
    outcome_cpu = run_autoscaling(application, trace, cpu_rule,
                                  duration=trace_duration, seed=seed)
    application = build_sharelatex_application()
    outcome_sieve = run_autoscaling(application, trace, sieve_rule,
                                    duration=trace_duration, seed=seed)

    print("\n=== Table 4 analog ===")
    header = f"{'Metric':<34}{'CPU trigger':>14}{'Sieve':>10}{'Diff %':>9}"
    print(header)
    rows = [
        ("Mean CPU usage per component",
         outcome_cpu.mean_cpu_per_component,
         outcome_sieve.mean_cpu_per_component),
        (f"SLA violations (of {outcome_cpu.sla_samples})",
         outcome_cpu.sla_violations, outcome_sieve.sla_violations),
        ("Number of scaling actions",
         outcome_cpu.scaling_actions, outcome_sieve.scaling_actions),
    ]
    for label, cpu_val, sieve_val in rows:
        diff = (100.0 * (sieve_val - cpu_val) / cpu_val
                if cpu_val else float("nan"))
        print(f"{label:<34}{cpu_val:>14.2f}{sieve_val:>10.2f}{diff:>+9.1f}")


if __name__ == "__main__":
    main()
