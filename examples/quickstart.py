#!/usr/bin/env python
"""Quickstart: run the full Sieve pipeline on ShareLatex.

Loads the ShareLatex application model under a random workload, reduces
its ~850 metrics to a handful of representatives per component, and
extracts the Granger-causal dependency graph -- the three steps of the
paper's Figure 1.

Run:  python examples/quickstart.py
"""

from repro.apps import build_sharelatex_application
from repro.core import Sieve, SieveConfig
from repro.workload import RandomWorkload

DURATION = 120.0
SEED = 42


def main() -> None:
    application = build_sharelatex_application()
    sieve = Sieve(application, SieveConfig())

    print(f"Loading {application.name} for {DURATION:.0f}s "
          f"({len(application.specs)} components)...")
    workload = RandomWorkload(duration=DURATION, seed=SEED)
    result = sieve.run(workload, duration=DURATION, seed=SEED,
                       workload_name="random")

    print("\n--- Step 1: load ---")
    print(f"metrics recorded : {result.total_metrics()}")
    print(f"call-graph edges : {len(result.run.call_graph.edges())}")

    print("\n--- Step 2: reduce ---")
    print(f"representatives  : {result.total_representatives()} "
          f"({result.reduction_factor():.1f}x reduction)")
    for component, (before, after) in sorted(
            result.reduction_by_component().items()):
        print(f"  {component:<14} {before:>4} -> {after}")

    print("\n--- Step 3: identify dependencies ---")
    graph = result.dependency_graph
    print(f"metric relations : {len(graph)}")
    print(f"component edges  : {len(graph.component_edges())}")
    hub = graph.most_connected_metric()
    if hub is not None:
        component, metric = hub
        print(f"most connected metric: {component}/{metric} "
              f"({graph.metric_appearances()[hub]} relations)")

    print("\nDependency edges (top 10 by relation count):")
    edges = sorted(graph.component_edges(), key=lambda e: -e[2])[:10]
    for src, dst, count in edges:
        print(f"  {src:>14} -> {dst:<14} ({count} metric relations)")


if __name__ == "__main__":
    main()
