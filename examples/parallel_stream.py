"""Parallel sharded analysis and concurrent ingest, end to end.

The streaming engine fans per-component window work (re-reduce +
re-cluster, drift shape checks) out to a shard executor, and can put
a batching writer thread in front of its durable backend so the
ingestion bus never blocks on writes.  This walkthrough:

1. streams the same co-simulated chain under the ``serial``,
   ``thread`` and ``process`` executors and shows the analyses are
   identical (distribution policy never changes the result);
2. streams with an async :class:`~repro.parallel.writer
   .BatchingWriter` in front of a sqlite backend and shows the
   ingest path's writer counters;
3. prints per-strategy wall-clock so the dispatch-overhead trade-off
   is visible (on a single-core host the pools cannot win -- see the
   README's "Scaling" section for sizing guidance).

Run with:  PYTHONPATH=src python examples/parallel_stream.py
"""

import tempfile
import time
from pathlib import Path

from repro.causality.depgraph import edge_jaccard
from repro.core import StreamingConfig
from repro.parallel import BatchingWriter
from repro.persistence import SqliteBackend
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.streaming import SimulationStreamDriver, StreamingSieve
from repro.workload import constant_rate

DURATION = 60.0


def build_app() -> Application:
    spec = dict(kind="generic",
                endpoints=(EndpointSpec("op", service_time=0.02),),
                concurrency=16)
    return Application("demo", [
        ComponentSpec(name="front", calls=(CallSpec("mid", delay=0.4),),
                      **spec),
        ComponentSpec(name="mid", calls=(CallSpec("back", delay=0.4),),
                      **spec),
        ComponentSpec(name="back", **spec),
    ])


def stream(executor: str, store_backend=None):
    config = StreamingConfig(window=20.0, hop=10.0, retention=120.0,
                             executor=executor, executor_workers=2)
    engine = StreamingSieve(config=config, seed=3, application="demo",
                            store_backend=store_backend)
    driver = SimulationStreamDriver(build_app(), constant_rate(40.0),
                                    config=config, seed=3,
                                    record_frame=False, engine=engine)
    start = time.perf_counter()
    windows = driver.run(DURATION)
    elapsed = time.perf_counter() - start
    driver.close()
    return windows, elapsed


def main() -> None:
    # 1. Distribution policy never changes the analysis.
    reference, serial_s = stream("serial")
    print(f"serial : {len(reference)} windows in {serial_s:.2f}s")
    for executor in ("thread", "process"):
        windows, elapsed = stream(executor)
        assert len(windows) == len(reference)
        for mine, ref in zip(windows, reference):
            assert mine.reclustered == ref.reclustered
            jaccard = edge_jaccard(mine.dependency_graph,
                                   ref.dependency_graph,
                                   level="metric")
            assert jaccard == 1.0
        print(f"{executor:<7}: identical windows in {elapsed:.2f}s "
              f"(edge Jaccard 1.0 vs serial)")

    # 2. Concurrent ingest: the bus hands durable writes to a
    #    dedicated thread and never blocks on sqlite.
    with tempfile.TemporaryDirectory() as tmp:
        writer = BatchingWriter(SqliteBackend(Path(tmp) / "run.db"))
        windows, elapsed = stream("serial", store_backend=writer)
        stats = writer.stats
        print(f"\nasync writer: {len(windows)} windows in "
              f"{elapsed:.2f}s while the writer thread made "
              f"{stats.points_written} points durable "
              f"(peak queue depth {stats.max_queue_depth})")
        writer.close()


if __name__ == "__main__":
    main()
