"""Streaming Sieve quickstart: online analysis with drift escalation.

Runs the streaming engine against a co-simulated three-tier
application whose backend changes behaviour mid-run, and shows the
three things the subsystem adds over the batch pipeline:

1. per-window summaries with incremental reuse,
2. the drift detector escalating exactly the shifted component,
3. a live autoscaling policy following the streaming guide metric and
   an RCA diff between a pre-shift and a post-shift window.

Run:  PYTHONPATH=src python examples/streaming_engine.py
(or just ``python examples/streaming_engine.py`` after ``pip install -e .``)
"""

from repro.autoscaling import ScalingRule
from repro.core import StreamingConfig
from repro.simulator import Application, CallSpec, ComponentSpec, EndpointSpec
from repro.streaming import (
    LiveScalingPolicy,
    SimulationStreamDriver,
    WindowDiffRCA,
)
from repro.workload import constant_rate


def build_app() -> Application:
    def spec(name, shift=False, **kwargs):
        custom = ()
        if shift:
            custom = (("mode_gauge",
                       lambda comp, now: 500.0 if now > 45.0
                       else comp.total_request_rate() * 1.2),)
        defaults = dict(
            kind="generic",
            endpoints=(EndpointSpec("op", service_time=0.02),),
            concurrency=16,
            custom_metrics=custom,
        )
        defaults.update(kwargs)
        return ComponentSpec(name=name, **defaults)

    return Application("demo", [
        spec("front", calls=(CallSpec("mid", delay=0.4),)),
        spec("mid", calls=(CallSpec("back", delay=0.4),)),
        spec("back", shift=True),  # behaviour shift at t=45s
    ])


def main() -> None:
    config = StreamingConfig(window=20.0, hop=10.0, retention=120.0)
    driver = SimulationStreamDriver(
        build_app(), constant_rate(40.0), config=config, seed=3,
    )
    policy = LiveScalingPolicy(ScalingRule(
        component="mid", metric_component="mid", metric="cpu_usage",
        scale_up_threshold=80.0, scale_down_threshold=10.0,
    ))
    driver.engine.subscribe(policy)

    print("== per-window summaries ==")
    for analysis in driver.run(90.0):
        summary = analysis.summary()
        print(f"window {summary['window']}: span={summary['span']}  "
              f"reps={summary['representatives']}  "
              f"recluster={summary['reasons'] or '-'}  "
              f"analysis={summary['analysis_ms']}ms")

    print("\n== engine counters ==")
    for key, value in driver.engine.stats.as_dict().items():
        print(f"  {key}: {value}")

    print("\n== live autoscaling guide ==")
    print(f"  guiding metric: {policy.guiding_metric}")
    print(f"  rebinds: {[(r.window_index, r.metric) for r in policy.rebinds]}")

    print("\n== RCA diff: first (pre-shift) vs last (post-shift) window ==")
    report = WindowDiffRCA(driver.engine).compare(0, -1)
    histogram = report.cluster_novelty_histogram()
    print(f"  cluster novelty: {dict(histogram)}")
    for candidate in report.final_ranking:
        print(f"  rank {candidate.rank}: {candidate.component} "
              f"(novelty {candidate.novelty_score})")


if __name__ == "__main__":
    main()
