"""Record a live run to durable storage, then replay it from disk.

The paper's Table 3 experiment asks "what would monitoring have cost
with and without Sieve's metric reduction?" -- a question answered by
*replaying* a recorded run through a metered store.  This walkthrough
does the full loop without the CLI:

1. stream a co-simulated ShareLatex-like chain into a
   :class:`~repro.persistence.sqlite_backend.SqliteBackend` while a
   write-ahead journal and per-window checkpoints make the run
   crash-safe;
2. "crash", then restore the engine from checkpoint + journal and show
   it continues incrementally;
3. re-open the recorded database and reproduce the monitoring-cost
   comparison purely from disk.

Run with:  PYTHONPATH=src python examples/record_replay.py
"""

import tempfile
from pathlib import Path

from repro.core import Sieve, StreamingConfig
from repro.metrics.accounting import reduction_percent
from repro.metrics.store import MetricsStore
from repro.persistence import (
    CheckpointPolicy,
    IngestJournal,
    SqliteBackend,
    restore_engine,
)
from repro.simulator import (
    Application,
    CallSpec,
    ComponentSpec,
    EndpointSpec,
)
from repro.streaming import SimulationStreamDriver, StreamingSieve
from repro.workload import constant_rate


def build_app() -> Application:
    def spec(name, **kwargs):
        defaults = dict(
            kind="generic",
            endpoints=(EndpointSpec("op", service_time=0.02),),
            concurrency=16,
        )
        defaults.update(kwargs)
        return ComponentSpec(name=name, **defaults)

    return Application("demo", [
        spec("front", calls=(CallSpec("mid", delay=0.4),)),
        spec("mid", calls=(CallSpec("back", delay=0.4),)),
        spec("back"),
    ])


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="sieve-record-"))
    config = StreamingConfig(window=20.0, hop=10.0, retention=300.0)
    app = build_app()

    # -- 1: stream with full persistence --------------------------------
    backend = SqliteBackend(workdir / "run.db")
    journal = IngestJournal(workdir / "ingest.journal")
    engine = StreamingSieve(config=config, seed=3, journal=journal,
                            application=app.name, workload="constant")
    engine.bus.subscribe(backend)  # capture every flushed batch
    engine.subscribe(CheckpointPolicy(engine, workdir / "state.ckpt",
                                      every=1))
    driver = SimulationStreamDriver(app, constant_rate(40.0),
                                    config=config, seed=3,
                                    record_frame=False, engine=engine)
    driver.run(50.0)
    journal.commit()
    print(f"streamed 50s: {engine.stats.windows} windows analyzed, "
          f"{backend.sample_count()} samples captured")

    # -- 2: crash and resume --------------------------------------------
    call_graph = driver.session.call_graph(2)
    backend.set_metadata({
        "application": app.name, "workload": "constant", "seed": 3,
        "duration": 50.0, "call_graph": call_graph.edges(),
    })
    del driver, engine  # the "crash"

    restored = restore_engine(workdir / "state.ckpt", config,
                              journal_path=workdir / "ingest.journal")
    resumed = SimulationStreamDriver(app, constant_rate(40.0),
                                     config=config, seed=3,
                                     record_frame=False, engine=restored)
    # resume_run fast-forwards the seeded simulation past everything
    # the journal already replayed, then keeps streaming.
    late = resumed.resume_run(30.0)
    print(f"resumed from checkpoint: windows "
          f"{[a.index for a in late]} continued incrementally "
          f"({restored.stats.reuse_fraction():.0%} component reuse)")

    # -- 3: replay the recorded database from disk ----------------------
    reopened = SqliteBackend(workdir / "run.db")
    frame = reopened.to_frame()
    from repro.simulator.app import LoadedRun
    from repro.tracing.callgraph import CallGraph
    from repro.tracing.sysdig import SysdigTracer

    graph = CallGraph()
    for caller, callee, count in reopened.metadata()["call_graph"]:
        graph.record_call(caller, callee, int(count))
    run = LoadedRun(application=app.name, workload="constant", seed=3,
                    duration=50.0, frame=frame, call_graph=graph,
                    store=MetricsStore(), tracer=SysdigTracer())
    result = Sieve(app).analyze(run, seed=3)
    keep = result.representative_keys()

    before, after = MetricsStore(), MetricsStore()
    before.replay_frame(frame)
    before.simulate_dashboard_reads()
    after.replay_frame(frame, keep=keep)
    after.simulate_dashboard_reads()
    b, a = before.usage.summary(), after.usage.summary()
    print(f"\nreplayed {frame.total_samples()} samples from disk "
          f"({len(frame)} -> {len(keep)} series kept):")
    for key in ("cpu_seconds", "db_bytes",
                "network_in_bytes", "network_out_bytes"):
        saving = reduction_percent(b[key], a[key])
        print(f"  {key:>18}: {b[key]:>12.1f} -> {a[key]:>11.1f} "
              f"({saving:.1f}% saved)")


if __name__ == "__main__":
    main()
