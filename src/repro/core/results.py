"""The result object of one full Sieve pipeline run."""

from __future__ import annotations

from dataclasses import dataclass

from repro.causality.depgraph import DependencyGraph
from repro.clustering.reduction import ComponentClustering
from repro.metrics.timeseries import MetricKey
from repro.simulator.app import LoadedRun


@dataclass
class SieveResult:
    """Outcome of Load -> Reduce -> Identify-dependencies."""

    run: LoadedRun
    clusterings: dict[str, ComponentClustering]
    dependency_graph: DependencyGraph

    # -- reduction statistics (Figure 4 / Section 6.1.2) ----------------

    def total_metrics(self) -> int:
        """Metrics recorded during the load."""
        return self.run.metric_count()

    def total_representatives(self) -> int:
        """Metrics left after Sieve's reduction."""
        return sum(c.n_clusters for c in self.clusterings.values())

    def reduction_factor(self) -> float:
        """How many-fold the metric space shrank."""
        reps = self.total_representatives()
        if reps == 0:
            raise ValueError("no representatives; reduction undefined")
        return self.total_metrics() / reps

    def reduction_by_component(self) -> dict[str, tuple[int, int]]:
        """component -> (metrics before, clusters after)."""
        return {
            name: (clustering.total_metrics, clustering.n_clusters)
            for name, clustering in self.clusterings.items()
        }

    # -- monitoring-cost hooks (Table 3) ---------------------------------

    def representative_keys(self) -> list[MetricKey]:
        """The reduced metric set, as store keys for replay."""
        return [
            MetricKey(component, metric)
            for component, clustering in self.clusterings.items()
            for metric in clustering.representatives
        ]

    # -- convenience ------------------------------------------------------

    def representatives_of(self, component: str) -> list[str]:
        """Representative metrics of one component."""
        return self.clusterings[component].representatives

    def summary(self) -> dict:
        """Compact description for logs and benchmark output."""
        return {
            "application": self.run.application,
            "metrics_before": self.total_metrics(),
            "metrics_after": self.total_representatives(),
            "reduction_factor": round(self.reduction_factor(), 2),
            **self.dependency_graph.summary(),
        }
