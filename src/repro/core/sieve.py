"""The Sieve pipeline orchestrator (paper Figure 1)."""

from __future__ import annotations

from repro.causality.pairwise import extract_dependencies
from repro.clustering.reduction import reduce_frame
from repro.core.config import SieveConfig
from repro.core.results import SieveResult
from repro.simulator.app import Application, LoadedRun
from repro.simulator.faults import FaultPlan


class Sieve:
    """Runs Load -> Reduce -> Identify-dependencies for one application.

    >>> from repro.apps import build_sharelatex_application
    >>> from repro.workload import constant_rate
    >>> sieve = Sieve(build_sharelatex_application())
    >>> result = sieve.run(constant_rate(20.0), duration=60.0, seed=1)
    >>> result.total_representatives() < result.total_metrics()
    True
    """

    def __init__(self, application: Application,
                 config: SieveConfig | None = None,
                 executor=None):
        """``executor`` (a
        :class:`repro.parallel.executor.ShardExecutor`) fans the
        per-component reductions of :meth:`analyze` out to workers;
        None keeps them inline.  The caller owns its lifecycle."""
        self.application = application
        self.config = config or SieveConfig()
        self.executor = executor

    # -- Step 1 -----------------------------------------------------------

    def load(self, workload_fn, duration: float, seed: int = 0,
             fault_plan: FaultPlan | None = None,
             workload_name: str = "custom") -> LoadedRun:
        """Load the application, recording metrics and the call graph."""
        cfg = self.config
        run = self.application.load(
            workload_fn,
            duration=duration,
            seed=seed,
            dt=cfg.simulation_dt,
            scrape_interval=cfg.grid_interval,
            fault_plan=fault_plan,
            workload_name=workload_name,
            warmup=cfg.warmup,
        )
        run.call_graph = run.tracer.call_graph(
            min_count=cfg.callgraph_min_connections
        )
        return run

    # -- Steps 2 and 3 -----------------------------------------------------

    def analyze(self, run: LoadedRun, seed: int = 0) -> SieveResult:
        """Reduce metrics and extract dependencies from a recorded run."""
        cfg = self.config
        clusterings = reduce_frame(
            run.frame,
            interval=cfg.grid_interval,
            variance_threshold=cfg.variance_threshold,
            max_k=cfg.max_clusters,
            seed=seed,
            executor=self.executor,
        )
        graph = extract_dependencies(
            run.frame,
            run.call_graph,
            clusterings,
            alpha=cfg.granger_alpha,
            lags=cfg.granger_lags,
            interval=cfg.grid_interval,
            filter_bidirectional=cfg.filter_bidirectional,
        )
        return SieveResult(run=run, clusterings=clusterings,
                           dependency_graph=graph)

    # -- the full pipeline ---------------------------------------------------

    def run(self, workload_fn, duration: float, seed: int = 0,
            fault_plan: FaultPlan | None = None,
            workload_name: str = "custom") -> SieveResult:
        """Execute all three steps and return the result."""
        loaded = self.load(workload_fn, duration, seed=seed,
                           fault_plan=fault_plan,
                           workload_name=workload_name)
        return self.analyze(loaded, seed=seed)
