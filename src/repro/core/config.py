"""All Sieve tunables in one place, with the paper's defaults."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SieveConfig:
    """Configuration of the three-step Sieve pipeline.

    Every default is the value the paper states (Section 3) or, where
    the paper is silent, a documented standard choice.
    """

    # -- Step 1: loading ------------------------------------------------
    grid_interval: float = 0.5
    """Metric discretization interval, seconds (Section 3.2 uses 500 ms
    instead of the k-Shape paper's 2 s)."""

    simulation_dt: float = 0.1
    """Fluid-simulation step, seconds."""

    warmup: float = 5.0
    """Seconds simulated before metric collection starts."""

    callgraph_min_connections: int = 2
    """Connections needed before a call-graph edge is trusted."""

    # -- Step 2: reduction ----------------------------------------------
    variance_threshold: float = 0.002
    """Unvarying-metric filter threshold (Section 3.2: var <= 0.002)."""

    max_clusters: int = 7
    """Upper bound of the k sweep (Section 3.2: "seven clusters per
    component was sufficient")."""

    kshape_max_iterations: int = 30

    # -- Step 3: dependencies --------------------------------------------
    granger_alpha: float = 0.05
    """Significance level for the Granger F-test (standard choice; the
    paper only says "below a critical value")."""

    granger_lags: tuple[int, ...] = (1, 2)
    """Candidate lags in grid steps; 1 step = the paper's 500 ms."""

    filter_bidirectional: bool = True
    """Drop mutually-causal metric pairs (hidden-common-cause symptom)."""

    extra: dict = field(default_factory=dict, compare=False)
    """Free-form extension knobs for experiments."""

    def __post_init__(self) -> None:
        if self.grid_interval <= 0 or self.simulation_dt <= 0:
            raise ValueError("intervals must be positive")
        if not 0 < self.granger_alpha < 1:
            raise ValueError("granger_alpha must lie in (0, 1)")
        if self.max_clusters < 1:
            raise ValueError("max_clusters must be >= 1")
        if not self.granger_lags:
            raise ValueError("need at least one candidate lag")
