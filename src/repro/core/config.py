"""All Sieve tunables in one place, with the paper's defaults."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SieveConfig:
    """Configuration of the three-step Sieve pipeline.

    Every default is the value the paper states (Section 3) or, where
    the paper is silent, a documented standard choice.
    """

    # -- Step 1: loading ------------------------------------------------
    grid_interval: float = 0.5
    """Metric discretization interval, seconds (Section 3.2 uses 500 ms
    instead of the k-Shape paper's 2 s)."""

    simulation_dt: float = 0.1
    """Fluid-simulation step, seconds."""

    warmup: float = 5.0
    """Seconds simulated before metric collection starts."""

    callgraph_min_connections: int = 2
    """Connections needed before a call-graph edge is trusted."""

    # -- Step 2: reduction ----------------------------------------------
    variance_threshold: float = 0.002
    """Unvarying-metric filter threshold (Section 3.2: var <= 0.002)."""

    max_clusters: int = 7
    """Upper bound of the k sweep (Section 3.2: "seven clusters per
    component was sufficient")."""

    kshape_max_iterations: int = 30

    # -- Step 3: dependencies --------------------------------------------
    granger_alpha: float = 0.05
    """Significance level for the Granger F-test (standard choice; the
    paper only says "below a critical value")."""

    granger_lags: tuple[int, ...] = (1, 2)
    """Candidate lags in grid steps; 1 step = the paper's 500 ms."""

    filter_bidirectional: bool = True
    """Drop mutually-causal metric pairs (hidden-common-cause symptom)."""

    extra: dict = field(default_factory=dict, compare=False)
    """Free-form extension knobs for experiments."""

    def __post_init__(self) -> None:
        if self.grid_interval <= 0 or self.simulation_dt <= 0:
            raise ValueError("intervals must be positive")
        if not 0 < self.granger_alpha < 1:
            raise ValueError("granger_alpha must lie in (0, 1)")
        if self.max_clusters < 1:
            raise ValueError("max_clusters must be >= 1")
        if not self.granger_lags:
            raise ValueError("need at least one candidate lag")


@dataclass(frozen=True)
class StreamingConfig:
    """Configuration of the streaming analysis engine.

    The engine runs Sieve's reduce + identify steps over a rolling
    window of freshly ingested samples (see :mod:`repro.streaming`).
    Components whose metric population and behaviour are unchanged
    reuse their previous clustering; metric-set changes and detected
    behaviour drift escalate to a re-cluster of just those components.
    """

    window: float = 20.0
    """Span of each analysis window, seconds of ingested data."""

    hop: float = 10.0
    """Cadence between consecutive window analyses, seconds (the
    *initial* cadence when :attr:`adaptive_hop` is enabled)."""

    adaptive_hop: bool = False
    """Scale the analysis cadence with drift pressure: a window whose
    re-clusters include a drift escalation halves the live hop (down
    to :attr:`hop_min`), a fully reused window stretches it by 25%
    (up to :attr:`hop_max`), so quiet systems analyze less often and
    drifting ones are watched closely.  Off by default -- the fixed
    :attr:`hop` cadence is the reproducible baseline."""

    hop_min: float = 0.0
    """Lower bound of the adaptive cadence, seconds (0 = :attr:`hop`,
    i.e. adaptation only ever slows analysis down)."""

    hop_max: float = 0.0
    """Upper bound of the adaptive cadence, seconds (0 = four times
    :attr:`hop`)."""

    retention: float = 120.0
    """How long the per-metric ring buffers keep samples, seconds."""

    max_points_per_series: int = 4096
    """Hard per-series sample bound (older samples are evicted), so a
    misbehaving exporter cannot grow the window store unboundedly."""

    min_window_samples: int = 32
    """Total samples a window must hold before it is analyzed."""

    drift_threshold: float = 6.0
    """Standardized location/spread shift (in baseline standard
    deviations) above which a metric counts as drifted."""

    drift_shape_threshold: float = 0.75
    """Coherence-weighted shape distance (SBD) above which a cluster
    representative counts as drifted."""

    drift_detector: str = "standard"
    """Which registered drift detector the engine scores windows with
    (see :data:`repro.api.registry.DRIFT_DETECTORS`); third-party
    detectors plug in via
    :func:`repro.api.register_drift_detector`."""

    full_refresh_windows: int = 0
    """Force a full re-cluster every N windows (0 = rely purely on
    metric-set changes and drift detection)."""

    history: int = 32
    """Window analyses the engine keeps for consumers (RCA diffs)."""

    bus_max_pending: int = 0
    """Backpressure cap on points buffered in the ingestion bus before
    the overflow policy sheds load (0 = unbounded, the default)."""

    bus_overflow_policy: str = "drop_oldest"
    """What to shed when ``bus_max_pending`` is exceeded:
    ``"drop_oldest"`` discards the oldest buffered points,
    ``"downsample"`` halves every buffered series (keeping every other
    sample) until the cap holds."""

    checkpoint_every_windows: int = 0
    """Auto-checkpoint cadence of
    :class:`repro.persistence.checkpoint.CheckpointPolicy` (0 = only
    checkpoint when explicitly asked)."""

    executor: str = "serial"
    """Shard-executor strategy for per-component window work
    (re-reduce + re-cluster, drift shape checks): ``"serial"`` runs
    inline, ``"thread"`` on a thread pool, ``"process"`` on a process
    pool (true parallelism), ``"shm"`` on a process pool with the
    window rings homed in shared memory so payload arrays cross to
    workers as descriptors instead of pickles (same clusterings as
    serial on every strategy -- tested).  See
    :mod:`repro.parallel.executor` and :mod:`repro.parallel.shm`."""

    executor_workers: int = 0
    """Pool size for the thread/process/shm executors (0 = all cores).
    A pool sized at one worker falls back to the serial executor."""

    writer: str = "sync"
    """How a durable store backend is driven: ``"sync"`` writes on the
    ingest path, ``"async"`` batches through a dedicated writer thread
    (:class:`repro.parallel.writer.BatchingWriter`) so the bus never
    blocks on durable writes."""

    writer_queue_batches: int = 256
    """Bound of the async writer's batch queue; a full queue blocks
    the ingest path (backpressure) instead of growing unboundedly."""

    journal_rotate_on_checkpoint: bool = True
    """Rotate the write-ahead ingest journal at checkpoint epochs and
    retire segments older than the retention horizon (a checkpoint
    plus the retained window makes older segments redundant for
    restart), so the journal no longer grows unboundedly."""

    sieve: SieveConfig = field(default_factory=SieveConfig)
    """The batch-analysis tunables applied inside every window."""

    def hop_bounds(self) -> tuple[float, float]:
        """Resolved (min, max) cadence of the adaptive hop."""
        lo = self.hop_min or self.hop
        hi = self.hop_max or 4.0 * self.hop
        return lo, hi

    def __post_init__(self) -> None:
        if self.window <= 0 or self.hop <= 0 or self.retention <= 0:
            raise ValueError("window, hop and retention must be positive")
        if self.hop_min < 0 or self.hop_max < 0:
            raise ValueError("hop bounds must be >= 0 (0 = default)")
        lo, hi = self.hop_bounds()
        if self.adaptive_hop and not lo <= self.hop <= hi:
            raise ValueError(
                f"adaptive cadence needs hop_min <= hop <= hop_max, "
                f"got {lo} <= {self.hop} <= {hi}"
            )
        if self.retention < self.window:
            raise ValueError("retention must cover at least one window")
        if self.max_points_per_series < 8:
            raise ValueError("max_points_per_series must be >= 8")
        if self.drift_threshold <= 0 or self.drift_shape_threshold <= 0:
            raise ValueError("drift thresholds must be positive")
        if self.full_refresh_windows < 0:
            raise ValueError("full_refresh_windows must be >= 0")
        if self.history < 2:
            raise ValueError("history must keep at least two windows")
        if self.bus_max_pending < 0:
            raise ValueError("bus_max_pending must be >= 0")
        if self.bus_overflow_policy not in ("drop_oldest", "downsample"):
            raise ValueError(
                f"unknown bus_overflow_policy "
                f"{self.bus_overflow_policy!r}"
            )
        if self.checkpoint_every_windows < 0:
            raise ValueError("checkpoint_every_windows must be >= 0")
        # Executor and drift-detector choices resolve through the
        # plugin registries, so a third-party strategy registered via
        # repro.api passes validation exactly like a builtin.  The
        # import is local: the registry module is a leaf, but this
        # module loads far too early to import it at module scope.
        from repro.api.registry import DRIFT_DETECTORS, EXECUTORS

        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r} "
                f"(registered: {', '.join(EXECUTORS.names())})"
            )
        if self.drift_detector not in DRIFT_DETECTORS:
            raise ValueError(
                f"unknown drift detector {self.drift_detector!r} "
                f"(registered: {', '.join(DRIFT_DETECTORS.names())})"
            )
        if self.executor_workers < 0:
            raise ValueError("executor_workers must be >= 0")
        if self.writer not in ("sync", "async"):
            raise ValueError(f"unknown writer {self.writer!r}")
        if self.writer_queue_batches < 1:
            raise ValueError("writer_queue_batches must be >= 1")
