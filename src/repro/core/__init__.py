"""The Sieve platform core: the three-step pipeline of the paper.

:class:`~repro.core.sieve.Sieve` orchestrates

1. **Load** the application under a workload while recording metrics
   and the call graph (:mod:`repro.simulator`, :mod:`repro.tracing`);
2. **Reduce** each component's metrics to representative metrics via
   k-Shape (:mod:`repro.clustering`);
3. **Identify dependencies** between communicating components via
   Granger causality (:mod:`repro.causality`).

The tunables live in :class:`~repro.core.config.SieveConfig`; the
outcome is a :class:`~repro.core.results.SieveResult` consumed by the
autoscaling and RCA engines.
"""

from repro.core.config import SieveConfig, StreamingConfig
from repro.core.incremental import analyze_incremental
from repro.core.results import SieveResult
from repro.core.serialize import (
    AnalysisSnapshot,
    from_snapshot,
    load_snapshot,
    save_snapshot,
    snapshot,
)
from repro.core.sieve import Sieve

__all__ = [
    "AnalysisSnapshot",
    "Sieve",
    "SieveConfig",
    "SieveResult",
    "StreamingConfig",
    "analyze_incremental",
    "from_snapshot",
    "load_snapshot",
    "save_snapshot",
    "snapshot",
]
