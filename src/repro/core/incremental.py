"""Incremental re-analysis (the paper's §9 future work).

"An interesting research challenge for the future would be to integrate
Sieve into the continuous integration pipeline of an application
development.  In this scenario, the dependency graph can be updated
incrementally, which would speed up the analytics part."

This module implements that extension: given the previous
:class:`~repro.core.results.SieveResult` and a fresh
:class:`~repro.simulator.app.LoadedRun`, only the components whose
metric population actually changed (metrics appeared/disappeared -- the
typical footprint of a deployed update) are re-clustered, and only the
Granger comparisons touching re-clustered components are re-run.  For
an update that touches one or two of fifteen components, this cuts the
analysis time by roughly the fraction of untouched components.

The shortcut is an approximation by design: unchanged components keep
their clusters *and representative metrics* from the previous analysis,
so slow drifts in metric behaviour (with an unchanged metric set) are
not picked up until the next full analysis.  Run a full
:meth:`repro.core.sieve.Sieve.analyze` periodically, incremental
updates in between -- or use the streaming engine
(:mod:`repro.streaming`), whose drift detector escalates exactly the
drifted components to a re-cluster between full analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.causality.depgraph import DependencyGraph
from repro.causality.pairwise import extract_dependencies
from repro.clustering.reduction import reduce_component
from repro.core.config import SieveConfig
from repro.core.results import SieveResult
from repro.simulator.app import LoadedRun
from repro.tracing.callgraph import CallGraph


@dataclass
class IncrementalStats:
    """What the incremental update actually had to recompute."""

    reclustered: list[str]
    reused: list[str]
    edges_retested: int
    edges_reused: int


def changed_metric_components(clusterings: dict, frame) -> list[str]:
    """Components of ``frame`` whose metric set differs from what the
    given clusterings cover (the streaming engine shares this check)."""
    changed = []
    for component in frame.components:
        clustering = clusterings.get(component)
        if clustering is None:
            changed.append(component)
            continue
        seen_before = {
            metric
            for cluster in clustering.clusters
            for metric in cluster.metrics
        } | set(clustering.filtered_metrics)
        if set(frame.metrics_of(component)) != seen_before:
            changed.append(component)
    return changed


def changed_components(previous: SieveResult, run: LoadedRun) -> list[str]:
    """Components whose exported metric set differs from last analysis."""
    return changed_metric_components(previous.clusterings, run.frame)


def restricted_call_graph(call_graph: CallGraph,
                          components: set[str]) -> CallGraph:
    """Only the call-graph edges touching ``components``."""
    out = CallGraph()
    for node in call_graph.components:
        out.add_component(node)
    for caller, callee, count in call_graph.edges():
        if caller in components or callee in components:
            out.record_call(caller, callee, count)
    return out


def merge_dependency_graphs(
    previous: DependencyGraph,
    fresh: DependencyGraph,
    changed: set[str],
    components,
) -> tuple[DependencyGraph, int]:
    """Overlay ``fresh`` relations onto the reusable part of ``previous``.

    Relations of ``previous`` touching a ``changed`` component are
    superseded by the fresh extraction, and relations whose endpoints
    are no longer among ``components`` (a component left the topology)
    are dropped rather than carried forward.  Returns the merged graph
    and the number of reused relations.
    """
    merged = DependencyGraph(components=components)
    current = set(components)
    edges_reused = 0
    for relation in previous.relations:
        if relation.source_component in changed \
                or relation.target_component in changed:
            continue
        if relation.source_component not in current \
                or relation.target_component not in current:
            continue
        merged.add_relation(relation)
        edges_reused += 1
    for relation in fresh.relations:
        merged.add_relation(relation)
    return merged, edges_reused


def analyze_incremental(
    previous: SieveResult,
    run: LoadedRun,
    config: SieveConfig | None = None,
    seed: int = 0,
) -> tuple[SieveResult, IncrementalStats]:
    """Update ``previous`` with a fresh run, recomputing only what moved.

    Returns the updated result plus bookkeeping about the reuse.  The
    returned result's ``run`` is the *new* run; clusterings of
    unchanged components are carried over from ``previous``.
    """
    cfg = config or SieveConfig()
    changed = set(changed_components(previous, run))

    clusterings = {}
    reused, reclustered = [], []
    for component in run.frame.components:
        if component in changed:
            clusterings[component] = reduce_component(
                component,
                run.frame.component_view(component),
                interval=cfg.grid_interval,
                variance_threshold=cfg.variance_threshold,
                max_k=cfg.max_clusters,
                seed=seed,
            )
            reclustered.append(component)
        else:
            clusterings[component] = previous.clusterings[component]
            reused.append(component)

    # Re-test only the call-graph edges with at least one changed end;
    # relations between untouched components carry over.
    touched_graph = restricted_call_graph(run.call_graph, changed)
    fresh = extract_dependencies(
        run.frame, touched_graph, clusterings,
        alpha=cfg.granger_alpha, lags=cfg.granger_lags,
        interval=cfg.grid_interval,
        filter_bidirectional=cfg.filter_bidirectional,
    )

    merged, edges_reused = merge_dependency_graphs(
        previous.dependency_graph, fresh, changed, clusterings.keys()
    )

    result = SieveResult(run=run, clusterings=clusterings,
                         dependency_graph=merged)
    stats = IncrementalStats(
        reclustered=sorted(reclustered),
        reused=sorted(reused),
        edges_retested=len(fresh),
        edges_reused=edges_reused,
    )
    return result, stats
