"""Persisting Sieve analysis results as JSON snapshots.

The CI-integration scenario of the paper's §9 needs analysis outputs
that outlive the process: the dependency graph and cluster metadata of
the last known-good build are the *correct* baseline the RCA engine
compares a faulty build against.  A snapshot captures everything those
workflows need -- cluster memberships, representatives, the dependency
graph, and the per-component metric population -- without the raw
sample data (which lives in the metrics store).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

import numpy as np

from repro.causality.depgraph import DependencyGraph, MetricRelation
from repro.clustering.reduction import Cluster, ComponentClustering
from repro.core.config import SieveConfig, StreamingConfig
from repro.core.results import SieveResult

#: Schema version written into every snapshot.
SNAPSHOT_VERSION = 1


# -- configuration codecs --------------------------------------------------
#
# The declarative run specs of :mod:`repro.api` embed the two config
# dataclasses; these codecs pin their JSON/TOML-compatible dict shape
# (tuples become lists, nested configs become nested tables) and
# reject unknown keys on the way back in, so a typo in a spec file
# fails loudly instead of silently running with defaults.


def _check_known(data: dict, cls: type, known: set[str]) -> None:
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s): "
            f"{', '.join(sorted(unknown))}"
        )


def sieve_config_to_dict(config: SieveConfig) -> dict:
    """A :class:`SieveConfig` as a JSON/TOML-compatible dict."""
    data = dataclasses.asdict(config)
    data["granger_lags"] = [int(lag) for lag in config.granger_lags]
    return data


def sieve_config_from_dict(data: dict) -> SieveConfig:
    """Inverse of :func:`sieve_config_to_dict` (partial dicts allowed:
    absent fields keep the paper's defaults)."""
    known = {f.name for f in dataclasses.fields(SieveConfig)}
    _check_known(data, SieveConfig, known)
    kwargs = dict(data)
    if "granger_lags" in kwargs:
        kwargs["granger_lags"] = tuple(
            int(lag) for lag in kwargs["granger_lags"]
        )
    return SieveConfig(**kwargs)


def streaming_config_to_dict(config: StreamingConfig) -> dict:
    """A :class:`StreamingConfig` (with its nested sieve) as a dict."""
    data = dataclasses.asdict(config)
    data["sieve"] = sieve_config_to_dict(config.sieve)
    return data


def streaming_config_from_dict(data: dict) -> StreamingConfig:
    """Inverse of :func:`streaming_config_to_dict` (partial allowed)."""
    known = {f.name for f in dataclasses.fields(StreamingConfig)}
    _check_known(data, StreamingConfig, known)
    kwargs = dict(data)
    if "sieve" in kwargs:
        kwargs["sieve"] = sieve_config_from_dict(kwargs["sieve"])
    return StreamingConfig(**kwargs)


def clustering_to_dict(clustering: ComponentClustering) -> dict:
    """One component clustering as a JSON-compatible dict."""
    return {
        "silhouette": clustering.silhouette,
        "k_scores": {str(k): v for k, v in clustering.k_scores.items()},
        "filtered_metrics": list(clustering.filtered_metrics),
        "total_metrics": clustering.total_metrics,
        "clusters": [
            {
                "index": cluster.index,
                "metrics": list(cluster.metrics),
                "representative": cluster.representative,
                "centroid": [float(x) for x in cluster.centroid],
                "distances": {m: float(d)
                              for m, d in cluster.distances.items()},
            }
            for cluster in clustering.clusters
        ],
    }


def clustering_from_dict(component: str,
                         payload: dict) -> ComponentClustering:
    """Inverse of :func:`clustering_to_dict`."""
    clusters = [
        Cluster(
            index=int(c["index"]),
            metrics=list(c["metrics"]),
            representative=c["representative"],
            centroid=np.asarray(c["centroid"], dtype=float),
            distances={m: float(d) for m, d in c["distances"].items()},
        )
        for c in payload["clusters"]
    ]
    return ComponentClustering(
        component=component,
        clusters=clusters,
        silhouette=float(payload["silhouette"]),
        k_scores={int(k): float(v)
                  for k, v in payload["k_scores"].items()},
        filtered_metrics=list(payload["filtered_metrics"]),
        total_metrics=int(payload["total_metrics"]),
    )


def graph_to_dict(graph: DependencyGraph) -> dict:
    """A dependency graph as a JSON-compatible dict."""
    return {
        "components": graph.components,
        "relations": [
            {
                "source_component": r.source_component,
                "source_metric": r.source_metric,
                "target_component": r.target_component,
                "target_metric": r.target_metric,
                "lag": r.lag,
                "p_value": r.p_value,
                "f_statistic": r.f_statistic,
            }
            for r in graph.relations
        ],
    }


def graph_from_dict(data: dict) -> DependencyGraph:
    """Inverse of :func:`graph_to_dict`."""
    graph = DependencyGraph(components=data["components"])
    for r in data["relations"]:
        graph.add_relation(MetricRelation(
            source_component=r["source_component"],
            source_metric=r["source_metric"],
            target_component=r["target_component"],
            target_metric=r["target_metric"],
            lag=int(r["lag"]),
            p_value=float(r["p_value"]),
            f_statistic=float(r.get("f_statistic", 0.0)),
        ))
    return graph


def snapshot(result: SieveResult) -> dict:
    """Serialize a :class:`SieveResult` to a JSON-compatible dict."""
    clusterings = {
        component: clustering_to_dict(clustering)
        for component, clustering in result.clusterings.items()
    }
    metrics_by_component = {
        component: result.run.frame.metrics_of(component)
        for component in result.run.frame.components
    }
    return {
        "version": SNAPSHOT_VERSION,
        "run": {
            "application": result.run.application,
            "workload": result.run.workload,
            "seed": result.run.seed,
            "duration": result.run.duration,
        },
        "metrics_by_component": metrics_by_component,
        "clusterings": clusterings,
        "dependency_graph": graph_to_dict(result.dependency_graph),
    }


@dataclass
class AnalysisSnapshot:
    """A loaded snapshot: the analysis outputs without the raw samples."""

    application: str
    workload: str
    seed: int
    duration: float
    metrics_by_component: dict[str, list[str]]
    clusterings: dict[str, ComponentClustering]
    dependency_graph: DependencyGraph
    version: int = SNAPSHOT_VERSION
    raw: dict = field(default_factory=dict, repr=False)

    def total_metrics(self) -> int:
        return sum(len(m) for m in self.metrics_by_component.values())

    def total_representatives(self) -> int:
        return sum(c.n_clusters for c in self.clusterings.values())


def from_snapshot(data: dict) -> AnalysisSnapshot:
    """Rebuild the analysis objects from a snapshot dict."""
    version = data.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {version!r} "
            f"(expected {SNAPSHOT_VERSION})"
        )
    clusterings = {
        component: clustering_from_dict(component, payload)
        for component, payload in data["clusterings"].items()
    }
    graph = graph_from_dict(data["dependency_graph"])
    run = data["run"]
    return AnalysisSnapshot(
        application=run["application"],
        workload=run["workload"],
        seed=int(run["seed"]),
        duration=float(run["duration"]),
        metrics_by_component={
            c: list(m) for c, m in data["metrics_by_component"].items()
        },
        clusterings=clusterings,
        dependency_graph=graph,
        raw=data,
    )


def save_snapshot(result: SieveResult, path) -> None:
    """Write a result's snapshot to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot(result), handle, indent=1, sort_keys=True)


def load_snapshot(path) -> AnalysisSnapshot:
    """Load a snapshot previously written by :func:`save_snapshot`."""
    with open(path, "r", encoding="utf-8") as handle:
        return from_snapshot(json.load(handle))
