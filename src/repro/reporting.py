"""Human-readable rendering of Sieve's outputs.

The paper's workflow ends with a developer reading the results: the
dependency graph (Figure 6), the reduction summary (Figure 4) and the
RCA candidate list (Table 5 / Figure 8).  This module renders all three
as plain text for terminals, logs and CI job output.
"""

from __future__ import annotations

from repro.causality.depgraph import DependencyGraph
from repro.core.results import SieveResult
from repro.rca.engine import RCAReport


def render_dependency_graph(graph: DependencyGraph,
                            max_relations_per_edge: int = 2) -> str:
    """ASCII rendering of the component dependency graph.

    Components are listed with their outgoing edges; each edge shows up
    to ``max_relations_per_edge`` metric relations with lag annotation.
    """
    lines: list[str] = []
    edges_by_source: dict[str, list] = {}
    for relation in graph.relations:
        edges_by_source.setdefault(relation.source_component,
                                   []).append(relation)
    for component in graph.components:
        outgoing = edges_by_source.get(component, [])
        if not outgoing:
            continue
        lines.append(component)
        by_target: dict[str, list] = {}
        for relation in outgoing:
            by_target.setdefault(relation.target_component,
                                 []).append(relation)
        for target in sorted(by_target):
            relations = sorted(by_target[target], key=lambda r: r.p_value)
            lines.append(f"  --> {target} ({len(relations)} relations)")
            for relation in relations[:max_relations_per_edge]:
                lines.append(
                    f"        {relation.source_metric} => "
                    f"{relation.target_metric} "
                    f"[lag {relation.lag}, p={relation.p_value:.2g}]"
                )
    return "\n".join(lines) if lines else "(no dependencies found)"


def render_reduction_summary(result: SieveResult) -> str:
    """Per-component before/after table plus totals (Figure 4 style)."""
    lines = [f"{'component':<18} {'metrics':>8} {'clusters':>9} "
             f"{'silhouette':>11}  representative sample"]
    for component, clustering in sorted(result.clusterings.items()):
        sample = ", ".join(clustering.representatives[:2])
        if clustering.n_clusters > 2:
            sample += ", ..."
        lines.append(
            f"{component:<18} {clustering.total_metrics:>8} "
            f"{clustering.n_clusters:>9} {clustering.silhouette:>11.3f}"
            f"  {sample}"
        )
    lines.append(
        f"{'TOTAL':<18} {result.total_metrics():>8} "
        f"{result.total_representatives():>9} "
        f"{'':>11}  ({result.reduction_factor():.1f}x reduction)"
    )
    return "\n".join(lines)


def render_rca_report(report: RCAReport, max_candidates: int = 10,
                      max_metrics: int = 4) -> str:
    """The RCA engine's final output as a readable candidate list."""
    lines = [
        f"similarity threshold: {report.threshold}",
        f"components with novel metrics: {len(report.component_ranking)}",
    ]
    histogram = report.cluster_novelty_histogram()
    lines.append(
        "cluster novelty: "
        + ", ".join(f"{k}={histogram[k]}" for k in
                    ("new", "discarded", "new_and_discarded", "changed")
                    if histogram.get(k))
    )
    state = report.implicated_state()
    lines.append(
        f"implicated state: {state['components']} components, "
        f"{state['clusters']} clusters, {state['metrics']} metrics"
    )
    lines.append("")
    lines.append("root-cause candidates:")
    for candidate in report.final_ranking[:max_candidates]:
        lines.append(
            f"  #{candidate.rank} {candidate.component} "
            f"(novelty {candidate.novelty_score}, "
            f"{len(candidate.metrics)} metrics)"
        )
        interesting = sorted(
            candidate.metrics,
            key=lambda m: (0 if ("ERROR" in m or "DOWN" in m
                                 or "fail" in m.lower()) else 1, m),
        )
        for metric in interesting[:max_metrics]:
            lines.append(f"       - {metric}")
    return "\n".join(lines)
