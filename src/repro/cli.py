"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the paper's workflows:

* ``pipeline`` -- run Load -> Reduce -> Identify on an application and
  print the reduction and dependency summary (optionally write a JSON
  snapshot);
* ``stream`` -- run the streaming analysis engine against a live
  co-simulated application and print per-window summaries;
* ``rca`` -- run the OpenStack correct/faulty comparison and print the
  ranked root-cause candidates;
* ``trace-overhead`` -- the Figure 5 tracing-technique comparison;
* ``catalog`` -- list the components and metric counts of an
  application model.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import (
    build_openstack_application,
    build_sharelatex_application,
    openstack_fault_plan,
    run_ab_benchmark,
)
from repro.core import Sieve, StreamingConfig, save_snapshot
from repro.rca import RCAEngine
from repro.streaming import SimulationStreamDriver
from repro.workload import RallyRunner, RandomWorkload, constant_rate

APPLICATIONS = {
    "sharelatex": build_sharelatex_application,
    "openstack": build_openstack_application,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds of load")


def cmd_pipeline(args) -> int:
    application = APPLICATIONS[args.app]()
    sieve = Sieve(application)
    workload = RandomWorkload(duration=args.duration, seed=args.seed)
    result = sieve.run(workload, duration=args.duration, seed=args.seed,
                       workload_name="random")
    summary = result.summary()
    for key, value in summary.items():
        print(f"{key:>18}: {value}")
    hub = result.dependency_graph.most_connected_metric()
    if hub is not None:
        print(f"{'guiding metric':>18}: {hub[0]}/{hub[1]}")
    if args.snapshot:
        save_snapshot(result, args.snapshot)
        print(f"{'snapshot':>18}: written to {args.snapshot}")
    return 0


def cmd_stream(args) -> int:
    application = APPLICATIONS[args.app]()
    config = StreamingConfig(
        window=args.window,
        hop=args.hop,
        retention=max(args.retention, args.window),
    )
    if args.workload == "random":
        workload = RandomWorkload(duration=args.duration, seed=args.seed)
    else:
        workload = constant_rate(args.rate)
    driver = SimulationStreamDriver(
        application, workload, config=config, seed=args.seed,
        workload_name=args.workload, record_frame=args.compare,
    )

    def on_window(analysis) -> None:
        s = analysis.summary()
        reasons = ", ".join(
            f"{reason}:{len(names)}"
            for reason, names in sorted(s["reasons"].items())
        ) or "-"
        print(f"window {s['window']:>3}  "
              f"[{s['span'][0]:>7.1f}, {s['span'][1]:>7.1f}]  "
              f"metrics={s['metrics']:>4}  reps={s['representatives']:>3}  "
              f"relations={s['relations']:>4}  "
              f"recluster={s['reclustered']:>2} ({reasons})  "
              f"reuse={s['reused']:>2}  "
              f"analysis={s['analysis_ms']:>8.1f}ms")

    print(f"streaming {args.app} for {args.duration:.0f}s "
          f"(window={config.window:.0f}s hop={config.hop:.0f}s "
          f"retention={config.retention:.0f}s)")
    driver.run(args.duration, on_window=on_window)
    print()
    for key, value in driver.engine.summary().items():
        print(f"{key:>24}: {value}")
    if args.compare:
        final = driver.final_analysis()
        batch = driver.batch_result()
        from repro.causality.depgraph import edge_jaccard
        if final is not None:
            print(f"{'stream reps (final)':>24}: "
                  f"{final.total_representatives()}")
            print(f"{'batch reps':>24}: {batch.total_representatives()}")
            print(f"{'edge jaccard':>24}: "
                  f"{edge_jaccard(final.dependency_graph, batch.dependency_graph):.3f}")
    return 0


def cmd_rca(args) -> int:
    application = build_openstack_application()
    sieve = Sieve(application)
    rally = RallyRunner(times=args.iterations, concurrency=5,
                        seed=args.seed)
    duration = min(rally.duration, args.duration)
    correct = sieve.run(rally, duration=duration, seed=args.seed,
                        workload_name="rally-correct")
    faulty = sieve.run(rally, duration=duration, seed=args.seed,
                       fault_plan=openstack_fault_plan(),
                       workload_name="rally-faulty")
    report = RCAEngine().compare(correct, faulty,
                                 threshold=args.threshold)
    print(f"{'rank':>4}  {'component':<22} {'novelty':>8}  key metrics")
    for candidate in report.final_ranking:
        highlights = [m for m in candidate.metrics
                      if "ERROR" in m or "DOWN" in m or "fail" in m]
        print(f"{candidate.rank:>4}  {candidate.component:<22} "
              f"{candidate.novelty_score:>8}  "
              f"{', '.join(highlights[:3]) or '-'}")
    return 0


def cmd_trace_overhead(args) -> int:
    results = {
        name: run_ab_benchmark(name, n_requests=args.requests,
                               seed=args.seed)
        for name in ("native", "tcpdump", "sysdig", "ptrace")
    }
    native = results["native"].completion_time
    print(f"{'technique':<10} {'time [s]':>10} {'slowdown':>10}")
    for name, outcome in results.items():
        print(f"{name:<10} {outcome.completion_time:>10.3f} "
              f"{outcome.completion_time / native:>10.3f}")
    return 0


def cmd_catalog(args) -> int:
    application = APPLICATIONS[args.app]()
    print(f"{args.app}: {len(application.specs)} components")
    for spec in application.specs:
        calls = ", ".join(c.target for c in spec.calls) or "-"
        print(f"  {spec.name:<20} kind={spec.kind:<13} "
              f"endpoints={len(spec.endpoints)}  calls: {calls}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sieve reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_pipeline = sub.add_parser(
        "pipeline", help="run the full Sieve pipeline on an application")
    p_pipeline.add_argument("--app", choices=sorted(APPLICATIONS),
                            default="sharelatex")
    p_pipeline.add_argument("--snapshot", metavar="PATH",
                            help="write the analysis snapshot as JSON")
    _add_common(p_pipeline)
    p_pipeline.set_defaults(func=cmd_pipeline)

    p_stream = sub.add_parser(
        "stream",
        help="run the streaming analysis engine on a live application")
    p_stream.add_argument("--app", choices=sorted(APPLICATIONS),
                          default="sharelatex")
    p_stream.add_argument("--window", type=float, default=20.0,
                          help="analysis window span, seconds")
    p_stream.add_argument("--hop", type=float, default=10.0,
                          help="analysis cadence, seconds")
    p_stream.add_argument("--retention", type=float, default=120.0,
                          help="ring-buffer retention, seconds")
    p_stream.add_argument("--workload", choices=("random", "constant"),
                          default="random")
    p_stream.add_argument("--rate", type=float, default=25.0,
                          help="request rate of the constant workload")
    p_stream.add_argument("--compare", action="store_true",
                          help="also run the batch analysis and report "
                               "streaming-vs-batch convergence")
    _add_common(p_stream)
    p_stream.set_defaults(func=cmd_stream)

    p_rca = sub.add_parser(
        "rca", help="OpenStack correct-vs-faulty root cause analysis")
    p_rca.add_argument("--iterations", type=int, default=15,
                       help="Rally boot_and_delete iterations")
    p_rca.add_argument("--threshold", type=float, default=0.5,
                       choices=[0.0, 0.5, 0.6, 0.7])
    _add_common(p_rca)
    p_rca.set_defaults(func=cmd_rca)

    p_trace = sub.add_parser(
        "trace-overhead", help="Figure 5 tracing-overhead comparison")
    p_trace.add_argument("--requests", type=int, default=10_000)
    p_trace.add_argument("--seed", type=int, default=1)
    p_trace.set_defaults(func=cmd_trace_overhead)

    p_catalog = sub.add_parser(
        "catalog", help="list an application model's components")
    p_catalog.add_argument("--app", choices=sorted(APPLICATIONS),
                           default="sharelatex")
    p_catalog.set_defaults(func=cmd_catalog)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
