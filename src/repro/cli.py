"""Command-line interface: ``python -m repro <command>``.

The CLI is a *thin adapter* over the public pipeline API
(:mod:`repro.api`): each subcommand parses its flags into a
declarative :class:`~repro.api.spec.RunSpec` -- or loads one from a
``--spec run.toml``/``run.json`` file, with explicitly passed flags
overriding the file -- and delegates to
:func:`~repro.api.session.build_pipeline`.  No bus, backend, executor
or consumer is constructed here; every policy name resolves through
the plugin registries, so registered extensions are immediately
reachable from the command line.

Subcommands mirror the paper's workflows:

* ``pipeline`` -- run Load -> Reduce -> Identify on an application;
* ``stream`` -- the streaming analysis engine against a live
  co-simulated application (crash-safe with ``--journal`` /
  ``--checkpoint``, resumable with ``--resume``);
* ``serve`` -- the same engine as an HTTP service: ``POST /ingest``
  feeds the bus, ``GET /api/...`` serves the latest analysis (same
  journal/checkpoint/resume semantics as ``stream``);
* ``record`` -- capture a live run into a durable storage backend;
* ``replay`` -- re-analyze a recorded backend from disk (Table 3);
* ``rca`` -- the OpenStack correct/faulty root-cause comparison;
* ``trace-overhead`` -- the Figure 5 tracing-technique comparison;
* ``catalog`` -- list an application model's components;
* ``spec`` -- emit the fully resolved spec of any invocation, for
  reproducibility: re-feeding it via ``--spec`` reproduces the run
  bit-identically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.api import (
    APPLICATIONS,
    BACKENDS,
    EXECUTORS,
    WORKLOADS,
    RunSpec,
    build_pipeline,
    load_spec,
    spec_to_json,
    spec_to_toml,
)
from repro.api.spec import RUN_MODES


# -- flag registration -----------------------------------------------------
#
# Each _add_* helper registers one flag group; ``suppress=True`` builds
# the shadow parser whose namespace contains *only* explicitly passed
# flags (argparse.SUPPRESS defaults), which is how spec-file overriding
# knows which flags the user actually typed.


def _dflt(suppress: bool, value: Any) -> Any:
    return argparse.SUPPRESS if suppress else value


def _add_common(parser, suppress: bool = False) -> None:
    parser.add_argument("--seed", type=int,
                        default=_dflt(suppress, 1))
    parser.add_argument("--duration", type=float,
                        default=_dflt(suppress, 120.0),
                        help="simulated seconds of load")


def _add_spec_file(parser) -> None:
    parser.add_argument("--spec", metavar="PATH",
                        help="load a RunSpec file (.toml or .json); "
                             "explicitly passed flags override it")


def _add_app(parser, suppress: bool = False) -> None:
    parser.add_argument("--app", choices=APPLICATIONS.names(),
                        default=_dflt(suppress, "sharelatex"))


def _add_workload(parser, suppress: bool = False) -> None:
    parser.add_argument("--workload", choices=WORKLOADS.names(),
                        default=_dflt(suppress, "random"))
    parser.add_argument("--rate", type=float,
                        default=_dflt(suppress, 25.0),
                        help="request rate of rate-shaped workloads")


def _add_parallel(parser, suppress: bool = False,
                  note: str = "") -> None:
    parser.add_argument("--executor", choices=EXECUTORS.names(),
                        default=_dflt(suppress, "serial"),
                        help="where per-component analysis shards run "
                             "(process = true parallelism, shm = "
                             "process with zero-copy shared-memory "
                             "windows; identical results to serial on "
                             "the same seed)" + note)
    parser.add_argument("--workers", type=int,
                        default=_dflt(suppress, 0), metavar="N",
                        help="pool size for thread/process/shm "
                             "executors "
                             "(0 = all cores; 1 falls back to serial)")


def _add_compact(parser) -> None:
    parser.add_argument("--compact", action="store_true",
                        default=False,
                        help="compact the durable store after the run "
                             "(merge small spill segments / VACUUM "
                             "sqlite, dropping samples past the "
                             "--store-retention horizon)")


def _add_window_flags(parser, suppress: bool = False) -> None:
    parser.add_argument("--window", type=float,
                        default=_dflt(suppress, 20.0),
                        help="analysis window span, seconds")
    parser.add_argument("--hop", type=float,
                        default=_dflt(suppress, 10.0),
                        help="analysis cadence, seconds")
    parser.add_argument("--retention", type=float,
                        default=_dflt(suppress, 120.0),
                        help="ring-buffer retention, seconds")
    parser.add_argument("--adaptive-hop", action="store_true",
                        default=_dflt(suppress, False),
                        help="scale the analysis cadence with drift "
                             "pressure (quiet systems analyze less "
                             "often), bounded by --hop-min/--hop-max")
    parser.add_argument("--hop-min", type=float,
                        default=_dflt(suppress, 0.0),
                        help="lower bound of the adaptive cadence "
                             "(0 = --hop)")
    parser.add_argument("--hop-max", type=float,
                        default=_dflt(suppress, 0.0),
                        help="upper bound of the adaptive cadence "
                             "(0 = 4x --hop)")


def _add_persistence_flags(parser, suppress: bool = False) -> None:
    parser.add_argument("--journal", metavar="PATH",
                        default=_dflt(suppress, ""),
                        help="write-ahead ingest journal (makes the "
                             "run replayable after a crash)")
    parser.add_argument("--checkpoint", metavar="PATH",
                        default=_dflt(suppress, ""),
                        help="checkpoint analysis state to PATH")
    parser.add_argument("--checkpoint-every", type=int,
                        default=_dflt(suppress, 1), metavar="N",
                        help="checkpoint every N analyzed windows")
    parser.add_argument("--resume", action="store_true",
                        default=_dflt(suppress, False),
                        help="restore state from --checkpoint (and "
                             "replay --journal) before streaming")
    parser.add_argument("--store", metavar="PATH",
                        default=_dflt(suppress, ""),
                        help="write ingested samples through to a "
                             "durable store backend at PATH")
    parser.add_argument("--store-backend", choices=BACKENDS.names(),
                        default=_dflt(suppress, "sqlite"),
                        help="backend kind behind --store")
    parser.add_argument("--store-retention", type=float,
                        default=_dflt(suppress, 0.0),
                        help="compaction horizon of --compact / "
                             "Session.compact(), seconds "
                             "(0 keeps everything)")
    parser.add_argument("--store-schedule", metavar="SCHEDULE",
                        default=_dflt(suppress, ""),
                        help="tiered-retention schedule applied by "
                             "--compact, e.g. "
                             "'1000s:full,4000s:1m,inf:10m' (full "
                             "resolution for the newest 1000s, then "
                             "mean/min/max/count rollups; empty = "
                             "full resolution everywhere)")
    parser.add_argument("--writer", choices=("sync", "async"),
                        default=_dflt(suppress, "sync"),
                        help="drive the --store backend inline "
                             "(sync) or through a batching writer "
                             "thread (async) so ingest never blocks "
                             "on durable writes")


def _add_telemetry_flags(parser, suppress: bool = False) -> None:
    parser.add_argument("--telemetry", action="store_true",
                        default=_dflt(suppress, False),
                        help="collect self-telemetry (metrics + "
                             "per-window phase spans); merged into "
                             "the end-of-run summary")
    parser.add_argument("--telemetry-port", type=int,
                        default=_dflt(suppress, 0), metavar="PORT",
                        help="serve /metrics (Prometheus), "
                             "/metrics.json, /traces and /healthz on "
                             "PORT while streaming (implies "
                             "--telemetry)")
    parser.add_argument("--telemetry-host", metavar="HOST",
                        default=_dflt(suppress, "127.0.0.1"),
                        help="bind address of --telemetry-port")


def _add_stream_flags(parser, suppress: bool = False) -> None:
    _add_app(parser, suppress)
    _add_window_flags(parser, suppress)
    _add_workload(parser, suppress)
    parser.add_argument("--compare", action="store_true",
                        default=_dflt(suppress, False),
                        help="also run the batch analysis and report "
                             "streaming-vs-batch convergence")
    _add_persistence_flags(parser, suppress)
    _add_telemetry_flags(parser, suppress)
    parser.add_argument("--progress", type=int, default=0,
                        metavar="N",
                        help="print a backpressure progress line "
                             "(bus shedding + writer queue) every N "
                             "windows (0 = off)")
    _add_parallel(parser, suppress)
    _add_common(parser, suppress)


def _add_serve_flags(parser, suppress: bool = False) -> None:
    parser.add_argument("--app", default=_dflt(suppress, "http"),
                        help="run label recorded on every analysis "
                             "(serve mode has no simulator, so any "
                             "name is accepted)")
    parser.add_argument("--port", type=int,
                        default=_dflt(suppress, 0), metavar="PORT",
                        help="serve /ingest, /api/... and /metrics "
                             "on PORT (0 = ephemeral; printed at "
                             "startup)")
    parser.add_argument("--host", metavar="HOST",
                        default=_dflt(suppress, "127.0.0.1"),
                        help="bind address of --port")
    parser.add_argument("--clock", choices=("ingest", "wall"),
                        default=_dflt(suppress, "ingest"),
                        help="schedule analysis hops off ingest "
                             "watermarks (deterministic) or the wall "
                             "clock (a poller thread)")
    parser.add_argument("--poll-interval", type=float,
                        default=_dflt(suppress, 0.0),
                        help="wall seconds between analysis offers "
                             "for --clock wall (0 = --hop)")
    parser.add_argument("--event-history", type=int,
                        default=_dflt(suppress, 256), metavar="N",
                        help="operational events retained behind "
                             "/api/events")
    parser.add_argument("--topology", action="append",
                        default=_dflt(suppress, None),
                        metavar="CALLER:CALLEE[:COUNT]",
                        help="declare one static deployment edge "
                             "(repeatable); HTTP ingest has no tracer "
                             "to observe calls")
    _add_window_flags(parser, suppress)
    _add_persistence_flags(parser, suppress)
    _add_telemetry_flags(parser, suppress)
    _add_parallel(parser, suppress)
    _add_common(parser, suppress)


def _add_record_flags(parser, suppress: bool = False) -> None:
    _add_app(parser, suppress)
    parser.add_argument("--backend", choices=BACKENDS.names(),
                        default=_dflt(suppress, "sqlite"))
    parser.add_argument("--out", metavar="PATH",
                        default=_dflt(suppress, ""),
                        help="sqlite database file or spill directory")
    _add_workload(parser, suppress)
    parser.add_argument("--store-retention", type=float,
                        default=_dflt(suppress, 0.0),
                        help="compaction horizon of --compact, seconds")
    parser.add_argument("--store-schedule", metavar="SCHEDULE",
                        default=_dflt(suppress, ""),
                        help="tiered-retention schedule applied by "
                             "--compact (see 'stream --help')")
    parser.add_argument("--writer", choices=("sync", "async"),
                        default=_dflt(suppress, "sync"),
                        help="drive the backend inline (sync) or "
                             "through a batching writer thread "
                             "(async)")
    _add_parallel(parser, suppress,
                  note="; recording runs no analysis, so this only "
                       "matters to scripts sharing flags with "
                       "stream/replay")
    _add_common(parser, suppress)


def _add_replay_flags(parser, suppress: bool = False) -> None:
    parser.add_argument("--backend", choices=BACKENDS.names(),
                        default=_dflt(suppress, "sqlite"))
    parser.add_argument("--path", metavar="PATH",
                        default=_dflt(suppress, ""),
                        help="recorded sqlite file or spill directory")
    parser.add_argument("--seed", type=int, default=_dflt(suppress, 1))
    _add_parallel(parser, suppress)


def _add_pipeline_flags(parser, suppress: bool = False) -> None:
    _add_app(parser, suppress)
    parser.add_argument("--snapshot", metavar="PATH",
                        default=_dflt(suppress, ""),
                        help="write the analysis snapshot as JSON")
    _add_common(parser, suppress)


def _add_rca_flags(parser, suppress: bool = False) -> None:
    parser.add_argument("--iterations", type=int,
                        default=_dflt(suppress, 15),
                        help="Rally boot_and_delete iterations")
    parser.add_argument("--threshold", type=float,
                        default=_dflt(suppress, 0.5),
                        choices=[0.0, 0.5, 0.6, 0.7])
    _add_common(parser, suppress)


def _add_trace_flags(parser, suppress: bool = False) -> None:
    parser.add_argument("--requests", type=int,
                        default=_dflt(suppress, 10_000))
    parser.add_argument("--seed", type=int, default=_dflt(suppress, 1))


def _add_catalog_flags(parser, suppress: bool = False) -> None:
    _add_app(parser, suppress)


_MODE_FLAGS = {
    "pipeline": _add_pipeline_flags,
    "stream": _add_stream_flags,
    "serve": _add_serve_flags,
    "record": _add_record_flags,
    "replay": _add_replay_flags,
    "rca": _add_rca_flags,
    "trace-overhead": _add_trace_flags,
    "catalog": _add_catalog_flags,
}


# -- flags -> RunSpec ------------------------------------------------------


def _parse_topology(edges) -> list:
    """``caller:callee[:count]`` CLI edges -> ServiceSpec topology."""
    parsed = []
    for edge in edges or []:
        parts = str(edge).split(":")
        if len(parts) not in (2, 3) or not parts[0] or not parts[1]:
            raise ValueError(
                f"topology edge must be CALLER:CALLEE[:COUNT], "
                f"got {edge!r}"
            )
        if len(parts) == 3:
            parsed.append([parts[0], parts[1], int(parts[2])])
        else:
            parsed.append([parts[0], parts[1]])
    return parsed


def _merge(base: dict, overrides: dict) -> dict:
    """Recursively overlay ``overrides`` onto ``base`` (in place)."""
    for key, value in overrides.items():
        if isinstance(value, dict) and isinstance(base.get(key), dict):
            _merge(base[key], value)
        else:
            base[key] = value
    return base


def _spec_from_args(args, mode: str) -> RunSpec:
    """Resolve the declarative spec of one invocation.

    Without ``--spec`` the flags (including their defaults) *are* the
    spec; with it, the file is the base and only explicitly passed
    flags override.
    """
    spec_path = getattr(args, "spec", None)
    provided: set = getattr(args, "_provided", set(vars(args)))
    if spec_path:
        data = load_spec(spec_path).to_dict()
        if data.get("mode") not in (None, mode):
            raise ValueError(
                f"--spec file declares mode {data['mode']!r}, "
                f"but the {mode!r} subcommand was invoked"
            )
    else:
        data = {}
        provided = set(vars(args))  # defaults are the spec

    overrides: dict = {}

    def put(path: str, dest: str, value_map=None) -> None:
        if dest not in provided or not hasattr(args, dest):
            return
        value = getattr(args, dest)
        if value_map is not None:
            value = value_map(value)
        node = overrides
        *heads, last = path.split(".")
        for head in heads:
            node = node.setdefault(head, {})
        node[last] = value

    put("app", "app")
    put("seed", "seed")
    put("duration", "duration")
    put("snapshot", "snapshot")
    put("workload.kind", "workload")
    put("workload.rate", "rate")
    put("streaming.window", "window")
    put("streaming.hop", "hop")
    put("streaming.retention", "retention")
    put("streaming.adaptive_hop", "adaptive_hop")
    put("streaming.hop_min", "hop_min")
    put("streaming.hop_max", "hop_max")
    put("streaming.checkpoint_every_windows", "checkpoint_every")
    put("streaming.executor", "executor")
    put("streaming.executor_workers", "workers")
    put("streaming.writer", "writer")
    put("journal", "journal")
    put("checkpoint", "checkpoint")
    put("resume", "resume")
    put("compare", "compare")
    put("telemetry.enabled", "telemetry")
    put("telemetry.port", "telemetry_port")
    put("telemetry.host", "telemetry_host")
    put("service.port", "port")
    put("service.host", "host")
    put("service.clock", "clock")
    put("service.poll_interval", "poll_interval")
    put("service.event_history", "event_history")
    put("service.topology", "topology", value_map=_parse_topology)
    if mode in ("record", "replay"):
        put("storage.kind", "backend")
        put("storage.path", "out" if mode == "record" else "path")
    else:
        put("storage.kind", "store_backend")
        put("storage.path", "store")
    put("storage.retention", "store_retention")
    put("storage.schedule", "store_schedule")
    put("extra.iterations", "iterations")
    put("extra.threshold", "threshold")
    put("extra.requests", "requests")

    data = _merge(data, overrides)
    data["mode"] = mode
    if mode == "rca":
        # The RCA case study is defined on the OpenStack model.
        data.setdefault("app", "openstack")
    if mode == "serve":
        # The subcommand *is* the request for the operations surface;
        # a --spec file that explicitly disables it still errors out.
        data.setdefault("service", {}).setdefault("enabled", True)
        data.setdefault("app", "http")
    streaming = data.get("streaming")
    if streaming and "window" in streaming:
        # The historical CLI contract: a window wider than the
        # retention flag silently widens retention to cover it.
        retention = streaming.get("retention", 120.0)
        streaming["retention"] = max(retention, streaming["window"])
    return RunSpec.from_dict(data)


# -- subcommands -----------------------------------------------------------


def _build(args, mode: str):
    """Resolve flags (+ any --spec file) into a built session.

    Raises ValueError/FileNotFoundError for user errors -- every
    subcommand maps those to stderr + exit code 2 via :func:`_guarded`.
    """
    spec = _spec_from_args(args, mode)
    return spec, build_pipeline(spec)


def _guarded(args, mode: str):
    """(spec, session, error_code): user errors become (None, None, 2)."""
    try:
        spec, session = _build(args, mode)
    except (ValueError, FileNotFoundError) as exc:
        print(exc, file=sys.stderr)
        return None, None, 2
    return spec, session, 0


def cmd_pipeline(args) -> int:
    spec, session, code = _guarded(args, "pipeline")
    if code:
        return code
    with session:
        result = session.run()
    summary = result.summary()
    for key, value in summary.items():
        print(f"{key:>18}: {value}")
    hub = result.dependency_graph.most_connected_metric()
    if hub is not None:
        print(f"{'guiding metric':>18}: {hub[0]}/{hub[1]}")
    if spec.snapshot:
        print(f"{'snapshot':>18}: written to {spec.snapshot}")
    return 0


def _print_window(analysis) -> None:
    s = analysis.summary()
    reasons = ", ".join(
        f"{reason}:{len(names)}"
        for reason, names in sorted(s["reasons"].items())
    ) or "-"
    print(f"window {s['window']:>3}  "
          f"[{s['span'][0]:>7.1f}, {s['span'][1]:>7.1f}]  "
          f"metrics={s['metrics']:>4}  reps={s['representatives']:>3}  "
          f"relations={s['relations']:>4}  "
          f"recluster={s['reclustered']:>2} ({reasons})  "
          f"reuse={s['reused']:>2}  "
          f"analysis={s['analysis_ms']:>8.1f}ms")


def _progress_line(session) -> str:
    """One backpressure line: bus shedding plus the writer queue."""
    engine = session.engine
    bus = engine.bus.stats
    line = (f"progress: windows={engine.stats.windows} "
            f"points={bus.points_flushed} "
            f"dropped={bus.overflow_dropped} "
            f"downsampled={bus.overflow_downsampled} "
            f"overflow_events={bus.overflow_events}")
    writer = session.backend
    if hasattr(writer, "pending_batches"):
        line += (f" writer_queue={writer.pending_batches}"
                 f"/{writer.queue_capacity}")
    return line


def cmd_stream(args) -> int:
    spec, session, code = _guarded(args, "stream")
    if code:
        return code
    config = spec.streaming
    progress_every = int(getattr(args, "progress", 0) or 0)

    def on_window(analysis) -> None:
        _print_window(analysis)
        if progress_every and analysis.index % progress_every == 0:
            print(_progress_line(session))

    try:
        if session.resumed:
            print(f"resumed from {spec.checkpoint} "
                  f"(window {session.engine.stats.windows}, "
                  f"{session.engine.windows.total_points()} "
                  f"points replayed)")
        print(f"streaming {spec.app} for {session.remaining():.0f}s "
              f"(window={config.window:.0f}s hop={config.hop:.0f}s "
              f"retention={config.retention:.0f}s "
              f"executor={config.executor})")
        server = session.telemetry.server \
            if session.telemetry is not None else None
        if server is not None:
            print(f"telemetry: {server.url}/metrics  "
                  f"(also /metrics.json /traces /healthz)")
        outcome = session.run(on_window=on_window)
        print()
        summary = dict(outcome.summary)
        telemetry = summary.pop("telemetry", None)
        for key, value in summary.items():
            print(f"{key:>24}: {value}")
        bus = session.engine.bus.stats
        print(f"{'backpressure':>24}: "
              f"dropped={bus.overflow_dropped} "
              f"downsampled={bus.overflow_downsampled} "
              f"overflow_events={bus.overflow_events}")
        if outcome.writer_stats:
            for key, value in outcome.writer_stats.items():
                print(f"{key:>24}: {value}")
        if telemetry:
            phases = telemetry.get("phase_seconds") or {}
            line = "  ".join(f"{name}={seconds:.3f}s"
                             for name, seconds in phases.items())
            print(f"{'phase seconds':>24}: {line or '-'}")
        if spec.compare and outcome.final is not None:
            print(f"{'stream reps (final)':>24}: "
                  f"{outcome.final.total_representatives()}")
            print(f"{'batch reps':>24}: "
                  f"{outcome.batch.total_representatives()}")
            print(f"{'edge jaccard':>24}: {outcome.edge_jaccard:.3f}")
        if getattr(args, "compact", False):
            for key, value in session.compact().items():
                print(f"{'compact ' + key:>24}: {value}")
    finally:
        session.close()
    return 0


def cmd_serve(args) -> int:
    spec, session, code = _guarded(args, "serve")
    if code:
        return code
    config = spec.streaming
    try:
        if session.resumed:
            print(f"resumed from {spec.checkpoint} "
                  f"(window {session.engine.stats.windows}, "
                  f"{session.engine.windows.total_points()} "
                  f"points replayed)")
        print(f"serving {spec.app} at {session.url} "
              f"for {spec.duration:.0f}s "
              f"(window={config.window:.0f}s hop={config.hop:.0f}s "
              f"clock={spec.service.clock})")
        print("ingest:  POST /ingest  "
              "(JSON batches or text exposition)")
        print("queries: GET /api/windows /api/clusters /api/drift "
              "/api/rca /api/scaling /api/events?since=N")
        print("scrape:  GET /metrics /metrics.json /traces /healthz")
        try:
            outcome = session.run(on_window=_print_window)
        except KeyboardInterrupt:
            session.stop()
            print("\ninterrupted; shutting down")
            return 0
        print()
        summary = dict(outcome.summary)
        summary.pop("telemetry", None)
        for key, value in summary.items():
            print(f"{key:>24}: {value}")
        for key, value in outcome.service.items():
            print(f"{'service ' + key:>24}: {value}")
        if outcome.writer_stats:
            for key, value in outcome.writer_stats.items():
                print(f"{key:>24}: {value}")
    finally:
        session.close()
    return 0


def cmd_record(args) -> int:
    spec, session, code = _guarded(args, "record")
    if code:
        return code
    try:
        if spec.streaming.executor != "serial":
            print("note: --executor has no effect on record "
                  "(no analysis stage runs); see stream/replay")
        outcome = session.run()
        if outcome.writer_stats:
            stats = outcome.writer_stats
            print(f"async writer: {stats['writer_batches_written']} "
                  f"batches ({stats['writer_points_written']} points) "
                  f"via writer thread, peak queue depth "
                  f"{stats['writer_max_queue_depth']}")
        if getattr(args, "compact", False):
            for key, value in session.compact().items():
                print(f"compact {key}: {value}")
        print(f"recorded {outcome.samples} samples across "
              f"{outcome.series} series "
              f"to {outcome.backend}:{outcome.path}")
    finally:
        session.close()
    return 0


def cmd_replay(args) -> int:
    spec, session, code = _guarded(args, "replay")
    if code:
        return code
    try:
        outcome = session.run()
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    finally:
        session.close()
    print(f"replayed {outcome.application}/{outcome.workload} "
          f"from {outcome.source}")
    for key, value in outcome.result.summary().items():
        print(f"{key:>18}: {value}")
    print(f"\n{'resource':>18}  {'all metrics':>14}  "
          f"{'representatives':>15}  {'saving':>7}")
    for key, before, after, saving in outcome.costs:
        print(f"{key:>18}  {before:>14.1f}  {after:>15.1f}  "
              f"{saving:>6.1f}%")
    return 0


def cmd_rca(args) -> int:
    _spec, session, code = _guarded(args, "rca")
    if code:
        return code
    with session:
        report = session.run()
    print(f"{'rank':>4}  {'component':<22} {'novelty':>8}  key metrics")
    for candidate in report.final_ranking:
        highlights = [m for m in candidate.metrics
                      if "ERROR" in m or "DOWN" in m or "fail" in m]
        print(f"{candidate.rank:>4}  {candidate.component:<22} "
              f"{candidate.novelty_score:>8}  "
              f"{', '.join(highlights[:3]) or '-'}")
    return 0


def cmd_trace_overhead(args) -> int:
    _spec, session, code = _guarded(args, "trace-overhead")
    if code:
        return code
    with session:
        results = session.run()
    native = results["native"].completion_time
    print(f"{'technique':<10} {'time [s]':>10} {'slowdown':>10}")
    for name, outcome in results.items():
        print(f"{name:<10} {outcome.completion_time:>10.3f} "
              f"{outcome.completion_time / native:>10.3f}")
    return 0


def cmd_catalog(args) -> int:
    spec, session, code = _guarded(args, "catalog")
    if code:
        return code
    with session:
        application = session.run()
    print(f"{spec.app}: {len(application.specs)} components")
    for spec_ in application.specs:
        calls = ", ".join(c.target for c in spec_.calls) or "-"
        print(f"  {spec_.name:<20} kind={spec_.kind:<13} "
              f"endpoints={len(spec_.endpoints)}  calls: {calls}")
    return 0


def cmd_spec(args) -> int:
    """Emit the fully resolved spec of a (hypothetical) invocation."""
    try:
        spec = _spec_from_args(args, args.spec_mode)
    except (ValueError, FileNotFoundError) as exc:
        print(exc, file=sys.stderr)
        return 2
    out = getattr(args, "output", None)
    fmt = getattr(args, "format", None)
    if fmt is None:
        # Case-insensitive, matching load_spec's suffix dispatch --
        # an emitted run.TOML must parse back as TOML, not JSON.
        fmt = "toml" if out and out.lower().endswith(".toml") \
            else "json"
    text = spec_to_toml(spec) if fmt == "toml" else spec_to_json(spec)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"spec written to {out}")
    else:
        print(text)
    return 0


def cmd_lint(args) -> int:
    """Run the repo-invariant static analyzer (``repro lint``).

    Exit codes: 0 clean (baselined findings allowed), 1 active
    findings or stale baseline entries, 2 usage errors.  Imported
    lazily: the analyzer is devtooling and must not load with the
    runtime pipeline.
    """
    from pathlib import Path

    from repro.devtools.lint import (
        Baseline,
        Linter,
        apply_fixes,
        render_json,
        render_rule_list,
        render_text,
    )

    if args.list_rules:
        print(render_rule_list())
        return 0
    rules = None
    if args.rules:
        rules = [rule_id.strip()
                 for rule_id in args.rules.split(",") if rule_id.strip()]
    baseline_path = Path(args.baseline)
    try:
        baseline = Baseline.load(baseline_path)
        linter = Linter(rules=rules, baseline=baseline)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    paths = args.paths or ["src/repro"]
    try:
        result = linter.run(paths)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.fix:
        fixed = apply_fixes(result.active + result.baselined)
        if fixed:
            total = sum(fixed.values())
            print(f"applied {total} fix(es) in {len(fixed)} file(s)")
            result = linter.run(paths)
    if args.write_baseline:
        from repro.devtools.lint.baseline import Baseline as _B

        recorded = _B.from_findings(result.active + result.baselined,
                                    path=baseline_path)
        recorded.save()
        print(f"baseline with {len(recorded)} finding(s) written to "
              f"{baseline_path}")
        return 0
    report = render_json(result) if args.format == "json" \
        else render_text(result, verbose=args.verbose) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        # The human-readable verdict still lands on stdout.
        print(render_text(result, verbose=False))
    else:
        print(report, end="")
    return 0 if result.ok and not result.stale_baseline else 1


# -- parser ----------------------------------------------------------------


def build_parser(suppress: bool = False) -> argparse.ArgumentParser:
    """The CLI parser.

    ``suppress=True`` builds the shadow parser used to detect which
    flags an invocation explicitly passed (everything not passed is
    absent from its namespace), the basis of ``--spec`` overriding.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sieve reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_pipeline = sub.add_parser(
        "pipeline", help="run the full Sieve pipeline on an application")
    _add_pipeline_flags(p_pipeline, suppress)
    _add_spec_file(p_pipeline)
    p_pipeline.set_defaults(func=cmd_pipeline)

    p_stream = sub.add_parser(
        "stream",
        help="run the streaming analysis engine on a live application")
    _add_stream_flags(p_stream, suppress)
    _add_spec_file(p_stream)
    _add_compact(p_stream)
    p_stream.set_defaults(func=cmd_stream)

    p_serve = sub.add_parser(
        "serve",
        help="run the engine as an HTTP service: POST /ingest feeds "
             "the bus, GET /api/... serves the latest analysis")
    _add_serve_flags(p_serve, suppress)
    _add_spec_file(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_record = sub.add_parser(
        "record",
        help="capture a live run into a durable storage backend")
    _add_record_flags(p_record, suppress)
    _add_spec_file(p_record)
    _add_compact(p_record)
    p_record.set_defaults(func=cmd_record)

    p_replay = sub.add_parser(
        "replay",
        help="re-analyze a recorded backend and meter the replay")
    _add_replay_flags(p_replay, suppress)
    _add_spec_file(p_replay)
    p_replay.set_defaults(func=cmd_replay)

    p_rca = sub.add_parser(
        "rca", help="OpenStack correct-vs-faulty root cause analysis")
    _add_rca_flags(p_rca, suppress)
    p_rca.set_defaults(func=cmd_rca)

    p_trace = sub.add_parser(
        "trace-overhead", help="Figure 5 tracing-overhead comparison")
    _add_trace_flags(p_trace, suppress)
    p_trace.set_defaults(func=cmd_trace_overhead)

    p_catalog = sub.add_parser(
        "catalog", help="list an application model's components")
    _add_catalog_flags(p_catalog, suppress)
    p_catalog.set_defaults(func=cmd_catalog)

    p_lint = sub.add_parser(
        "lint",
        help="statically check the repo's own invariants (lock "
             "discipline, determinism, registry wiring)")
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories (default: src/repro)")
    p_lint.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    p_lint.add_argument("--output", metavar="PATH",
                        help="write the report here (text verdict "
                             "still prints)")
    p_lint.add_argument("--baseline", metavar="PATH",
                        default="lint-baseline.json",
                        help="accepted-legacy-findings file "
                             "(default: ./lint-baseline.json)")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the baseline")
    p_lint.add_argument("--fix", action="store_true",
                        help="apply available automatic fixes first")
    p_lint.add_argument("--rules", metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    p_lint.add_argument("-v", "--verbose", action="store_true",
                        help="also show baselined findings")
    p_lint.set_defaults(func=cmd_lint)

    p_spec = sub.add_parser(
        "spec",
        help="emit the resolved run spec of an invocation "
             "(re-feed via --spec to reproduce it bit-identically)")
    spec_sub = p_spec.add_subparsers(dest="spec_mode", required=True)
    for mode in RUN_MODES:
        p_mode = spec_sub.add_parser(mode)
        _MODE_FLAGS[mode](p_mode, suppress)
        _add_spec_file(p_mode)
        p_mode.add_argument("-o", "--output", metavar="PATH",
                            help="write the spec here instead of "
                                 "stdout (.toml selects TOML)")
        p_mode.add_argument("--format", choices=("json", "toml"),
                            help="output format (default: by --out "
                                 "suffix, else json)")
        p_mode.set_defaults(func=cmd_spec, spec_mode=mode)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Which flags were explicitly passed (vs. argparse defaults):
    # parse again with every default suppressed -- the attributes left
    # in that namespace are exactly the provided ones.
    shadow = build_parser(suppress=True).parse_args(argv)
    args._provided = set(vars(shadow))
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
