"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the paper's workflows:

* ``pipeline`` -- run Load -> Reduce -> Identify on an application and
  print the reduction and dependency summary (optionally write a JSON
  snapshot);
* ``stream`` -- run the streaming analysis engine against a live
  co-simulated application and print per-window summaries (with
  ``--journal``/``--checkpoint`` the run is crash-safe, and
  ``--resume`` continues a killed run from its checkpoint);
* ``record`` -- capture a live run into a durable storage backend
  (sqlite file or spill directory);
* ``replay`` -- re-analyze a recorded backend from disk and replay it
  through the metered store, reproducing the Table 3 monitoring-cost
  comparison without re-running the application;
* ``rca`` -- run the OpenStack correct/faulty comparison and print the
  ranked root-cause candidates;
* ``trace-overhead`` -- the Figure 5 tracing-technique comparison;
* ``catalog`` -- list the components and metric counts of an
  application model.
"""

from __future__ import annotations

import argparse
import shutil
import sys
from pathlib import Path

from repro.apps import (
    build_openstack_application,
    build_sharelatex_application,
    openstack_fault_plan,
    run_ab_benchmark,
)
from repro.core import Sieve, SieveConfig, StreamingConfig, save_snapshot
from repro.parallel import EXECUTOR_KINDS, BatchingWriter, make_executor
from repro.metrics.accounting import reduction_percent
from repro.metrics.store import MetricsStore
from repro.persistence import (
    CheckpointPolicy,
    IngestJournal,
    load_checkpoint,
    open_backend,
    restore_engine,
)
from repro.rca import RCAEngine
from repro.simulator.app import LoadedRun
from repro.streaming import (
    IngestionBus,
    SimulationStreamDriver,
    StreamingSieve,
)
from repro.tracing.callgraph import CallGraph
from repro.tracing.sysdig import SysdigTracer
from repro.workload import RallyRunner, RandomWorkload, constant_rate

APPLICATIONS = {
    "sharelatex": build_sharelatex_application,
    "openstack": build_openstack_application,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds of load")


def _add_parallel(parser: argparse.ArgumentParser,
                  note: str = "") -> None:
    parser.add_argument("--executor", choices=EXECUTOR_KINDS,
                        default="serial",
                        help="where per-component analysis shards run "
                             "(process = true parallelism; identical "
                             "results to serial on the same seed)"
                             + note)
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="pool size for thread/process executors "
                             "(0 = all cores; 1 falls back to serial)")


def _overwrite_backend_path(out: Path) -> None:
    """Clear a backend target so a new recording starts fresh.

    Appending a second run's timeline to an existing backend would be
    rejected as out-of-order.
    """
    if out.exists():
        shutil.rmtree(out) if out.is_dir() else out.unlink()
    for sidecar in (Path(str(out) + "-wal"), Path(str(out) + "-shm")):
        sidecar.unlink(missing_ok=True)


def cmd_pipeline(args) -> int:
    application = APPLICATIONS[args.app]()
    sieve = Sieve(application)
    workload = RandomWorkload(duration=args.duration, seed=args.seed)
    result = sieve.run(workload, duration=args.duration, seed=args.seed,
                       workload_name="random")
    summary = result.summary()
    for key, value in summary.items():
        print(f"{key:>18}: {value}")
    hub = result.dependency_graph.most_connected_metric()
    if hub is not None:
        print(f"{'guiding metric':>18}: {hub[0]}/{hub[1]}")
    if args.snapshot:
        save_snapshot(result, args.snapshot)
        print(f"{'snapshot':>18}: written to {args.snapshot}")
    return 0


def _build_workload(args):
    if args.workload == "random":
        return RandomWorkload(duration=args.duration, seed=args.seed)
    return constant_rate(args.rate)


def cmd_stream(args) -> int:
    application = APPLICATIONS[args.app]()
    config = StreamingConfig(
        window=args.window,
        hop=args.hop,
        retention=max(args.retention, args.window),
        checkpoint_every_windows=args.checkpoint_every,
        executor=args.executor,
        executor_workers=args.workers,
        writer=args.writer,
    )
    workload = _build_workload(args)
    if args.resume and not args.journal:
        # Without the journal the restored rings are empty and the
        # resumed windows silently diverge from an uninterrupted run.
        print("--resume needs --journal (the ingest log to replay)",
              file=sys.stderr)
        return 2
    state = None
    if args.resume:
        if not (args.checkpoint and Path(args.checkpoint).exists()):
            print("--resume needs an existing --checkpoint file",
                  file=sys.stderr)
            return 2
        state = load_checkpoint(args.checkpoint)
        # The resumed co-simulation must be the *same* trace the dead
        # run was on; a mismatched seed/app/workload would silently
        # continue a different simulation on top of the old rings.
        mismatched = [
            (name, recorded, given)
            for name, recorded, given in (
                ("seed", state["seed"], args.seed),
                ("app", state["application"], args.app),
                ("workload", state["workload"], args.workload),
            )
            if recorded != given
        ]
        if mismatched:
            for name, recorded, given in mismatched:
                print(f"--resume {name} mismatch: checkpoint has "
                      f"{recorded!r}, given {given!r}", file=sys.stderr)
            return 2

    store_backend = None
    if args.store:
        if not args.resume:
            _overwrite_backend_path(Path(args.store))
        store_backend = open_backend(args.store_backend, args.store)
        if config.writer == "async":
            # The concurrent-ingest path: durable writes happen on a
            # dedicated thread so the bus never blocks on them.
            store_backend = BatchingWriter(
                store_backend,
                max_batches=config.writer_queue_batches,
            )
    # A fresh (non-resume) run starts its journal over; appending a
    # second run's timeline onto an old journal would make any later
    # replay reject the restart of time as out-of-order.
    journal = IngestJournal(args.journal, truncate=not args.resume) \
        if args.journal else None
    if not args.resume and args.checkpoint \
            and Path(args.checkpoint).exists():
        # A stale checkpoint from a previous session must not survive
        # a fresh start: if this run crashed before its first window,
        # --resume would otherwise restore the *old* session's state
        # over the new journal.
        Path(args.checkpoint).unlink()

    if args.resume:
        engine = restore_engine(state, config,
                                journal_path=args.journal,
                                journal=journal,
                                store_backend=store_backend)
        print(f"resumed from {args.checkpoint} "
              f"(window {engine.stats.windows}, "
              f"{engine.windows.total_points()} points replayed)")
    else:
        engine = StreamingSieve(
            config=config, seed=args.seed, journal=journal,
            application=args.app, workload=args.workload,
            store_backend=store_backend,
        )

    driver = SimulationStreamDriver(
        application, workload, config=config, seed=args.seed,
        workload_name=args.workload, record_frame=args.compare,
        engine=engine,
    )
    if args.checkpoint:
        # ``--checkpoint-every 0`` genuinely disables the cadence
        # (matching StreamingConfig's documented semantics).
        policy = CheckpointPolicy(driver.engine, args.checkpoint,
                                  every=args.checkpoint_every)
        driver.engine.subscribe(policy)


    def on_window(analysis) -> None:
        s = analysis.summary()
        reasons = ", ".join(
            f"{reason}:{len(names)}"
            for reason, names in sorted(s["reasons"].items())
        ) or "-"
        print(f"window {s['window']:>3}  "
              f"[{s['span'][0]:>7.1f}, {s['span'][1]:>7.1f}]  "
              f"metrics={s['metrics']:>4}  reps={s['representatives']:>3}  "
              f"relations={s['relations']:>4}  "
              f"recluster={s['reclustered']:>2} ({reasons})  "
              f"reuse={s['reused']:>2}  "
              f"analysis={s['analysis_ms']:>8.1f}ms")

    if args.resume:
        # How far the dead run got: its resume horizon relative to the
        # fresh session's post-warmup clock (the same cutoff
        # resume_run fast-forwards to).
        target = driver.engine.resume_horizon()
        elapsed_dead = 0.0 if target is None \
            else max(target - driver.session.now, 0.0)
        remaining = max(args.duration - elapsed_dead, 0.0)
    else:
        remaining = max(args.duration - driver.session.elapsed, 0.0)
    print(f"streaming {args.app} for {remaining:.0f}s "
          f"(window={config.window:.0f}s hop={config.hop:.0f}s "
          f"retention={config.retention:.0f}s "
          f"executor={config.executor})")
    try:
        if remaining > 0:
            if args.resume:
                # resume_run fast-forwards the seeded co-simulation
                # past everything the replayed journal holds, then
                # realigns the engine ticks with the dead run's hop
                # grid.
                driver.resume_run(remaining, on_window=on_window)
            else:
                driver.run(remaining, on_window=on_window)
        if journal is not None:
            journal.commit()
    finally:
        driver.engine.close()
        if store_backend is not None:
            # Drain the (possibly asynchronous) writer even on an
            # interrupted run -- queued batches must reach disk.
            store_backend.close()
    print()
    for key, value in driver.engine.summary().items():
        print(f"{key:>24}: {value}")
    if isinstance(store_backend, BatchingWriter):
        for key, value in store_backend.stats.as_dict().items():
            print(f"{key:>24}: {value}")
    if args.compare:
        final = driver.final_analysis()
        batch = driver.batch_result()
        from repro.causality.depgraph import edge_jaccard
        if final is not None:
            print(f"{'stream reps (final)':>24}: "
                  f"{final.total_representatives()}")
            print(f"{'batch reps':>24}: {batch.total_representatives()}")
            print(f"{'edge jaccard':>24}: "
                  f"{edge_jaccard(final.dependency_graph, batch.dependency_graph):.3f}")
    return 0


def cmd_record(args) -> int:
    """Capture a live co-simulated run into a durable backend.

    Recording needs only the scrape stream and the final call graph,
    so the session publishes straight to the backend -- no windowed
    analysis runs (clustering and Granger belong to ``replay``).
    """
    application = APPLICATIONS[args.app]()
    sieve_cfg = SieveConfig()
    # Recording overwrites: appending a second run's timeline to an
    # existing backend would be rejected as out-of-order.
    _overwrite_backend_path(Path(args.out))
    backend = open_backend(args.backend, args.out)
    if args.writer == "async":
        # Concurrent ingest: durable writes happen on a dedicated
        # thread, so a multi-process collector fleet never stalls on
        # the backend (reads drain the queue first).
        backend = BatchingWriter(backend)
    bus = IngestionBus()
    bus.subscribe(backend)
    session = application.open_session(
        _build_workload(args),
        seed=args.seed,
        dt=sieve_cfg.simulation_dt,
        scrape_interval=sieve_cfg.grid_interval,
        workload_name=args.workload,
        warmup=sieve_cfg.warmup,
        bus=bus,
        record_frame=False,
    )
    if args.executor != "serial":
        print("note: --executor has no effect on record "
              "(no analysis stage runs); see stream/replay")
    session.advance(args.duration)
    bus.flush()
    call_graph = session.call_graph(
        sieve_cfg.callgraph_min_connections
    )
    backend.set_metadata({
        "application": args.app,
        "workload": args.workload,
        "seed": args.seed,
        "duration": args.duration,
        "call_graph": call_graph.edges(),
    })
    samples = backend.sample_count()
    series = backend.series_count()
    if isinstance(backend, BatchingWriter):
        stats = backend.stats
        print(f"async writer: {stats.batches_written} batches "
              f"({stats.points_written} points) via writer thread, "
              f"peak queue depth {stats.max_queue_depth}")
    backend.close()
    print(f"recorded {samples} samples across {series} series "
          f"to {args.backend}:{args.out}")
    return 0


def cmd_replay(args) -> int:
    """Re-analyze a recorded backend and meter the Table 3 replay."""
    backend = open_backend(args.backend, args.path)
    meta = backend.metadata()
    frame = backend.to_frame()
    if not len(frame):
        print(f"no series found in {args.backend}:{args.path}",
              file=sys.stderr)
        return 2
    call_graph = CallGraph()
    for caller, callee, count in meta.get("call_graph", []):
        call_graph.record_call(caller, callee, int(count))
    run = LoadedRun(
        application=meta.get("application", "recorded"),
        workload=meta.get("workload", "recorded"),
        seed=int(meta.get("seed", args.seed)),
        duration=float(meta.get("duration", 0.0)),
        frame=frame,
        call_graph=call_graph,
        store=MetricsStore(),
        tracer=SysdigTracer(),
    )
    builder = APPLICATIONS.get(meta.get("application"),
                               build_sharelatex_application)
    executor = make_executor(args.executor, args.workers or None)
    try:
        result = Sieve(builder(), executor=executor) \
            .analyze(run, seed=run.seed)
    finally:
        executor.close()
    print(f"replayed {run.application}/{run.workload} from "
          f"{args.backend}:{args.path}")
    for key, value in result.summary().items():
        print(f"{key:>18}: {value}")

    # Table 3 from disk: replay everything vs representatives only.
    keep = result.representative_keys()
    before, after = MetricsStore(), MetricsStore()
    before.replay_frame(frame)
    before.simulate_dashboard_reads()
    after.replay_frame(frame, keep=keep)
    after.simulate_dashboard_reads()
    b, a = before.usage.summary(), after.usage.summary()
    print(f"\n{'resource':>18}  {'all metrics':>14}  "
          f"{'representatives':>15}  {'saving':>7}")
    for key in ("cpu_seconds", "db_bytes",
                "network_in_bytes", "network_out_bytes"):
        saving = reduction_percent(b[key], a[key])
        print(f"{key:>18}  {b[key]:>14.1f}  {a[key]:>15.1f}  "
              f"{saving:>6.1f}%")
    backend.close()
    return 0


def cmd_rca(args) -> int:
    application = build_openstack_application()
    sieve = Sieve(application)
    rally = RallyRunner(times=args.iterations, concurrency=5,
                        seed=args.seed)
    duration = min(rally.duration, args.duration)
    correct = sieve.run(rally, duration=duration, seed=args.seed,
                        workload_name="rally-correct")
    faulty = sieve.run(rally, duration=duration, seed=args.seed,
                       fault_plan=openstack_fault_plan(),
                       workload_name="rally-faulty")
    report = RCAEngine().compare(correct, faulty,
                                 threshold=args.threshold)
    print(f"{'rank':>4}  {'component':<22} {'novelty':>8}  key metrics")
    for candidate in report.final_ranking:
        highlights = [m for m in candidate.metrics
                      if "ERROR" in m or "DOWN" in m or "fail" in m]
        print(f"{candidate.rank:>4}  {candidate.component:<22} "
              f"{candidate.novelty_score:>8}  "
              f"{', '.join(highlights[:3]) or '-'}")
    return 0


def cmd_trace_overhead(args) -> int:
    results = {
        name: run_ab_benchmark(name, n_requests=args.requests,
                               seed=args.seed)
        for name in ("native", "tcpdump", "sysdig", "ptrace")
    }
    native = results["native"].completion_time
    print(f"{'technique':<10} {'time [s]':>10} {'slowdown':>10}")
    for name, outcome in results.items():
        print(f"{name:<10} {outcome.completion_time:>10.3f} "
              f"{outcome.completion_time / native:>10.3f}")
    return 0


def cmd_catalog(args) -> int:
    application = APPLICATIONS[args.app]()
    print(f"{args.app}: {len(application.specs)} components")
    for spec in application.specs:
        calls = ", ".join(c.target for c in spec.calls) or "-"
        print(f"  {spec.name:<20} kind={spec.kind:<13} "
              f"endpoints={len(spec.endpoints)}  calls: {calls}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sieve reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_pipeline = sub.add_parser(
        "pipeline", help="run the full Sieve pipeline on an application")
    p_pipeline.add_argument("--app", choices=sorted(APPLICATIONS),
                            default="sharelatex")
    p_pipeline.add_argument("--snapshot", metavar="PATH",
                            help="write the analysis snapshot as JSON")
    _add_common(p_pipeline)
    p_pipeline.set_defaults(func=cmd_pipeline)

    p_stream = sub.add_parser(
        "stream",
        help="run the streaming analysis engine on a live application")
    p_stream.add_argument("--app", choices=sorted(APPLICATIONS),
                          default="sharelatex")
    p_stream.add_argument("--window", type=float, default=20.0,
                          help="analysis window span, seconds")
    p_stream.add_argument("--hop", type=float, default=10.0,
                          help="analysis cadence, seconds")
    p_stream.add_argument("--retention", type=float, default=120.0,
                          help="ring-buffer retention, seconds")
    p_stream.add_argument("--workload", choices=("random", "constant"),
                          default="random")
    p_stream.add_argument("--rate", type=float, default=25.0,
                          help="request rate of the constant workload")
    p_stream.add_argument("--compare", action="store_true",
                          help="also run the batch analysis and report "
                               "streaming-vs-batch convergence")
    p_stream.add_argument("--journal", metavar="PATH",
                          help="write-ahead ingest journal (makes the "
                               "run replayable after a crash)")
    p_stream.add_argument("--checkpoint", metavar="PATH",
                          help="checkpoint analysis state to PATH")
    p_stream.add_argument("--checkpoint-every", type=int, default=1,
                          metavar="N",
                          help="checkpoint every N analyzed windows")
    p_stream.add_argument("--resume", action="store_true",
                          help="restore state from --checkpoint (and "
                               "replay --journal) before streaming")
    p_stream.add_argument("--store", metavar="PATH",
                          help="write ingested samples through to a "
                               "durable store backend at PATH")
    p_stream.add_argument("--store-backend",
                          choices=("sqlite", "spill"),
                          default="sqlite",
                          help="backend kind behind --store")
    p_stream.add_argument("--writer", choices=("sync", "async"),
                          default="sync",
                          help="drive the --store backend inline "
                               "(sync) or through a batching writer "
                               "thread (async) so ingest never blocks "
                               "on durable writes")
    _add_parallel(p_stream)
    _add_common(p_stream)
    p_stream.set_defaults(func=cmd_stream)

    p_record = sub.add_parser(
        "record",
        help="capture a live run into a durable storage backend")
    p_record.add_argument("--app", choices=sorted(APPLICATIONS),
                          default="sharelatex")
    p_record.add_argument("--backend", choices=("sqlite", "spill"),
                          default="sqlite")
    p_record.add_argument("--out", required=True, metavar="PATH",
                          help="sqlite database file or spill directory")
    p_record.add_argument("--workload", choices=("random", "constant"),
                          default="random")
    p_record.add_argument("--rate", type=float, default=25.0)
    p_record.add_argument("--writer", choices=("sync", "async"),
                          default="sync",
                          help="drive the backend inline (sync) or "
                               "through a batching writer thread "
                               "(async)")
    _add_parallel(p_record,
                  note="; recording runs no analysis, so this only "
                       "matters to scripts sharing flags with "
                       "stream/replay")
    _add_common(p_record)
    p_record.set_defaults(func=cmd_record)

    p_replay = sub.add_parser(
        "replay",
        help="re-analyze a recorded backend and meter the replay")
    p_replay.add_argument("--backend", choices=("sqlite", "spill"),
                          default="sqlite")
    p_replay.add_argument("--path", required=True, metavar="PATH",
                          help="recorded sqlite file or spill directory")
    p_replay.add_argument("--seed", type=int, default=1)
    _add_parallel(p_replay)
    p_replay.set_defaults(func=cmd_replay)

    p_rca = sub.add_parser(
        "rca", help="OpenStack correct-vs-faulty root cause analysis")
    p_rca.add_argument("--iterations", type=int, default=15,
                       help="Rally boot_and_delete iterations")
    p_rca.add_argument("--threshold", type=float, default=0.5,
                       choices=[0.0, 0.5, 0.6, 0.7])
    _add_common(p_rca)
    p_rca.set_defaults(func=cmd_rca)

    p_trace = sub.add_parser(
        "trace-overhead", help="Figure 5 tracing-overhead comparison")
    p_trace.add_argument("--requests", type=int, default=10_000)
    p_trace.add_argument("--seed", type=int, default=1)
    p_trace.set_defaults(func=cmd_trace_overhead)

    p_catalog = sub.add_parser(
        "catalog", help="list an application model's components")
    p_catalog.add_argument("--app", choices=sorted(APPLICATIONS),
                           default="sharelatex")
    p_catalog.set_defaults(func=cmd_catalog)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
