"""Wire-format decoding and admission control for HTTP metric ingest.

``POST /ingest`` accepts two remote-write-style payloads:

* **JSON** (``application/json``) -- either a bare list of batches or
  an envelope with per-source sequencing::

      {"source": "collector-1", "seq": 7,
       "batches": [
         {"component": "front", "time": 12.5,
          "metrics": {"cpu": 0.61, "mem": 480.0}},
         {"component": "back", "metric": "cpu",
          "times": [12.0, 12.5], "values": [0.4, 0.45]}
       ]}

  The first batch shape mirrors :meth:`IngestionBus.publish
  <repro.streaming.bus.IngestionBus.publish>` (one scrape of one
  component), the second :meth:`publish_points
  <repro.streaming.bus.IngestionBus.publish_points>` (a pre-batched
  run of one metric).

* **Prometheus text exposition** (``text/plain``) -- one sample per
  line, the component carried as a label and the timestamp in
  *seconds* (the engine's time axis)::

      cpu_usage{component="front"} 0.61 12.5

  Sequencing rides the ``X-Repro-Source`` / ``X-Repro-Seq`` headers.
  Standard Prometheus clients stamp samples in *milliseconds* since
  epoch; they must send ``X-Repro-Time-Unit: ms`` so the decoder
  rescales onto the engine's seconds axis (the header works for JSON
  payloads too).

Decoding is strict and total: the whole payload is validated into
:class:`IngestBatch` objects *before* anything touches the bus, so a
torn or malformed request is rejected with 400 and zero engine
perturbation.  :class:`SourceGate` then applies per-source sequencing
-- a replayed ``seq`` is acknowledged as a duplicate (200, nothing
published) so a retrying sender stops resending, remote-write style.
Out-of-order samples *within* an accepted batch are handled by the
bus's own per-key monotonicity guard and reported back as
``rejected``.
"""

from __future__ import annotations

import json
import math
import re
import threading
from dataclasses import dataclass, field
from typing import Any


class IngestError(ValueError):
    """A malformed ingest payload (maps to HTTP 400)."""


@dataclass
class IngestBatch:
    """One decoded unit of ingest: a scrape batch or a point run."""

    component: str
    time: float = 0.0
    metrics: dict[str, float] = field(default_factory=dict)
    metric: str = ""
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    @property
    def is_points(self) -> bool:
        """True for the pre-batched single-metric shape."""
        return bool(self.metric)

    @property
    def point_count(self) -> int:
        return len(self.times) if self.is_points else len(self.metrics)

    @property
    def newest_time(self) -> float:
        if self.is_points:
            return self.times[-1] if self.times else float("-inf")
        return self.time


@dataclass
class IngestRequest:
    """A fully decoded ``POST /ingest`` payload."""

    batches: list[IngestBatch]
    source: str = ""
    seq: int | None = None

    @property
    def point_count(self) -> int:
        return sum(batch.point_count for batch in self.batches)

    @property
    def watermark(self) -> float | None:
        """Newest timestamp across every batch (None when empty)."""
        newest = float("-inf")
        for batch in self.batches:
            newest = max(newest, batch.newest_time)
        return None if newest == float("-inf") else newest


def _number(value: Any, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise IngestError(f"{what} must be a number, got {value!r}")
    result = float(value)
    if math.isnan(result):
        raise IngestError(f"{what} must not be NaN")
    return result


def _component(value: Any) -> str:
    if not isinstance(value, str) or not value:
        raise IngestError(
            f"component must be a non-empty string, got {value!r}"
        )
    return value


def _decode_batch(entry: Any) -> IngestBatch:
    if not isinstance(entry, dict):
        raise IngestError(f"batch must be an object, got {entry!r}")
    component = _component(entry.get("component"))
    if "metrics" in entry:
        extra = set(entry) - {"component", "time", "metrics"}
        if extra:
            raise IngestError(
                f"unknown batch field(s): {', '.join(sorted(extra))}"
            )
        metrics = entry["metrics"]
        if not isinstance(metrics, dict) or not metrics:
            raise IngestError("metrics must be a non-empty object")
        return IngestBatch(
            component=component,
            time=_number(entry.get("time", 0.0), "time"),
            metrics={
                str(name): _number(value, f"metrics[{name!r}]")
                for name, value in metrics.items()
            },
        )
    if "metric" in entry:
        extra = set(entry) - {"component", "metric", "times", "values"}
        if extra:
            raise IngestError(
                f"unknown batch field(s): {', '.join(sorted(extra))}"
            )
        metric = entry["metric"]
        if not isinstance(metric, str) or not metric:
            raise IngestError("metric must be a non-empty string")
        times = entry.get("times")
        values = entry.get("values")
        if not isinstance(times, list) or not isinstance(values, list):
            raise IngestError("times and values must be arrays")
        if len(times) != len(values):
            raise IngestError("times and values must have equal length")
        return IngestBatch(
            component=component,
            metric=metric,
            times=[_number(t, "times[]") for t in times],
            values=[_number(v, "values[]") for v in values],
        )
    raise IngestError(
        "batch needs either a 'metrics' object or a "
        "'metric' + 'times' + 'values' run"
    )


def decode_json(body: bytes) -> IngestRequest:
    """Decode a JSON ingest payload (envelope or bare batch list)."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IngestError(f"invalid JSON payload: {exc}") from None
    if isinstance(data, list):
        data = {"batches": data}
    if not isinstance(data, dict):
        raise IngestError("payload must be an object or a batch array")
    extra = set(data) - {"source", "seq", "batches"}
    if extra:
        raise IngestError(
            f"unknown payload field(s): {', '.join(sorted(extra))}"
        )
    batches = data.get("batches")
    if not isinstance(batches, list) or not batches:
        raise IngestError("payload needs a non-empty 'batches' array")
    seq = data.get("seq")
    if seq is not None:
        if isinstance(seq, bool) or not isinstance(seq, int):
            raise IngestError(f"seq must be an integer, got {seq!r}")
    source = data.get("source", "")
    if not isinstance(source, str):
        raise IngestError("source must be a string")
    if seq is not None and not source:
        raise IngestError("a sequenced payload needs a 'source'")
    return IngestRequest(
        batches=[_decode_batch(entry) for entry in batches],
        source=source,
        seq=seq,
    )


#: ``name{labels} value [timestamp]`` -- the exposition sample line.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>\S+))?\s*$"
)

_LABEL_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>[^"]*)"\s*'
    r"(?:,|$)"
)


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    position = 0
    while position < len(text):
        match = _LABEL_RE.match(text, position)
        if match is None:
            raise IngestError(f"invalid label set {text!r}")
        labels[match.group("name")] = match.group("value")
        position = match.end()
    return labels


def decode_text(body: bytes, source: str = "",
                seq: int | None = None) -> IngestRequest:
    """Decode a Prometheus-text-exposition ingest payload.

    Each sample line becomes one single-point batch for the component
    named by its ``component`` label; labels beyond ``component`` are
    folded into the metric name deterministically so distinct label
    sets stay distinct series.  Timestamps are seconds (the engine's
    time axis) -- Prometheus-native millisecond stamps need the
    ``X-Repro-Time-Unit: ms`` header, applied by
    :func:`decode_payload`; a line without a timestamp is rejected --
    the engine has no wall clock to substitute.
    """
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise IngestError(f"payload is not UTF-8: {exc}") from None
    batches: list[IngestBatch] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise IngestError(f"line {lineno}: invalid sample {line!r}")
        labels = _parse_labels(match.group("labels") or "")
        component = labels.pop("component", "")
        if not component:
            raise IngestError(
                f"line {lineno}: missing component label"
            )
        metric = match.group("name")
        if labels:
            rendered = ",".join(
                f'{name}="{labels[name]}"' for name in sorted(labels)
            )
            metric = f"{metric}{{{rendered}}}"
        try:
            value = float(match.group("value"))
        except ValueError:
            raise IngestError(
                f"line {lineno}: invalid value "
                f"{match.group('value')!r}"
            ) from None
        timestamp = match.group("timestamp")
        if timestamp is None:
            raise IngestError(f"line {lineno}: missing timestamp")
        try:
            time = float(timestamp)
        except ValueError:
            raise IngestError(
                f"line {lineno}: invalid timestamp {timestamp!r}"
            ) from None
        if math.isnan(value) or math.isnan(time):
            raise IngestError(f"line {lineno}: NaN sample")
        batches.append(IngestBatch(
            component=component, metric=metric,
            times=[time], values=[value],
        ))
    if not batches:
        raise IngestError("payload holds no samples")
    if seq is not None and not source:
        raise IngestError("a sequenced payload needs a source header")
    return IngestRequest(batches=batches, source=source, seq=seq)


#: Accepted ``X-Repro-Time-Unit`` values -> scale onto engine seconds.
TIME_UNITS = {"s": 1.0, "seconds": 1.0, "ms": 0.001, "milliseconds": 0.001}


def _time_scale(time_unit: str | None) -> float:
    if time_unit is None or time_unit == "":
        return 1.0
    scale = TIME_UNITS.get(time_unit.strip().lower())
    if scale is None:
        raise IngestError(
            f"unsupported X-Repro-Time-Unit {time_unit!r} "
            f"(expected one of {sorted(TIME_UNITS)})"
        )
    return scale


def _rescale(request: IngestRequest, scale: float) -> IngestRequest:
    """Bring every decoded timestamp onto the engine's seconds axis."""
    if scale != 1.0:
        for batch in request.batches:
            if batch.is_points:
                batch.times = [t * scale for t in batch.times]
            else:
                batch.time *= scale
    return request


def decode_payload(content_type: str, body: bytes, source: str = "",
                   seq_header: str | None = None,
                   time_unit: str | None = None) -> IngestRequest:
    """Dispatch on Content-Type (JSON by default, text exposition for
    ``text/plain``).  ``source``/``seq_header``/``time_unit`` carry
    the ``X-Repro-Source`` / ``X-Repro-Seq`` / ``X-Repro-Time-Unit``
    headers; the last rescales timestamps onto the engine's seconds
    axis (Prometheus-native senders stamp milliseconds)."""
    scale = _time_scale(time_unit)
    seq: int | None = None
    if seq_header is not None and seq_header != "":
        try:
            seq = int(seq_header)
        except ValueError:
            raise IngestError(
                f"invalid X-Repro-Seq header {seq_header!r}"
            ) from None
    kind = (content_type or "application/json").split(";", 1)[0].strip()
    if kind in ("text/plain", "application/openmetrics-text"):
        return _rescale(decode_text(body, source=source, seq=seq), scale)
    if kind in ("application/json", ""):
        request = decode_json(body)
        if source and not request.source:
            request.source = source
        if seq is not None and request.seq is None:
            if not request.source:
                raise IngestError(
                    "a sequenced payload needs a source header"
                )
            request.seq = seq
        return _rescale(request, scale)
    raise IngestError(f"unsupported Content-Type {content_type!r}")


class SourceGate:
    """Per-source sequence admission (duplicate/replay suppression).

    Each source carries a monotonically increasing ``seq``; a payload
    whose ``seq`` is at or below the last admitted one is a
    retransmission and must be *acknowledged but not re-published* --
    the remote-write contract that lets senders retry safely.
    Unsequenced payloads (no ``seq``) are always admitted.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._last_seq: dict[str, int] = {}  # guarded-by: _lock
        self.admitted = 0  # guarded-by: _lock
        self.duplicates = 0  # guarded-by: _lock

    def admit(self, source: str, seq: int | None) -> bool:
        """True to publish, False for an already-seen retransmission."""
        with self._lock:
            if seq is None or not source:
                self.admitted += 1
                return True
            last = self._last_seq.get(source)
            if last is not None and seq <= last:
                self.duplicates += 1
                return False
            self._last_seq[source] = seq
            self.admitted += 1
            return True

    def last_seq(self, source: str) -> int | None:
        with self._lock:
            return self._last_seq.get(source)

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "sources": len(self._last_seq),
                "admitted": self.admitted,
                "duplicates": self.duplicates,
            }
