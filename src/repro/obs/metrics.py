"""Process-local instrumentation primitives: counters, gauges, histograms.

The paper's thesis is that always-on monitoring must be cheap enough to
leave running; this module applies the same discipline to the engine's
*self*-telemetry.  A :class:`TelemetryRegistry` hands out named
instruments (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
whose mutation costs one dict write on the caller's thread -- no
locks on the counter hot path, no background threads -- and whose
state is read out by the exposition layer
(:mod:`repro.obs.exposition`) at scrape time.

Two properties keep the disabled path near-zero-cost:

* a registry built with ``enabled=False`` hands out a shared
  :data:`NULL_INSTRUMENT` whose mutators are empty methods, so
  instrumented call sites stay branch-free (``self._points.inc(n)``
  costs one attribute lookup and an empty call);
* *collector callbacks* (:meth:`TelemetryRegistry.add_collector`) move
  sampling of already-maintained stats structs (``BusStats``,
  ``WriterStats``, ring counters) entirely to scrape time -- the hot
  path pays nothing at all for those families.

Instruments support Prometheus-style labels: declare the label names
at registration and pass values at mutation time
(``counter.inc(1, reason="drift")``).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator

#: Default histogram bucket upper bounds, in seconds -- sized for the
#: engine's latencies (sub-ms ring appends up to multi-second windows).
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                   0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: (labels, value) pairs as the exposition layer consumes them.
Sample = tuple[dict, float]


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ValueError(
            f"invalid instrument name {name!r} "
            f"(use [a-zA-Z0-9_], e.g. repro_bus_points_total)"
        )
    return name


class Instrument:
    """Base of every instrument: a name, help text and label names."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Iterable[str] = ()):
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._values: dict[tuple, float] = {}

    def _key(self, labels: dict) -> tuple:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def samples(self) -> list[Sample]:
        """Current (labels, value) pairs, sorted by label values."""
        return [
            (dict(zip(self.labelnames, key)), value)
            for key, value in sorted(self._values.items())
        ]

    def value(self, **labels) -> float:
        """Current value of one label combination (0.0 if unseen)."""
        return self._values.get(self._key(labels), 0.0)


class Counter(Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, total: float, **labels) -> None:
        """Install an externally maintained monotone total.

        For collector callbacks that *sample* an existing stats struct
        (``BusStats`` counts, ring eviction totals) instead of paying
        for double bookkeeping on the hot path.  The caller guarantees
        monotonicity; regressions are clamped so a scrape never shows
        a counter going backwards.
        """
        key = self._key(labels)
        if total >= self._values.get(key, 0.0):
            self._values[key] = float(total)


class Gauge(Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram(Instrument):
    """Cumulative-bucket distribution (Prometheus semantics).

    Per label set it tracks the observation count per upper bound, the
    total sum and the total count; the exposition layer renders the
    standard ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Iterable[str] = (),
                 buckets: Iterable[float] | None = None):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(buckets or DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bounds
        #: label key -> [per-bucket counts..., +Inf count, sum].
        self._dists: dict[tuple, list[float]] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        dist = self._dists.get(key)
        if dist is None:
            dist = [0.0] * (len(self.buckets) + 2)
            self._dists[key] = dist
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                dist[index] += 1.0
        dist[-2] += 1.0  # +Inf (== total count)
        dist[-1] += value
        self._values[key] = dist[-2]  # count doubles as the "value"

    def distributions(self) -> list[tuple[dict, list[float], float, float]]:
        """(labels, cumulative bucket counts, sum, count) per label set."""
        out = []
        for key, dist in sorted(self._dists.items()):
            labels = dict(zip(self.labelnames, key))
            out.append((labels, dist[:-1], dist[-1], dist[-2]))
        return out

    def count(self, **labels) -> float:
        """Total observations of one label combination."""
        return self._values.get(self._key(labels), 0.0)

    def sum(self, **labels) -> float:
        dist = self._dists.get(self._key(labels))
        return dist[-1] if dist else 0.0


class NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry.

    Implements the union of every instrument's mutators as empty
    methods, so instrumented call sites never branch on enablement.
    """

    kind = "null"
    name = ""
    labelnames: tuple = ()

    def inc(self, amount: float = 1.0, **labels) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def set_total(self, total: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0.0

    def samples(self) -> list[Sample]:
        return []


#: The one shared no-op instrument (stateless, so one is enough).
NULL_INSTRUMENT = NullInstrument()


class TelemetryRegistry:
    """One process-local table of named instruments.

    ``enabled=False`` turns every factory into a source of
    :data:`NULL_INSTRUMENT` and :meth:`collect` into a constant --
    the whole subsystem reduces to empty method calls.

    Factories are idempotent: asking for an existing name returns the
    registered instrument (kind and labels must match), so independent
    layers can instrument the same family without coordination.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, Instrument] = {}  # guarded-by: _lock
        self._collectors: list[Callable[[], None]] = []  # guarded-by: _lock
        self._lock = threading.Lock()

    # -- instrument factories -------------------------------------------

    def _get_or_make(self, cls: type, name: str, help: str,
                     labelnames: Iterable[str], **kwargs):
        if not self.enabled:
            return NULL_INSTRUMENT
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"{name!r} is already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"{name!r} is already registered with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()):
        return self._get_or_make(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()):
        return self._get_or_make(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] | None = None):
        return self._get_or_make(Histogram, name, help, labelnames,
                                 buckets=buckets)

    # -- collectors ------------------------------------------------------

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a scrape-time sampler.

        ``fn`` is invoked (in registration order) at the start of every
        :meth:`collect`, typically to copy an existing stats struct
        into gauges/counters -- the zero-hot-path-cost instrumentation
        pattern.  No-op on a disabled registry.
        """
        if self.enabled:
            with self._lock:
                self._collectors.append(fn)

    # -- read-out --------------------------------------------------------

    def collect(self) -> list[Instrument]:
        """Run collectors, then return every instrument (sorted)."""
        if not self.enabled:
            return []
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn()
        with self._lock:
            return [self._instruments[name]
                    for name in sorted(self._instruments)]

    def get(self, name: str) -> Instrument | None:
        """A registered instrument by name (None when absent)."""
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self.collect())

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)
