"""Liveness surface: named health probes aggregated into one verdict.

``/healthz`` must answer a different question than ``/metrics``: not
"what are the numbers" but "should an operator (or an orchestrator's
restart policy) worry".  A :class:`HealthModel` holds named probe
callables, each returning ``(ok, detail)``; the aggregate is healthy
iff every probe passes.  Probes are evaluated at *request* time -- the
model holds no cached state, so a recovered writer immediately reads
healthy again.

The engine wiring (:mod:`repro.api.session`) registers three standard
probes:

* ``writer`` -- the async :class:`~repro.parallel.writer.BatchingWriter`
  has not failed and its bounded queue is not pinned at capacity;
* ``bus`` -- the ingestion bus is not shedding load (overflow drops
  since the last probe mean producers outrun the analysis);
* ``checkpoint`` -- the newest checkpoint is not older than a
  configured number of analyzed windows (durability lag).

A probe that *raises* counts as failing with the exception as detail:
a health surface that crashes on the condition it should report is
worse than none.
"""

from __future__ import annotations

import threading
from typing import Callable

#: A probe returns (ok, human-readable detail).
Probe = Callable[[], tuple[bool, str]]


class HealthModel:
    """Named liveness probes with an all-must-pass aggregate."""

    def __init__(self) -> None:
        self._probes: dict[str, Probe] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def add_probe(self, name: str, probe: Probe) -> None:
        """Register (or replace) one named probe."""
        with self._lock:
            self._probes[name] = probe

    def remove_probe(self, name: str) -> None:
        with self._lock:
            self._probes.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._probes)

    def check(self) -> tuple[bool, dict[str, dict]]:
        """Evaluate every probe now.

        Returns ``(healthy, {name: {"ok": bool, "detail": str}})``;
        healthy with zero probes (nothing claims to be monitorable).
        """
        with self._lock:
            probes = dict(self._probes)
        report: dict[str, dict] = {}
        healthy = True
        for name in sorted(probes):
            try:
                ok, detail = probes[name]()
            except Exception as exc:  # noqa: BLE001 - see module doc
                ok, detail = False, f"probe raised: {exc!r}"
            report[name] = {"ok": bool(ok), "detail": str(detail)}
            healthy = healthy and bool(ok)
        return healthy, report

    def as_dict(self) -> dict:
        healthy, report = self.check()
        return {"healthy": healthy, "probes": report}


def writer_probe(writer) -> Probe:
    """Standard probe over a :class:`~repro.parallel.writer.BatchingWriter`.

    Fails when the writer thread has captured a backend error (the
    engine is running but nothing is durable any more) or when the
    bounded queue sits at capacity (sustained backpressure: ingest has
    outrun the backend and the next enqueue will block).
    """

    def probe() -> tuple[bool, str]:
        if writer.failed:
            return False, f"writer failed: {writer.error}"
        depth = writer.pending_batches
        capacity = writer.queue_capacity
        if capacity and depth >= capacity:
            return False, (f"writer queue saturated "
                           f"({depth}/{capacity} batches)")
        return True, f"queue {depth}/{capacity or 'unbounded'}"

    return probe


def bus_probe(bus) -> Probe:
    """Standard probe over the ingestion bus: are we shedding load?

    Overflow *since the previous evaluation* fails the probe, so a
    transient spike reads unhealthy while it sheds and recovers on the
    next quiet scrape -- matching how an operator reasons about
    backpressure.
    """
    seen = {"dropped": 0, "downsampled": 0}

    def probe() -> tuple[bool, str]:
        stats = bus.stats
        dropped = stats.overflow_dropped - seen["dropped"]
        downsampled = stats.overflow_downsampled - seen["downsampled"]
        seen["dropped"] = stats.overflow_dropped
        seen["downsampled"] = stats.overflow_downsampled
        if dropped or downsampled:
            return False, (f"bus shedding load: {dropped} dropped, "
                           f"{downsampled} downsampled since last check")
        return True, (f"pending {bus.pending_points} points, "
                      f"{stats.overflow_dropped} dropped lifetime")

    return probe


def checkpoint_probe(policy, max_lag_windows: int | None = None) -> Probe:
    """Standard probe over a checkpoint policy: durability lag.

    Fails when more than ``max_lag_windows`` windows were analyzed
    since the last checkpoint landed (default: twice the policy's
    ``every``, i.e. one missed checkpoint is tolerated, two are not).
    """

    def probe() -> tuple[bool, str]:
        lag = policy.windows_since_checkpoint
        limit = max_lag_windows
        if limit is None:
            limit = 2 * policy.every if policy.every else None
        if limit is not None and lag > limit:
            return False, (f"checkpoint lag {lag} windows "
                           f"(limit {limit})")
        return True, (f"{policy.checkpoints_written} checkpoints, "
                      f"lag {lag} windows")

    return probe
