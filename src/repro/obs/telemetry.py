"""The per-engine telemetry facade: registry + tracer + health + export.

One :class:`Telemetry` object travels with one engine (and its writer,
journal and checkpoint policy).  It is deliberately *not* a process
singleton: tests and multi-engine processes get independent instrument
tables and span histories, and a disabled instance
(:meth:`Telemetry.disabled`) still carries a real
:class:`~repro.obs.spans.SpanTracer` so timing handles the analyzer
depends on keep working.

The facade owns no policy about *what* to measure -- call sites create
their instruments through ``telemetry.registry`` -- but it fixes the
cross-cutting decisions: enablement, span history depth, which
exporters are reachable, and the health model the server exposes.
Telemetry never reads or writes analysis state; every method here is
safe to call from a scrape thread while the engine runs.
"""

from __future__ import annotations

from repro.obs.exposition import (
    JsonExporter,
    PrometheusExporter,
    render_prometheus,
    snapshot,
)
from repro.obs.health import HealthModel
from repro.obs.metrics import TelemetryRegistry
from repro.obs.spans import SpanTracer


class Telemetry:
    """Everything one engine exposes about itself."""

    def __init__(self, enabled: bool = True, span_history: int = 64,
                 exporters: tuple[str, ...] = ()):
        self.enabled = enabled
        self.registry = TelemetryRegistry(enabled=enabled)
        self.health = HealthModel()
        observe = None
        if enabled:
            phase_hist = self.registry.histogram(
                "repro_window_phase_seconds",
                "Per-window engine time by phase",
                labelnames=("phase",),
            )

            def observe(phase: str, seconds: float,
                        _hist=phase_hist) -> None:
                _hist.observe(seconds, phase=phase)

        self.tracer = SpanTracer(history=span_history, enabled=enabled,
                                 observe=observe)
        self._exporters: dict[str, object] = {}
        self._requested_exporters = tuple(exporters)
        self._server = None
        self.service = None
        """The attached :class:`~repro.obs.service.OperationsService`,
        or None -- the server only routes ``/ingest`` and ``/api/...``
        while one is attached."""

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A fresh no-op instance (instruments are nulls, tracer times
        but retains nothing)."""
        return cls(enabled=False)

    @classmethod
    def from_spec(cls, spec) -> "Telemetry":
        """Build from a :class:`repro.api.TelemetrySpec`-shaped object.

        Duck-typed (``enabled`` / ``port`` / ``span_history`` /
        ``exporters`` attributes) so this package never imports the
        API layer.  A spec that only sets ``port`` still enables
        collection -- serving dead metrics would be worse than either
        extreme.
        """
        enabled = bool(getattr(spec, "enabled", False)
                       or getattr(spec, "port", 0) > 0)
        if not enabled:
            return cls.disabled()
        return cls(enabled=True,
                   span_history=getattr(spec, "span_history", 64),
                   exporters=tuple(getattr(spec, "exporters", ())))

    # -- exporters -------------------------------------------------------

    def exporter(self, name: str):
        """Resolve an exporter by name (None when unknown).

        ``prometheus`` and ``json`` are built in; anything else is
        created on first use from the :data:`repro.api.EXPORTERS`
        registry, so third-party formats registered through
        :func:`repro.api.register_exporter` are served without this
        package depending on the API layer at import time.
        """
        exporter = self._exporters.get(name)
        if exporter is not None:
            return exporter
        if name == "prometheus":
            exporter = PrometheusExporter()
        elif name == "json":
            exporter = JsonExporter()
        else:
            try:
                from repro.api.registry import EXPORTERS
            except ImportError:  # pragma: no cover - api always ships
                return None
            if name not in EXPORTERS:
                return None
            exporter = EXPORTERS.create(name)
        self._exporters[name] = exporter
        return exporter

    def exporter_names(self) -> list[str]:
        """The formats this instance was asked to serve (builtins
        first, then the spec's extras in order)."""
        names = ["prometheus", "json"]
        for name in self._requested_exporters:
            if name not in names:
                names.append(name)
        return names

    # -- serving ---------------------------------------------------------

    def attach_service(self, service) -> None:
        """Expose an operations service on this facade's server.

        Attaching enables the ``/ingest`` and ``/api/...`` routes on
        the (current or future) :class:`TelemetryServer`; detaching
        (``attach_service(None)``) turns them back into 404s.
        """
        self.service = service

    def serve(self, port: int = 0, host: str = "127.0.0.1"):
        """Start (or return) the HTTP exposition server.

        Idempotent per instance; returns the running
        :class:`~repro.obs.server.TelemetryServer` whose ``port``
        resolves an ephemeral bind.
        """
        if self._server is None:
            from repro.obs.server import TelemetryServer

            self._server = TelemetryServer(self, port=port,
                                           host=host).start()
        return self._server

    @property
    def server(self):
        """The running server, or None when not serving."""
        return self._server

    def close(self) -> None:
        """Stop the exposition server, if any (idempotent)."""
        if self._server is not None:
            self._server.stop()
            self._server = None

    # -- snapshots -------------------------------------------------------

    def prometheus_text(self) -> str:
        return render_prometheus(self.registry)

    def metrics_snapshot(self) -> dict:
        return snapshot(self.registry)

    def summary(self) -> dict:
        """The block :meth:`StreamingSieve.summary` merges in when
        telemetry is enabled."""
        last = self.tracer.last_trace
        return {
            "enabled": self.enabled,
            "instruments": len(self.registry),
            "phase_seconds": self.tracer.phase_totals(),
            "last_window_trace": last.as_dict() if last else None,
        }

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
