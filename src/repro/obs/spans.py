"""Per-window phase spans: where did each analyzed window's time go.

A :class:`SpanTracer` decomposes the streaming engine's work on one
window into named phases -- ingest (bus flushes since the previous
window), snapshot (ring/backend materialization), drift (baseline
scoring), recluster (executor fan-out), depgraph (edge extraction and
merge), consumers (subscriber callbacks), checkpoint (policy save) --
and rolls them up into a :class:`WindowTrace` per analyzed window.

Unlike the instruments in :mod:`repro.obs.metrics`, the tracer is
*always real*: :meth:`span` returns a timing handle whose ``elapsed``
the analyzer re-exports as the long-standing
``WindowAnalysis.analysis_seconds`` field, so disabling telemetry must
not disable the clock.  What enablement controls is retention -- a
disabled tracer keeps no trace history and publishes no phase
histogram; it only times the handle the caller is already holding.

Phases observed *between* windows (a bus flush happens every engine
tick, most of which produce no window) accumulate in a pending bucket
and are folded into the next produced trace, so every trace accounts
for all engine work since its predecessor.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: Canonical phase order for rendering (unknown phases sort after).
PHASE_ORDER = ("ingest", "snapshot", "drift", "recluster",
               "depgraph", "consumers", "checkpoint", "writer_flush")


def _phase_rank(name: str) -> tuple[int, str]:
    try:
        return (PHASE_ORDER.index(name), name)
    except ValueError:
        return (len(PHASE_ORDER), name)


@dataclass(frozen=True)
class WindowTrace:
    """Phase breakdown of one analyzed window."""

    index: int
    start: float
    end: float
    phases: dict[str, float] = field(default_factory=dict)
    """Seconds spent per phase (accumulated, not per-call)."""

    @property
    def total_seconds(self) -> float:
        return sum(self.phases.values())

    def as_dict(self) -> dict:
        """JSON-ready record (phases in canonical order)."""
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "total_seconds": self.total_seconds,
            "phases": {
                name: self.phases[name]
                for name in sorted(self.phases, key=_phase_rank)
            },
        }


class Span:
    """One timed phase execution (context manager or begin/end pair).

    ``elapsed`` is valid after :meth:`end` (or context exit) and is the
    value handed to the tracer; :meth:`discard` ends the clock without
    recording, for callers that abandon the phase (e.g. a window
    skipped for want of samples).
    """

    __slots__ = ("_tracer", "name", "_started", "elapsed", "_done")

    def __init__(self, tracer: "SpanTracer", name: str):
        self._tracer = tracer
        self.name = name
        self._started = time.perf_counter()
        self.elapsed = 0.0
        self._done = False

    def end(self) -> float:
        """Stop the clock and record the phase; returns the elapsed s."""
        if not self._done:
            self._done = True
            self.elapsed = time.perf_counter() - self._started
            self._tracer._record(self.name, self.elapsed)
        return self.elapsed

    def discard(self) -> float:
        """Stop the clock without recording (abandoned phase)."""
        if not self._done:
            self._done = True
            self.elapsed = time.perf_counter() - self._started
        return self.elapsed

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()


class SpanTracer:
    """Accumulates phase spans and cuts them into per-window traces.

    The engine drives the window boundary: phases recorded at any time
    land in a pending accumulator, and :meth:`finish_window` snapshots
    that accumulator into a :class:`WindowTrace` (bounded history) and
    resets it.  ``observe`` -- typically a telemetry histogram's bound
    ``observe`` partial -- additionally receives every individual span
    as ``(phase, seconds)`` when the tracer is enabled.
    """

    def __init__(self, history: int = 64, enabled: bool = True,
                 observe: Callable[[str, float], None] | None = None):
        if history < 1:
            raise ValueError("history must be >= 1")
        self.enabled = enabled
        self.observe = observe
        self._pending: dict[str, float] = {}  # guarded-by: _lock
        self._traces: deque[WindowTrace] = deque(maxlen=history)  # guarded-by: _lock
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------

    def span(self, name: str) -> Span:
        """Open a timed phase (always real; see module docstring)."""
        return Span(self, name)

    def _record(self, name: str, elapsed: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._pending[name] = self._pending.get(name, 0.0) + elapsed
        if self.observe is not None:
            self.observe(name, elapsed)

    def add(self, name: str, elapsed: float) -> None:
        """Record an externally timed phase directly."""
        self._record(name, elapsed)

    # -- window boundaries ----------------------------------------------

    def finish_window(self, index: int, start: float,
                      end: float) -> WindowTrace | None:
        """Cut the pending phases into this window's trace.

        Returns the trace (also retained in history), or None when the
        tracer is disabled.
        """
        if not self.enabled:
            return None
        with self._lock:
            trace = WindowTrace(index=index, start=start, end=end,
                                phases=dict(self._pending))
            self._pending.clear()
            self._traces.append(trace)
        return trace

    def drop_pending(self) -> None:
        """Discard accumulated phases (no window will claim them)."""
        with self._lock:
            self._pending.clear()

    def pending_seconds(self, names: tuple[str, ...]) -> float:
        """Accumulated-but-uncut seconds of the named phases.

        Lets a caller keep phases *disjoint* when other code records
        nested spans on its watch: snapshot before, snapshot after,
        subtract the delta from its own elapsed time (the engine does
        this so ``consumers`` excludes the checkpoint policy's
        ``checkpoint``/``writer_flush`` phases).
        """
        with self._lock:
            return sum(self._pending.get(name, 0.0) for name in names)

    # -- read-out --------------------------------------------------------

    @property
    def traces(self) -> list[WindowTrace]:
        """Retained traces, oldest first (copy)."""
        with self._lock:
            return list(self._traces)

    @property
    def last_trace(self) -> WindowTrace | None:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def phase_totals(self) -> dict[str, float]:
        """Seconds per phase summed over the retained traces."""
        totals: dict[str, float] = {}
        for trace in self.traces:
            for name, seconds in trace.phases.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return {name: totals[name]
                for name in sorted(totals, key=_phase_rank)}

    def as_dicts(self) -> list[dict]:
        return [trace.as_dict() for trace in self.traces]

    def __iter__(self) -> Iterator[WindowTrace]:
        return iter(self.traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
