"""Read-side state of the live operations surface.

Two lock-guarded structures decouple the engine's analysis thread from
HTTP query threads:

* :class:`AnalysisView` -- a JSON-ready snapshot of the latest
  window's analysis (clusters, drift readings, recluster decisions,
  the guiding metric) plus a bounded history of window summaries.  The
  engine publishes into it on every analyzed window
  (:meth:`repro.streaming.engine.StreamingSieve.attach_view`); query
  handlers only ever read pre-rendered plain dicts, so a slow or
  hostile client can never touch live analysis objects.
* :class:`EventLog` -- a bounded, monotonically sequenced log of
  structured operational events (drift escalations, re-clusters, RCA
  firings, checkpoint epochs).  ``since(seq)`` gives clients cheap
  incremental polling: remember the last ``seq`` you saw and ask for
  everything after it.

Both are plain observers: publishing is cheap (dict rendering), reads
take the same lock, and nothing here feeds back into analysis state,
so every determinism guarantee of the engine holds with a view
attached or not.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any


def render_analysis(analysis: Any) -> dict:
    """One window's analysis as a JSON-compatible payload.

    Duck-typed over :class:`repro.streaming.analyzer.WindowAnalysis`
    so this module never imports the streaming layer.
    """
    clusters: dict[str, Any] = {}
    for component, clustering in analysis.clusterings.items():
        clusters[component] = {
            "n_clusters": clustering.n_clusters,
            "silhouette": clustering.silhouette,
            "representatives": list(clustering.representatives),
            "clusters": [
                {
                    "representative": cluster.representative,
                    "metrics": sorted(cluster.metrics),
                }
                for cluster in clustering.clusters
            ],
        }
    drift: dict[str, Any] = {}
    for component, readings in analysis.drift_readings.items():
        drift[component] = [
            {
                "metric": reading.metric,
                "location_shift": reading.location_shift,
                "spread_shift": reading.spread_shift,
                "shape_distance": reading.shape_distance,
            }
            for reading in readings
        ]
    guide = analysis.guiding_metric()
    return {
        "window": analysis.index,
        "span": [analysis.start, analysis.end],
        "application": analysis.application,
        "workload": analysis.workload,
        "clusters": clusters,
        "drift": drift,
        "reclustered": sorted(analysis.reclustered),
        "reused": sorted(analysis.reused),
        "recluster_reasons": dict(analysis.recluster_reasons),
        "guiding_metric": list(guide) if guide is not None else None,
        "edges_retested": analysis.edges_retested,
        "edges_reused": analysis.edges_reused,
    }


class AnalysisView:
    """Lock-guarded, JSON-ready snapshot of the latest analysis."""

    def __init__(self, history: int = 64):
        if history < 1:
            raise ValueError("history must be >= 1")
        self._lock = threading.Lock()
        self._summaries: deque[dict] = deque(maxlen=history)  # guarded-by: _lock
        self._latest: dict | None = None  # guarded-by: _lock
        self.published = 0  # guarded-by: _lock

    def publish(self, analysis: Any) -> None:
        """Render and store one fresh window analysis (engine-side)."""
        payload = render_analysis(analysis)
        summary = dict(analysis.summary())
        with self._lock:
            self._latest = payload
            self._summaries.append(summary)
            self.published += 1

    # -- query-side reads ------------------------------------------------

    def windows(self) -> dict:
        """The retained window summaries, oldest first."""
        with self._lock:
            return {
                "count": self.published,
                "windows": [dict(s) for s in self._summaries],
            }

    def latest(self) -> dict | None:
        """The full latest-window payload (None before any window)."""
        with self._lock:
            return dict(self._latest) if self._latest is not None \
                else None

    def clusters(self) -> dict:
        with self._lock:
            if self._latest is None:
                return {"window": None, "clusters": {}}
            return {
                "window": self._latest["window"],
                "span": self._latest["span"],
                "guiding_metric": self._latest["guiding_metric"],
                "clusters": self._latest["clusters"],
            }

    def drift(self) -> dict:
        with self._lock:
            if self._latest is None:
                return {"window": None, "drift": {},
                        "reclustered": [], "recluster_reasons": {}}
            return {
                "window": self._latest["window"],
                "span": self._latest["span"],
                "drift": self._latest["drift"],
                "reclustered": self._latest["reclustered"],
                "reused": self._latest["reused"],
                "recluster_reasons": self._latest["recluster_reasons"],
            }


class EventLog:
    """Bounded, monotonically sequenced operational event log."""

    def __init__(self, history: int = 256):
        if history < 1:
            raise ValueError("history must be >= 1")
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=history)  # guarded-by: _lock
        self._seq = 0  # guarded-by: _lock

    def append(self, kind: str, time: float, payload: dict) -> int:
        """Record one event; returns its sequence number."""
        with self._lock:
            self._seq += 1
            self._events.append({
                "seq": self._seq,
                "kind": kind,
                "time": float(time),
                **payload,
            })
            return self._seq

    @property
    def latest_seq(self) -> int:
        with self._lock:
            return self._seq

    def since(self, seq: int = 0) -> dict:
        """Events with sequence numbers strictly after ``seq``.

        The response carries ``latest_seq`` so a poller can detect
        that retention already dropped events it never saw
        (``events[0]["seq"] > seq + 1``).
        """
        with self._lock:
            events = [dict(e) for e in self._events if e["seq"] > seq]
            return {"latest_seq": self._seq, "events": events}

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
