"""The live operations service: HTTP ingest + analysis queries.

:class:`OperationsService` is the glue between the PR 6 telemetry
server and a running :class:`~repro.streaming.engine.StreamingSieve`:

* ``POST /ingest`` -- remote-write-style metric ingestion.  Payloads
  are fully decoded (:mod:`repro.obs.ingest`) before anything touches
  the bus, per-source sequencing suppresses retransmissions, bus
  backpressure surfaces as 429 + ``Retry-After``, and -- with the
  default ``ingest`` clock -- every accepted payload advances the
  engine's hop schedule via ``offer(watermark)``, so an HTTP-fed run
  produces bit-identical windows to an in-process run over the same
  point stream.
* ``GET /api/...`` -- read-side queries served from the lock-guarded
  :class:`~repro.obs.query.AnalysisView` and
  :class:`~repro.obs.query.EventLog` the engine publishes into, plus
  live consumer state (RCA reports, autoscaling rebinds).

All engine mutation (publish + offer) happens under one lock, so
concurrent HTTP senders serialize against the analysis tick; reads
never take that lock -- they see the view's own snapshot.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.obs.ingest import (
    IngestError,
    SourceGate,
    decode_payload,
)
from repro.obs.query import AnalysisView, EventLog

#: Read-side routes this service answers (all GET).
QUERY_ROUTES = (
    "/api/windows",
    "/api/clusters",
    "/api/drift",
    "/api/rca",
    "/api/scaling",
    "/api/events",
)

#: Engine clocks a service can schedule analysis hops from.
SERVICE_CLOCKS = ("ingest", "wall")

#: Largest accepted ingest payload (bytes) -- maps to HTTP 413.
MAX_INGEST_BYTES = 8 * 1024 * 1024


class OperationsService:
    """Ingest + query surface over one streaming engine."""

    def __init__(self, engine: Any, *, clock: str = "ingest",
                 call_graph: Any = None, view: AnalysisView | None = None,
                 events: EventLog | None = None,
                 ingest_enabled: bool = True,
                 consumers: dict[str, Any] | None = None):
        """``engine`` is duck-typed (``bus`` / ``offer`` / ``stats``);
        ``call_graph`` is the static topology every ``offer`` carries
        (empty when the deployment map is unknown).  With
        ``ingest_enabled=False`` (a co-simulated run that only wants
        the query surface) ``POST /ingest`` answers 409."""
        if clock not in SERVICE_CLOCKS:
            raise ValueError(
                f"unknown service clock {clock!r} "
                f"(expected one of {SERVICE_CLOCKS})"
            )
        if call_graph is None:
            from repro.tracing.callgraph import CallGraph

            call_graph = CallGraph()
        self.engine = engine
        self.clock = clock
        self.call_graph = call_graph
        self.view = view if view is not None else AnalysisView()
        self.events = events if events is not None else EventLog()
        self.gate = SourceGate()
        self.ingest_enabled = ingest_enabled
        self.consumers = consumers if consumers is not None else {}
        self.lock = threading.RLock()
        """Serializes all engine mutation: HTTP publishes, analysis
        offers, and the wall-clock poller all take it."""

        self._stats_lock = threading.Lock()
        """Guards the request counters below: handler threads race on
        them and ``+=`` on an attribute is not atomic."""
        self.ingest_requests = 0  # guarded-by: _stats_lock
        self.ingest_rejected = 0  # guarded-by: _stats_lock
        self.ingest_points = 0  # guarded-by: _stats_lock
        self.backpressure_responses = 0  # guarded-by: _stats_lock

    # -- ingest ----------------------------------------------------------

    def _backpressured(self) -> bool:
        """True when the bus is already at its shedding bound."""
        bus = self.engine.bus
        return bool(bus.max_pending
                    and bus.pending_points >= bus.max_pending)

    def _count(self, name: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self, name, getattr(self, name) + amount)

    def handle_ingest(self, content_type: str, body: bytes,
                      source: str = "",
                      seq_header: str | None = None,
                      time_unit: str | None = None,
                      ) -> tuple[int, dict, dict]:
        """Process one ``POST /ingest``.

        Returns ``(status, json_payload, extra_headers)``.  The payload
        is decoded before any engine mutation; the sequence gate,
        publish and hop offer run under :attr:`lock`.
        """
        self._count("ingest_requests")
        if not self.ingest_enabled:
            return 409, {
                "error": "ingest is disabled: this engine is driven "
                         "by a co-simulation, not by HTTP",
            }, {}
        if len(body) > MAX_INGEST_BYTES:
            self._count("ingest_rejected")
            return 413, {
                "error": f"payload exceeds {MAX_INGEST_BYTES} bytes",
            }, {}
        try:
            request = decode_payload(content_type, body,
                                     source=source,
                                     seq_header=seq_header,
                                     time_unit=time_unit)
        except IngestError as exc:
            self._count("ingest_rejected")
            return 400, {"error": str(exc)}, {}

        bus = self.engine.bus
        with self.lock:
            if self._backpressured():
                # Refuse BEFORE the gate commits the seq: nothing was
                # published, so the Retry-After retry of this same seq
                # must be admitted, not acked as a duplicate.
                self._count("backpressure_responses")
                return 429, {
                    "error": "bus backpressure: pending points at the "
                             "max_pending bound",
                    "pending": bus.pending_points,
                }, {"Retry-After": "1"}
            if not self.gate.admit(request.source, request.seq):
                # Remote-write duplicate semantics: acknowledge without
                # re-publishing so the sender stops retrying.
                return 200, {
                    "status": "duplicate",
                    "source": request.source,
                    "seq": request.seq,
                    "accepted": 0,
                }, {}
            rejected_before = bus.stats.rejected_points
            clipped_before = bus.stats.resume_clipped
            shed_before = (bus.stats.overflow_dropped
                           + bus.stats.overflow_downsampled)
            for batch in request.batches:
                if batch.is_points:
                    bus.publish_points(batch.component, batch.metric,
                                       batch.times, batch.values)
                else:
                    bus.publish(batch.component, batch.time,
                                batch.metrics)
            rejected = bus.stats.rejected_points - rejected_before
            clipped = bus.stats.resume_clipped - clipped_before
            shed = (bus.stats.overflow_dropped
                    + bus.stats.overflow_downsampled) - shed_before
            analyzed = None
            watermark = request.watermark
            if self.clock == "ingest" and watermark is not None:
                analysis = self.engine.offer(watermark, self.call_graph)
                if analysis is not None:
                    analyzed = analysis.index

        accepted = request.point_count - rejected - clipped
        self._count("ingest_points", max(accepted, 0))
        payload = {
            "status": "ok",
            "accepted": accepted,
            "rejected": rejected,
            "clipped": clipped,
            "batches": len(request.batches),
            "watermark": watermark,
            "analyzed_window": analyzed,
        }
        if request.source:
            payload["source"] = request.source
        if request.seq is not None:
            payload["seq"] = request.seq
        if shed:
            # The batch landed but pushed the bus over its bound; the
            # 429 tells the sender to back off while the shed counts
            # say what was lost.
            self._count("backpressure_responses")
            payload["status"] = "shed"
            payload["shed"] = shed
            return 429, payload, {"Retry-After": "1"}
        return 200, payload, {}

    # -- hop scheduling --------------------------------------------------

    def offer_watermark(self) -> Any:
        """One wall-clock-scheduled analysis tick (``clock="wall"``).

        Offers the newest ingested timestamp, so the analysis time
        axis stays on data time while the *cadence* follows the wall.
        Returns the fresh analysis, if one ran.

        The watermark covers points still *pending* in the bus, not
        just flushed ones: the offer's flush is what drains a bus
        sitting at its ``max_pending`` bound, so deriving the
        watermark only from delivered data would leave backpressure
        stuck forever (429s whose retries can never succeed).
        """
        with self.lock:
            watermark = self.engine.resume_horizon()
            pending = self.engine.bus.newest_ingested()
            if pending is not None:
                watermark = pending if watermark is None \
                    else max(watermark, pending)
            if watermark is None:
                return None
            return self.engine.offer(watermark, self.call_graph)

    # -- queries ---------------------------------------------------------

    def _rca_payload(self) -> dict:
        consumer = self.consumers.get("rca")
        if consumer is None:
            return {"enabled": False, "reports": []}
        reports = []
        for triggered in list(consumer.reports):
            reports.append({
                "faulty_index": triggered.faulty_index,
                "baseline_index": triggered.baseline_index,
                "ranking": [
                    {
                        "rank": candidate.rank,
                        "component": candidate.component,
                        "novelty_score": candidate.novelty_score,
                        "metrics": list(candidate.metrics),
                    }
                    for candidate in triggered.report.final_ranking
                ],
            })
        return {
            "enabled": True,
            "windows_seen": consumer.windows_seen,
            "reports": reports,
        }

    def _scaling_payload(self) -> dict:
        consumer = self.consumers.get("scaling")
        if consumer is None:
            return {"enabled": False, "rebinds": []}
        component, metric = consumer.guiding_metric
        return {
            "enabled": True,
            "component": consumer.rule.component,
            "guiding_metric": [component, metric],
            "windows_seen": consumer.windows_seen,
            "rebinds": [
                {
                    "window": event.window_index,
                    "component": event.metric_component,
                    "metric": event.metric,
                }
                for event in list(consumer.rebinds)
            ],
        }

    def handle_query(self, path: str,
                     params: dict[str, str]) -> tuple[int, dict]:
        """Answer one ``GET /api/...`` request."""
        if path == "/api/windows":
            return 200, self.view.windows()
        if path == "/api/clusters":
            return 200, self.view.clusters()
        if path == "/api/drift":
            return 200, self.view.drift()
        if path == "/api/rca":
            return 200, self._rca_payload()
        if path == "/api/scaling":
            return 200, self._scaling_payload()
        if path == "/api/events":
            raw = params.get("since", "0")
            try:
                since = int(raw)
            except ValueError:
                return 400, {"error": f"invalid since={raw!r}"}
            return 200, self.events.since(since)
        return 404, {"error": f"no query route {path!r}",
                     "routes": list(QUERY_ROUTES)}

    # -- observability ---------------------------------------------------

    def summary(self) -> dict:
        with self._stats_lock:
            counters = {
                "ingest_requests": self.ingest_requests,
                "ingest_rejected": self.ingest_rejected,
                "ingest_points": self.ingest_points,
                "backpressure_responses": self.backpressure_responses,
            }
        return {
            "clock": self.clock,
            "ingest_enabled": self.ingest_enabled,
            **counters,
            "events": len(self.events),
            "windows_published": self.view.published,
            **self.gate.as_dict(),
        }
