"""Rendering telemetry state for scrapers: Prometheus text and JSON.

Pure functions from a :class:`~repro.obs.metrics.TelemetryRegistry`
(plus the span tracer) to wire formats, shared by the HTTP server
(:mod:`repro.obs.server`), the CLI summary and tests.  The Prometheus
renderer follows the text exposition format version 0.0.4: ``# HELP`` /
``# TYPE`` headers per family, histograms expanded into cumulative
``_bucket{le=...}`` series plus ``_sum`` and ``_count``.

Third parties plug additional formats in through
:func:`repro.api.register_exporter`; an exporter is any object with a
``content_type`` attribute and a ``render(telemetry) -> str`` method.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.metrics import Counter, Gauge, Histogram, TelemetryRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def render_prometheus(registry: TelemetryRegistry) -> str:
    """The registry's current state in Prometheus text format."""
    lines: list[str] = []
    for instrument in registry.collect():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} "
                         f"{_escape_help(instrument.help)}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for labels, buckets, total, count in \
                    instrument.distributions():
                bounds = [*instrument.buckets, float("inf")]
                for bound, cum in zip(bounds, buckets):
                    le = dict(labels, le=_format_value(bound))
                    lines.append(
                        f"{instrument.name}_bucket"
                        f"{_format_labels(le)} {_format_value(cum)}"
                    )
                suffix = _format_labels(labels)
                lines.append(f"{instrument.name}_sum{suffix} "
                             f"{_format_value(total)}")
                lines.append(f"{instrument.name}_count{suffix} "
                             f"{_format_value(count)}")
        else:
            samples = instrument.samples()
            if not samples and not instrument.labelnames:
                samples = [({}, 0.0)]
            for labels, value in samples:
                lines.append(f"{instrument.name}"
                             f"{_format_labels(labels)} "
                             f"{_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def snapshot(registry: TelemetryRegistry) -> dict:
    """The registry's current state as a JSON-ready dict.

    Counters and gauges map name -> {labels-repr: value}; histograms
    additionally expose sum/count/buckets.  Unlabelled instruments use
    the empty-string key.
    """
    out: dict[str, dict] = {}
    for instrument in registry.collect():
        entry: dict = {"kind": instrument.kind, "help": instrument.help}
        if isinstance(instrument, Histogram):
            series = {}
            for labels, buckets, total, count in \
                    instrument.distributions():
                key = _format_labels(labels)
                series[key] = {
                    "sum": total,
                    "count": count,
                    "buckets": {
                        _format_value(bound): cum
                        for bound, cum in zip(
                            [*instrument.buckets, float("inf")],
                            buckets)
                    },
                }
            entry["series"] = series
        else:
            entry["values"] = {
                _format_labels(labels): value
                for labels, value in instrument.samples()
            }
        out[instrument.name] = entry
    return out


class PrometheusExporter:
    """The default exporter: Prometheus text exposition format."""

    name = "prometheus"
    content_type = PROMETHEUS_CONTENT_TYPE

    def render(self, telemetry: "Telemetry") -> str:
        return render_prometheus(telemetry.registry)


class JsonExporter:
    """Full JSON snapshot: instruments, window traces and health."""

    name = "json"
    content_type = JSON_CONTENT_TYPE

    def render(self, telemetry: "Telemetry") -> str:
        import json

        return json.dumps(
            {
                "metrics": snapshot(telemetry.registry),
                "traces": telemetry.tracer.as_dicts(),
                "health": telemetry.health.as_dict(),
            },
            indent=2, sort_keys=True,
        )
