"""Self-telemetry of the streaming reproduction (the ``obs`` layer).

The paper argues that monitoring must be cheap enough to leave always
on; this package holds the reproduction to its own standard.  It is a
strict *observer* of the other layers -- instruments, per-window phase
spans, a Prometheus/JSON scrape surface and a health model -- and never
feeds back into analysis state, so every determinism and crash-restart
guarantee holds with telemetry on or off.

Entry points:

* :class:`Telemetry` -- the per-engine facade (registry, tracer,
  health, exporters, HTTP server);
* :class:`TelemetryRegistry` / :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` -- instrumentation primitives;
* :class:`SpanTracer` / :class:`WindowTrace` -- phase breakdowns;
* :class:`TelemetryServer` -- the stdlib HTTP scrape endpoint;
* :func:`render_prometheus` / :func:`snapshot` -- pure renderers;
* :class:`OperationsService` / :class:`AnalysisView` /
  :class:`EventLog` -- the live operations surface (``POST /ingest``
  remote-write + ``GET /api/...`` analysis queries) attached through
  :meth:`Telemetry.attach_service`.
"""

from repro.obs.exposition import (
    JsonExporter,
    PrometheusExporter,
    render_prometheus,
    snapshot,
)
from repro.obs.health import (
    HealthModel,
    bus_probe,
    checkpoint_probe,
    writer_probe,
)
from repro.obs.ingest import (
    IngestBatch,
    IngestError,
    IngestRequest,
    SourceGate,
    decode_payload,
)
from repro.obs.metrics import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
)
from repro.obs.query import AnalysisView, EventLog, render_analysis
from repro.obs.server import TelemetryServer
from repro.obs.service import OperationsService
from repro.obs.spans import Span, SpanTracer, WindowTrace
from repro.obs.telemetry import Telemetry

__all__ = [
    "NULL_INSTRUMENT",
    "AnalysisView",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "HealthModel",
    "IngestBatch",
    "IngestError",
    "IngestRequest",
    "JsonExporter",
    "OperationsService",
    "PrometheusExporter",
    "SourceGate",
    "Span",
    "SpanTracer",
    "Telemetry",
    "TelemetryRegistry",
    "TelemetryServer",
    "WindowTrace",
    "bus_probe",
    "checkpoint_probe",
    "decode_payload",
    "render_analysis",
    "render_prometheus",
    "snapshot",
    "writer_probe",
]
