"""The HTTP surface: scrape, health, and the live operations routes.

A :class:`TelemetryServer` wraps ``http.server.ThreadingHTTPServer``
on a daemon thread -- no third-party dependency, no event loop to
integrate with the engine's own threads.  Routes:

* ``/metrics`` -- Prometheus text exposition (the scrape target);
* ``/metrics.json`` -- JSON snapshot of every instrument;
* ``/traces`` -- the retained per-window phase traces as JSON;
* ``/healthz`` -- 200 with the probe report when every probe passes,
  503 otherwise (orchestrator-friendly);
* ``/export/<name>`` -- any exporter registered via
  :func:`repro.api.register_exporter`;
* ``POST /ingest`` and ``GET /api/...`` -- when an
  :class:`~repro.obs.service.OperationsService` is attached to the
  telemetry facade, the remote-write ingest endpoint and the
  analysis query API (windows, clusters, drift, RCA, scaling,
  events).

HTTP hygiene: every route answers HEAD (headers + Content-Length, no
body), every Content-Type carries ``charset=utf-8``, and a known
route hit with the wrong method answers 405 with an ``Allow`` header
rather than a misleading 404.

``port=0`` binds an ephemeral port (``server.port`` reports the real
one) -- tests and parallel CI jobs never fight over a number.  Scrape
and query handlers only read telemetry/view state; ingest mutates the
engine strictly through the service's lock.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import parse_qsl

from repro.obs.exposition import (
    JSON_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    snapshot,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry

#: Telemetry routes and the methods they allow (GET implies HEAD).
_BASE_ROUTES: dict[str, tuple[str, ...]] = {
    "/": ("GET",),
    "/metrics": ("GET",),
    "/metrics.json": ("GET",),
    "/traces": ("GET",),
    "/healthz": ("GET",),
}

#: Largest request body the handler will read (maps to HTTP 413).
_MAX_BODY_BYTES = 16 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes one request against the owning server's telemetry."""

    server_version = "repro-telemetry/1"
    protocol_version = "HTTP/1.1"
    disable_nagle_algorithm = True
    """Headers and body go out as separate writes; without
    TCP_NODELAY that pattern hits the Nagle/delayed-ACK stall
    (~40ms per request) on every keep-alive ingest connection."""

    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""

    def _respond(self, status: int, content_type: str, body: str,
                 extra_headers: dict[str, str] | None = None) -> None:
        if "charset=" not in content_type:
            content_type = f"{content_type}; charset=utf-8"
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(payload)

    def _respond_json(self, status: int, payload: object,
                      extra_headers: dict[str, str] | None = None,
                      ) -> None:
        self._respond(status, JSON_CONTENT_TYPE,
                      json.dumps(payload, sort_keys=True),
                      extra_headers)

    def _allowed_methods(self, path: str,
                         service) -> tuple[str, ...] | None:
        """Methods a known route accepts, or None for an unknown path."""
        if path in _BASE_ROUTES:
            return _BASE_ROUTES[path]
        if path.startswith("/export/"):
            return ("GET",)
        if service is not None:
            from repro.obs.service import QUERY_ROUTES

            if path == "/ingest":
                return ("POST",)
            if path in QUERY_ROUTES:
                return ("GET",)
        return None

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        # One capture per request: attach_service(None) may run
        # concurrently, and routing + handling must see the same
        # service (or the same absence of one), never an
        # AttributeError halfway through.
        telemetry = self.server.telemetry  # type: ignore[attr-defined]
        service = telemetry.service
        try:
            allowed = self._allowed_methods(path, service)
            if allowed is None:
                self._not_found(path, service)
            elif method not in allowed:
                self._respond_json(
                    405, {"error": f"{method} not allowed on {path}",
                          "allow": list(allowed)},
                    {"Allow": ", ".join(allowed)},
                )
            elif method == "POST":
                self._handle_ingest(service)
            else:
                self._handle_get(path, service)
        except BrokenPipeError:  # client went away mid-response
            pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        # HEAD runs the GET handler; _respond suppresses the body but
        # keeps the Content-Length a GET would have carried.
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _not_found(self, path: str, service) -> None:
        routes = ["/metrics", "/metrics.json", "/traces", "/healthz",
                  "/export/<name>"]
        if service is not None:
            from repro.obs.service import QUERY_ROUTES

            routes.extend(["/ingest", *QUERY_ROUTES])
        self._respond_json(404, {"error": f"no route {path!r}",
                                 "routes": routes})

    def _handle_get(self, path: str, service) -> None:
        telemetry = self.server.telemetry  # type: ignore[attr-defined]
        if path in ("/", "/metrics"):
            self._respond(200, PROMETHEUS_CONTENT_TYPE,
                          render_prometheus(telemetry.registry))
        elif path == "/metrics.json":
            self._respond(200, JSON_CONTENT_TYPE, json.dumps(
                snapshot(telemetry.registry), sort_keys=True))
        elif path == "/traces":
            self._respond(200, JSON_CONTENT_TYPE, json.dumps(
                telemetry.tracer.as_dicts()))
        elif path == "/healthz":
            healthy, report = telemetry.health.check()
            self._respond_json(
                200 if healthy else 503,
                {"healthy": healthy, "probes": report},
            )
        elif path.startswith("/export/"):
            name = path[len("/export/"):]
            exporter = telemetry.exporter(name)
            if exporter is None:
                self._respond_json(
                    404, {"error": f"unknown exporter {name!r}"})
            else:
                self._respond(200, exporter.content_type,
                              exporter.render(telemetry))
        else:  # an /api/... query route
            query = self.path.split("?", 1)
            params = dict(parse_qsl(query[1])) if len(query) > 1 else {}
            status, payload = service.handle_query(path, params)
            self._respond_json(status, payload)

    def _handle_ingest(self, service) -> None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._respond_json(
                400, {"error": "invalid Content-Length header"})
            return
        if length < 0 or length > _MAX_BODY_BYTES:
            self._respond_json(
                413, {"error": f"body exceeds {_MAX_BODY_BYTES} bytes"})
            return
        body = self.rfile.read(length)
        if len(body) != length:
            self._respond_json(
                400, {"error": "truncated request body"})
            return
        status, payload, extra = service.handle_ingest(
            self.headers.get("Content-Type", ""),
            body,
            source=self.headers.get("X-Repro-Source", ""),
            seq_header=self.headers.get("X-Repro-Seq"),
            time_unit=self.headers.get("X-Repro-Time-Unit"),
        )
        self._respond_json(status, payload, extra)


class TelemetryServer:
    """Background HTTP exposition of one :class:`Telemetry` instance."""

    def __init__(self, telemetry: "Telemetry", port: int = 0,
                 host: str = "127.0.0.1"):
        self.telemetry = telemetry
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.telemetry = telemetry  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral ``port=0`` request)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TelemetryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"repro-telemetry-:{self.port}", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
