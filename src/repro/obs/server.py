"""The scrape endpoint: a stdlib HTTP thread serving telemetry.

A :class:`TelemetryServer` wraps ``http.server.ThreadingHTTPServer``
on a daemon thread -- no third-party dependency, no event loop to
integrate with the engine's own threads.  Routes:

* ``/metrics`` -- Prometheus text exposition (the scrape target);
* ``/metrics.json`` -- JSON snapshot of every instrument;
* ``/traces`` -- the retained per-window phase traces as JSON;
* ``/healthz`` -- 200 with the probe report when every probe passes,
  503 otherwise (orchestrator-friendly);
* ``/export/<name>`` -- any exporter registered via
  :func:`repro.api.register_exporter`.

``port=0`` binds an ephemeral port (``server.port`` reports the real
one) -- tests and parallel CI jobs never fight over a number.  The
server only reads telemetry state; it cannot touch analysis state, so
a slow or hostile scraper cannot perturb determinism.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.obs.exposition import (
    JSON_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    snapshot,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry


class _Handler(BaseHTTPRequestHandler):
    """Routes one request against the owning server's telemetry."""

    server_version = "repro-telemetry/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""

    def _respond(self, status: int, content_type: str,
                 body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        telemetry = self.server.telemetry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path in ("/", "/metrics"):
                self._respond(200, PROMETHEUS_CONTENT_TYPE,
                              render_prometheus(telemetry.registry))
            elif path == "/metrics.json":
                self._respond(200, JSON_CONTENT_TYPE, json.dumps(
                    snapshot(telemetry.registry), sort_keys=True))
            elif path == "/traces":
                self._respond(200, JSON_CONTENT_TYPE, json.dumps(
                    telemetry.tracer.as_dicts()))
            elif path == "/healthz":
                healthy, report = telemetry.health.check()
                self._respond(
                    200 if healthy else 503, JSON_CONTENT_TYPE,
                    json.dumps({"healthy": healthy, "probes": report},
                               sort_keys=True),
                )
            elif path.startswith("/export/"):
                name = path[len("/export/"):]
                exporter = telemetry.exporter(name)
                if exporter is None:
                    self._respond(404, JSON_CONTENT_TYPE, json.dumps(
                        {"error": f"unknown exporter {name!r}"}))
                else:
                    self._respond(200, exporter.content_type,
                                  exporter.render(telemetry))
            else:
                self._respond(404, JSON_CONTENT_TYPE, json.dumps({
                    "error": f"no route {path!r}",
                    "routes": ["/metrics", "/metrics.json", "/traces",
                               "/healthz", "/export/<name>"],
                }))
        except BrokenPipeError:  # scraper went away mid-response
            pass


class TelemetryServer:
    """Background HTTP exposition of one :class:`Telemetry` instance."""

    def __init__(self, telemetry: "Telemetry", port: int = 0,
                 host: str = "127.0.0.1"):
        self.telemetry = telemetry
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.telemetry = telemetry  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral ``port=0`` request)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TelemetryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"repro-telemetry-:{self.port}", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
