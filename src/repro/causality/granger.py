"""The Granger causality test (paper Section 3.3).

"If a metric X is Granger-causing another metric Y, then we can predict
Y better by using the history of both X and Y compared to only using
the history of Y."  Operationally, two OLS models are fitted:

* restricted:    ``Y_t = a + sum_i b_i Y_{t-i}``
* unrestricted:  ``Y_t = a + sum_i b_i Y_{t-i} + sum_i c_i X_{t-i}``

and compared with an F-test; the null (X does not Granger-cause Y) is
rejected when the p-value falls below the significance level.

Caveats the paper handles, reproduced here:

* **Spurious regression** -- non-stationary series (e.g. monotone
  counters) make the F-test find phantom relations (Granger & Newbold
  1974).  Each series is checked with the Augmented Dickey-Fuller test
  and first-differenced when non-stationary.
* **Lag** -- effects propagate with delay; Sieve uses a conservative
  500 ms (one grid step).  We test a small set of candidate lags and
  keep the most significant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.hypothesis_tests import adf_test, f_test_nested
from repro.stats.regression import add_constant, ols
from repro.stats.timeseries_ops import first_difference, lag_matrix

#: Default significance level for rejecting the Granger null.
DEFAULT_ALPHA = 0.05

#: Candidate lags in grid steps; 1 step = 500 ms, Sieve's choice.
DEFAULT_LAGS = (1, 2)


@dataclass(frozen=True)
class GrangerResult:
    """Outcome of one directed Granger test (X -> Y)."""

    p_value: float
    f_statistic: float
    lag: int
    """Lag (grid steps) of the most significant model."""

    differenced: bool
    """Whether series were first-differenced for stationarity."""

    n_obs: int

    def is_causal(self, alpha: float = DEFAULT_ALPHA) -> bool:
        """True when X Granger-causes Y at level ``alpha``."""
        return self.p_value < alpha


def make_stationary(values: np.ndarray,
                    alpha: float = DEFAULT_ALPHA) -> tuple[np.ndarray, bool]:
    """Return a stationary version of ``values`` (differencing once).

    "For these [non-stationary] time series, the first difference is
    taken and then used in the Granger Causality tests" (Section 3.3).
    """
    arr = np.asarray(values, dtype=float)
    if adf_test(arr).is_stationary(alpha):
        return arr, False
    return first_difference(arr), True


def _granger_single_lag(x: np.ndarray, y: np.ndarray, lag: int):
    """F-test of X -> Y at one fixed lag; None when too short."""
    n = y.size
    if n - lag <= 2 * lag + 2:
        return None
    target = y[lag:]
    y_lags = lag_matrix(y, lag)
    x_lags = lag_matrix(x, lag)

    restricted = ols(target, add_constant(y_lags))
    unrestricted = ols(target, add_constant(np.hstack([y_lags, x_lags])))
    if unrestricted.df_resid < 1:
        return None
    return f_test_nested(
        restricted.rss, unrestricted.rss,
        n_extra_params=lag,
        df_resid_unrestricted=unrestricted.df_resid,
    )


def granger_test(
    x: np.ndarray,
    y: np.ndarray,
    lags=DEFAULT_LAGS,
    alpha: float = DEFAULT_ALPHA,
    pre_differenced: bool = False,
) -> GrangerResult:
    """Does ``x`` Granger-cause ``y``?

    Both series must be aligned on the same grid and equal length.
    Stationarity is enforced first (skip with ``pre_differenced=True``
    when the caller already transformed the inputs); if either series
    needs differencing, both are differenced so the regression stays
    aligned.  The reported result is the candidate lag with the
    smallest p-value.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D series")
    if xa.size < 12:
        raise ValueError("series too short for a meaningful Granger test")

    differenced = False
    if not pre_differenced:
        xs, x_diff = make_stationary(xa, alpha)
        ys, y_diff = make_stationary(ya, alpha)
        if x_diff != y_diff:
            # Difference both so samples stay aligned in time.
            xs = first_difference(xa) if not x_diff else xs
            ys = first_difference(ya) if not y_diff else ys
        differenced = x_diff or y_diff
        xa, ya = xs, ys

    best = None
    best_lag = lags[0]
    for lag in lags:
        outcome = _granger_single_lag(xa, ya, lag)
        if outcome is None:
            continue
        if best is None or outcome.p_value < best.p_value:
            best, best_lag = outcome, lag

    if best is None:
        return GrangerResult(p_value=1.0, f_statistic=0.0, lag=lags[0],
                             differenced=differenced, n_obs=ya.size)
    return GrangerResult(
        p_value=best.p_value,
        f_statistic=best.f_statistic,
        lag=best_lag,
        differenced=differenced,
        n_obs=ya.size,
    )
