"""Call-graph-restricted pairwise dependency extraction.

The naive approach -- compare every component against every other using
every metric -- scales quadratically twice over.  Sieve restricts the
comparison (paper Section 3.3) to:

* component pairs that *communicate* (edges of the Step-#1 call graph);
* the *representative metrics* of each component (Step #2).

For each call-graph edge (A -> B), every representative of A is tested
against every representative of B in both directions.  When both
directions are significant for the same metric pair, the relation is a
symptom of a hidden common cause and is filtered out ("an indicator of
such a situation is that both metrics will Granger-cause each other",
Section 3.3).
"""

from __future__ import annotations

import numpy as np

from repro.causality.depgraph import DependencyGraph, MetricRelation
from repro.causality.granger import (
    DEFAULT_ALPHA,
    DEFAULT_LAGS,
    granger_test,
    make_stationary,
)
from repro.clustering.reduction import ComponentClustering
from repro.metrics.timeseries import MetricFrame
from repro.stats.interpolate import DEFAULT_GRID_INTERVAL, align_series
from repro.tracing.callgraph import CallGraph


def _representative_series(
    frame: MetricFrame,
    clusterings: dict[str, ComponentClustering],
    interval: float,
) -> dict[tuple[str, str], np.ndarray]:
    """Aligned, stationarity-normalized series of every representative.

    All representatives are aligned onto one common grid so any pair
    can be compared; stationarity transforms are cached per metric
    (the ADF test is the expensive part of the Granger procedure).
    """
    raw: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    keys: dict[str, tuple[str, str]] = {}
    for component, clustering in clusterings.items():
        for metric in clustering.representatives:
            ts = frame.series(component, metric)
            if len(ts) < 8:
                continue
            flat_name = f"{component}\x00{metric}"
            raw[flat_name] = (ts.times, ts.values)
            keys[flat_name] = (component, metric)
    if not raw:
        return {}
    _grid, aligned = align_series(raw, interval=interval)

    out: dict[tuple[str, str], np.ndarray] = {}
    for flat_name, values in aligned.items():
        stationary, _diff = make_stationary(values)
        # Equalize lengths: differencing shortens by one.
        out[keys[flat_name]] = stationary
    min_len = min(v.size for v in out.values())
    return {key: v[v.size - min_len:] for key, v in out.items()}


def extract_dependencies(
    frame: MetricFrame,
    call_graph: CallGraph,
    clusterings: dict[str, ComponentClustering],
    alpha: float = DEFAULT_ALPHA,
    lags=DEFAULT_LAGS,
    interval: float = DEFAULT_GRID_INTERVAL,
    filter_bidirectional: bool = True,
) -> DependencyGraph:
    """Sieve Step #3: build the dependency graph.

    Only call-graph neighbours are compared.  Set
    ``filter_bidirectional=False`` to keep mutually-causal metric pairs
    (the ablation benchmark measures how many spurious relations this
    admits).
    """
    series = _representative_series(frame, clusterings, interval)
    graph = DependencyGraph(components=clusterings.keys())

    for caller, callee in call_graph.communicating_pairs():
        if caller not in clusterings or callee not in clusterings:
            continue
        for m_caller in clusterings[caller].representatives:
            key_a = (caller, m_caller)
            if key_a not in series:
                continue
            for m_callee in clusterings[callee].representatives:
                key_b = (callee, m_callee)
                if key_b not in series:
                    continue
                forward = granger_test(series[key_a], series[key_b],
                                       lags=lags, pre_differenced=True)
                backward = granger_test(series[key_b], series[key_a],
                                        lags=lags, pre_differenced=True)
                fwd = forward.is_causal(alpha)
                bwd = backward.is_causal(alpha)
                if filter_bidirectional and fwd and bwd:
                    continue  # hidden-common-cause symptom
                if fwd:
                    graph.add_relation(MetricRelation(
                        source_component=caller, source_metric=m_caller,
                        target_component=callee, target_metric=m_callee,
                        lag=forward.lag, p_value=forward.p_value,
                        f_statistic=forward.f_statistic,
                    ))
                if bwd:
                    graph.add_relation(MetricRelation(
                        source_component=callee, source_metric=m_callee,
                        target_component=caller, target_metric=m_caller,
                        lag=backward.lag, p_value=backward.p_value,
                        f_statistic=backward.f_statistic,
                    ))
    return graph


def naive_pair_count(n_components: int, metrics_per_component: int) -> int:
    """Search space of the naive all-pairs/all-metrics comparison.

    Used by the ablation benchmark to report the reduction factor the
    call-graph restriction and metric reduction buy.
    """
    if n_components < 0 or metrics_per_component < 0:
        raise ValueError("counts must be non-negative")
    pairs = n_components * (n_components - 1)
    return pairs * metrics_per_component * metrics_per_component
