"""Dependency extraction via Granger causality (Sieve Step #3).

Sieve compares the representative metrics of *communicating* components
(call-graph neighbours only) with pairwise Granger causality tests
(paper Section 3.3): metric X Granger-causes metric Y when the history
of X improves the prediction of Y beyond Y's own history.  The
machinery:

* :mod:`repro.causality.granger` -- the test itself: stationarity
  handling (ADF + first difference), the two nested OLS models, the
  F-test, and lag selection around Sieve's conservative 500 ms.
* :mod:`repro.causality.depgraph` -- the resulting dependency graph:
  metric-level relations aggregated into component-level edges.
* :mod:`repro.causality.pairwise` -- the driver walking the call graph
  and the representative metrics, including the bidirectional-edge
  filter for spurious relations.
"""

from repro.causality.depgraph import DependencyGraph, MetricRelation
from repro.causality.granger import GrangerResult, granger_test
from repro.causality.pairwise import extract_dependencies

__all__ = [
    "DependencyGraph",
    "GrangerResult",
    "MetricRelation",
    "extract_dependencies",
    "granger_test",
]
