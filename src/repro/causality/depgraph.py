"""The dependency graph Sieve extracts (paper Sections 3.3, 4).

Vertices are components.  A *metric relation* records that one metric
of one component Granger-causes a metric of a neighbouring component,
with its lag and significance; component-level edges aggregate the
relations between a component pair.  Both case studies consume this
object: autoscaling picks "the metric that appears the most in Granger
Causality relations" (Section 4.1), RCA diffs the graphs of two
application versions (Section 4.2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import networkx as nx


@dataclass(frozen=True)
class MetricRelation:
    """One Granger-causal relation between metrics of two components."""

    source_component: str
    source_metric: str
    target_component: str
    target_metric: str
    lag: int
    """Lag in grid steps (1 step = 500 ms by default)."""

    p_value: float
    f_statistic: float = 0.0

    @property
    def source_key(self) -> tuple[str, str]:
        return (self.source_component, self.source_metric)

    @property
    def target_key(self) -> tuple[str, str]:
        return (self.target_component, self.target_metric)


class DependencyGraph:
    """Component dependency graph with metric-level annotations."""

    def __init__(self, components=()):
        self._relations: list[MetricRelation] = []
        self._components: set[str] = set(components)

    def add_component(self, name: str) -> None:
        """Register a component (vertices may have no edges)."""
        self._components.add(name)

    def add_relation(self, relation: MetricRelation) -> None:
        """Insert one Granger-causal metric relation."""
        self._components.add(relation.source_component)
        self._components.add(relation.target_component)
        self._relations.append(relation)

    @property
    def components(self) -> list[str]:
        return sorted(self._components)

    @property
    def relations(self) -> list[MetricRelation]:
        return list(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def relations_between(self, source: str,
                          target: str) -> list[MetricRelation]:
        """All relations from ``source`` to ``target`` components."""
        return [
            r for r in self._relations
            if r.source_component == source and r.target_component == target
        ]

    def component_edge_set(self) -> set[tuple[str, str]]:
        """Directed component-level edges as a set (graph comparisons)."""
        return {
            (r.source_component, r.target_component)
            for r in self._relations
        }

    def metric_edge_set(self) -> set[tuple[str, str, str, str]]:
        """Metric-level relations as (src comp, src metric, dst comp,
        dst metric) tuples (streaming-vs-batch convergence checks)."""
        return {
            (r.source_component, r.source_metric,
             r.target_component, r.target_metric)
            for r in self._relations
        }

    def component_edges(self) -> list[tuple[str, str, int]]:
        """Component-level edges: (source, target, #metric relations)."""
        counts = Counter(
            (r.source_component, r.target_component) for r in self._relations
        )
        return sorted(
            (src, dst, count) for (src, dst), count in counts.items()
        )

    def metric_appearances(self) -> Counter:
        """How often every (component, metric) appears in relations.

        The autoscaling engine picks its guiding metric as the most
        frequent entry of this counter (Section 4.1, rule step #1).
        """
        counter: Counter = Counter()
        for r in self._relations:
            counter[r.source_key] += 1
            counter[r.target_key] += 1
        return counter

    def most_connected_metric(self, component: str | None = None
                              ) -> tuple[str, str] | None:
        """The (component, metric) appearing in the most relations.

        With ``component`` set, only that component's metrics compete
        (useful when a scaling rule must guide a specific component).
        """
        appearances = self.metric_appearances()
        if component is not None:
            appearances = Counter({
                key: count for key, count in appearances.items()
                if key[0] == component
            })
        if not appearances:
            return None
        # Deterministic tie-break by name.
        best = max(sorted(appearances), key=lambda key: appearances[key])
        return best

    def edges_of_metric(self, component: str,
                        metric: str) -> list[MetricRelation]:
        """Relations touching one metric."""
        key = (component, metric)
        return [
            r for r in self._relations
            if r.source_key == key or r.target_key == key
        ]

    def to_networkx(self) -> nx.MultiDiGraph:
        """Metric relations as a component-level multigraph."""
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(self._components)
        for r in self._relations:
            graph.add_edge(
                r.source_component, r.target_component,
                source_metric=r.source_metric,
                target_metric=r.target_metric,
                lag=r.lag, p_value=r.p_value,
            )
        return graph

    def summary(self) -> dict:
        """Compact description (benchmark output, logging)."""
        return {
            "components": len(self._components),
            "metric_relations": len(self._relations),
            "component_edges": len(self.component_edges()),
        }


def edge_jaccard(a: DependencyGraph, b: DependencyGraph,
                 level: str = "component") -> float:
    """Jaccard similarity of two dependency graphs' edge sets.

    ``level`` selects the granularity: ``"component"`` compares the
    directed component edges, ``"metric"`` the full metric relations.
    Two empty graphs count as identical (1.0).
    """
    if level == "component":
        ea, eb = a.component_edge_set(), b.component_edge_set()
    elif level == "metric":
        ea, eb = a.metric_edge_set(), b.metric_edge_set()
    else:
        raise ValueError(f"unknown comparison level {level!r}")
    union = ea | eb
    if not union:
        return 1.0
    return len(ea & eb) / len(union)
