"""sysdig-analog syscall tracer.

The real deployment runs sysdig's kernel module on every host, filters
the syscall event stream down to network calls, and maps source /
destination IP addresses to components via the cluster manager's service
discovery (paper Sections 3.1 and 5).  Here the simulator emits
connection events directly; the tracer still goes through an explicit
address-mapping step so the service-discovery failure modes (unknown
peers, shared hosts) remain representable and testable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tracing.callgraph import CallGraph


@dataclass(frozen=True)
class SyscallEvent:
    """One observed network syscall (connect/accept pair collapsed)."""

    time: float
    src_addr: str
    dst_addr: str

    @property
    def is_network_call(self) -> bool:  # pragma: no cover - trivially true
        return True


class ServiceDiscovery:
    """Maps network addresses to component names (cluster-manager analog)."""

    def __init__(self) -> None:
        self._addr_to_component: dict[str, str] = {}
        self._component_to_addr: dict[str, str] = {}
        self._next_octet = 2

    def register(self, component: str) -> str:
        """Assign (or return) the address of a component."""
        if component in self._component_to_addr:
            return self._component_to_addr[component]
        addr = f"10.0.0.{self._next_octet}"
        self._next_octet += 1
        self._addr_to_component[addr] = component
        self._component_to_addr[component] = addr
        return addr

    def resolve(self, addr: str) -> str | None:
        """Component owning ``addr``, or None for unknown peers."""
        return self._addr_to_component.get(addr)

    def address_of(self, component: str) -> str:
        """Registered address of ``component`` (KeyError if unknown)."""
        return self._component_to_addr[component]


class SysdigTracer:
    """Builds a call graph from the syscall event stream.

    Attach :meth:`sink` to a :class:`~repro.simulator.fluid.FluidSimulation`
    as its ``trace_sink``; afterwards :meth:`call_graph` returns the
    captured caller -> callee graph.  Events whose addresses do not
    resolve are counted but dropped, mirroring connections to components
    outside the cluster manager's view.
    """

    def __init__(self, discovery: ServiceDiscovery | None = None,
                 keep_events: int = 100_000):
        self.discovery = discovery or ServiceDiscovery()
        self.keep_events = keep_events
        self.events: list[SyscallEvent] = []
        self.observed_connections = 0
        self.unresolved_connections = 0
        self._graph = CallGraph()

    def register_components(self, names) -> None:
        """Pre-register components with service discovery."""
        for name in names:
            self.discovery.register(name)
            self._graph.add_component(name)

    def sink(self, time: float, src: str, dst: str, count: int) -> None:
        """Trace-sink callback fed by the simulator (component names)."""
        src_addr = self.discovery.register(src)
        dst_addr = self.discovery.register(dst)
        self.record_syscalls(
            [SyscallEvent(time, src_addr, dst_addr)] * min(count, 1),
        )
        # Connection counts beyond the retained sample still aggregate.
        if count > 1:
            self._graph.record_call(src, dst, count - 1)
            self.observed_connections += count - 1

    def record_syscalls(self, events) -> None:
        """Consume raw syscall events (address-level)."""
        for event in events:
            self.observed_connections += 1
            if len(self.events) < self.keep_events:
                self.events.append(event)
            src = self.discovery.resolve(event.src_addr)
            dst = self.discovery.resolve(event.dst_addr)
            if src is None or dst is None:
                self.unresolved_connections += 1
                continue
            self._graph.record_call(src, dst)

    def call_graph(self, min_count: int = 1) -> CallGraph:
        """The captured call graph, thresholded at ``min_count``."""
        return self._graph.filtered(min_count)
