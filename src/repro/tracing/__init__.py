"""Call-graph capture (the sysdig of this reproduction).

Sieve obtains the inter-component call graph by observing network system
calls with sysdig (paper Section 3.1): a kernel module streams syscall
events, user-defined filters extract connect/accept pairs, and IP
addresses map back to components through the cluster manager's service
discovery.  This subpackage reproduces that machinery against the
simulator's connection-event stream, plus the overhead models for the
Figure 5 comparison (native vs sysdig vs tcpdump vs ptrace).
"""

from repro.tracing.callgraph import CallGraph
from repro.tracing.overhead import (
    TRACING_TECHNIQUES,
    TracingTechnique,
    completion_time_factor,
)
from repro.tracing.sysdig import ServiceDiscovery, SyscallEvent, SysdigTracer

__all__ = [
    "CallGraph",
    "ServiceDiscovery",
    "SyscallEvent",
    "SysdigTracer",
    "TRACING_TECHNIQUES",
    "TracingTechnique",
    "completion_time_factor",
]
