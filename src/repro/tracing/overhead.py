"""Overhead models of the call-graph capture techniques (Figure 5).

The paper benchmarks the monitoring overhead of the candidate tracing
techniques by serving 10 000 small static-file HTTP requests from nginx
under each (Section 6.1.3):

* **native** -- no tracing, the baseline;
* **tcpdump** -- packet capture; cheap (~7% slowdown) but provides
  little context (packet parsing, NAT ambiguity on shared hosts);
* **sysdig** -- kernel-module syscall stream; ~22% slowdown but maps
  events to processes/containers directly;
* **ptrace** -- per-syscall stops of the traced process; two context
  switches per syscall make it far more expensive (the paper dismisses
  it without measuring; we model the known ~an-order-of-magnitude hit).

The technique objects price one request's tracing cost; the Figure 5
benchmark replays the 10k-request experiment on the DES nginx model
under each technique.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TracingTechnique:
    """Cost model of one capture technique."""

    name: str
    per_request_factor: float
    """Multiplier on request service time (1.0 = no overhead)."""

    syscalls_per_request: int = 12
    context_switch_cost: float = 0.0
    """Extra seconds per traced syscall (ptrace-style stop/continue)."""

    provides_process_context: bool = True
    """Can events be attributed to processes/containers directly?"""

    def request_overhead(self, base_service_time: float) -> float:
        """Extra seconds added to one request by this technique."""
        proportional = base_service_time * (self.per_request_factor - 1.0)
        switching = self.syscalls_per_request * self.context_switch_cost
        return proportional + switching


#: The techniques compared in Figure 5 (factors calibrated to the
#: paper's measurements: tcpdump +7%, sysdig +22%).
TRACING_TECHNIQUES: dict[str, TracingTechnique] = {
    "native": TracingTechnique(
        name="native", per_request_factor=1.0,
        provides_process_context=False,
    ),
    "tcpdump": TracingTechnique(
        name="tcpdump", per_request_factor=1.07,
        provides_process_context=False,
    ),
    "sysdig": TracingTechnique(
        name="sysdig", per_request_factor=1.22,
    ),
    "ptrace": TracingTechnique(
        name="ptrace", per_request_factor=1.25,
        context_switch_cost=12e-6,
    ),
}


def completion_time_factor(technique: TracingTechnique,
                           base_service_time: float) -> float:
    """Slowdown factor of a closed-loop benchmark under ``technique``."""
    if base_service_time <= 0:
        raise ValueError("base_service_time must be positive")
    overhead = technique.request_overhead(base_service_time)
    return (base_service_time + overhead) / base_service_time
