"""The directed call graph between microservice components.

Vertices are components; an edge points from caller to callee (paper
Section 3.1).  Edges carry observed connection counts, so sporadic
misattributed connections can be filtered with a count threshold.  Sieve
uses the call graph to restrict the pairwise Granger comparison to
components that actually communicate (Section 3.3).
"""

from __future__ import annotations

import networkx as nx


class CallGraph:
    """Directed caller -> callee graph with connection counts."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    def add_component(self, name: str) -> None:
        """Register a component even before any call is seen."""
        self._graph.add_node(name)

    def record_call(self, caller: str, callee: str, count: int = 1) -> None:
        """Record ``count`` observed connections from caller to callee."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if caller == callee:
            return  # loopback chatter carries no inter-component structure
        if self._graph.has_edge(caller, callee):
            self._graph[caller][callee]["count"] += count
        else:
            self._graph.add_edge(caller, callee, count=count)

    @property
    def components(self) -> list[str]:
        """All known components, sorted."""
        return sorted(self._graph.nodes)

    def callees(self, component: str) -> list[str]:
        """Components that ``component`` calls, sorted."""
        if component not in self._graph:
            return []
        return sorted(self._graph.successors(component))

    def callers(self, component: str) -> list[str]:
        """Components that call ``component``, sorted."""
        if component not in self._graph:
            return []
        return sorted(self._graph.predecessors(component))

    def edges(self) -> list[tuple[str, str, int]]:
        """All (caller, callee, count) edges, sorted."""
        return sorted(
            (u, v, data["count"]) for u, v, data in self._graph.edges(data=True)
        )

    def has_edge(self, caller: str, callee: str) -> bool:
        """True when at least one caller -> callee connection was seen."""
        return self._graph.has_edge(caller, callee)

    def call_count(self, caller: str, callee: str) -> int:
        """Observed connections from caller to callee (0 if none)."""
        if not self._graph.has_edge(caller, callee):
            return 0
        return int(self._graph[caller][callee]["count"])

    def filtered(self, min_count: int = 1) -> "CallGraph":
        """Copy without edges below ``min_count`` connections."""
        out = CallGraph()
        for node in self._graph.nodes:
            out.add_component(node)
        for u, v, count in self.edges():
            if count >= min_count:
                out.record_call(u, v, count)
        return out

    def communicating_pairs(self) -> list[tuple[str, str]]:
        """All (caller, callee) pairs -- the Granger search space."""
        return [(u, v) for u, v, _count in self.edges()]

    def to_networkx(self) -> nx.DiGraph:
        """A copy as a networkx digraph (for analysis / drawing)."""
        return self._graph.copy()

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, component: str) -> bool:
        return component in self._graph
