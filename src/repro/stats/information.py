"""Information-theoretic clustering comparison (entropy, MI, AMI).

Sieve evaluates the *consistency* of its k-Shape clusterings across
independent measurement runs with the Adjusted Mutual Information score
(Vinh, Epps & Bailey, ICML 2009) -- Figure 3 of the paper.  AMI corrects
plain mutual information for chance agreement:

    AMI(U, V) = (MI(U, V) - E[MI]) / (avg(H(U), H(V)) - E[MI])

so a random labelling scores ~0 and identical partitions score 1.  The
expected mutual information ``E[MI]`` is computed exactly under the
hypergeometric model of random partitions with fixed marginals.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

__all__ = [
    "adjusted_mutual_info",
    "contingency_matrix",
    "entropy",
    "expected_mutual_info",
    "mutual_info",
]


def contingency_matrix(labels_a, labels_b) -> np.ndarray:
    """Contingency table of two labelings of the same items."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("labelings must be equal-length 1-D sequences")
    if a.size == 0:
        raise ValueError("cannot compare empty labelings")
    _, a_idx = np.unique(a, return_inverse=True)
    _, b_idx = np.unique(b, return_inverse=True)
    table = np.zeros((a_idx.max() + 1, b_idx.max() + 1), dtype=np.int64)
    np.add.at(table, (a_idx, b_idx), 1)
    return table


def entropy(labels) -> float:
    """Shannon entropy (nats) of a labeling."""
    arr = np.asarray(labels)
    if arr.size == 0:
        raise ValueError("cannot compute entropy of an empty labeling")
    _, counts = np.unique(arr, return_counts=True)
    p = counts / counts.sum()
    return float(-np.sum(p * np.log(p)))


def mutual_info(labels_a, labels_b) -> float:
    """Mutual information (nats) between two labelings."""
    table = contingency_matrix(labels_a, labels_b)
    n = table.sum()
    nz = table > 0
    nij = table[nz].astype(float)
    ai = table.sum(axis=1, keepdims=True).astype(float)
    bj = table.sum(axis=0, keepdims=True).astype(float)
    outer = (ai @ bj)[nz]
    mi = np.sum((nij / n) * (np.log(nij) + np.log(n) - np.log(outer)))
    return float(max(mi, 0.0))


def expected_mutual_info(table: np.ndarray) -> float:
    """Exact E[MI] under random partitions with the table's marginals.

    Follows Vinh et al. (2009), eq. 24a: for every cell ``(i, j)`` sum
    over all feasible co-occurrence counts ``nij`` weighted by the
    hypergeometric probability of observing that count.  Factorials are
    evaluated through ``gammaln`` for numerical stability.
    """
    table = np.asarray(table, dtype=np.int64)
    a = table.sum(axis=1)
    b = table.sum(axis=0)
    n = int(table.sum())
    if n == 0:
        raise ValueError("empty contingency table")

    log_n = np.log(n)
    gln_a = gammaln(a + 1)
    gln_b = gammaln(b + 1)
    gln_na = gammaln(n - a + 1)
    gln_nb = gammaln(n - b + 1)
    gln_n = gammaln(n + 1)

    emi = 0.0
    for i, ai in enumerate(a):
        for j, bj in enumerate(b):
            lo = max(1, ai + bj - n)
            hi = min(ai, bj)
            if hi < lo:
                continue
            nijs = np.arange(lo, hi + 1, dtype=np.int64)
            term1 = (nijs / n) * (np.log(nijs) + log_n
                                  - np.log(ai) - np.log(bj))
            log_prob = (
                gln_a[i] + gln_b[j] + gln_na[i] + gln_nb[j]
                - gln_n
                - gammaln(nijs + 1)
                - gammaln(ai - nijs + 1)
                - gammaln(bj - nijs + 1)
                - gammaln(n - ai - bj + nijs + 1)
            )
            emi += float(np.sum(term1 * np.exp(log_prob)))
    return emi


def adjusted_mutual_info(labels_a, labels_b,
                         average_method: str = "arithmetic") -> float:
    """Adjusted Mutual Information between two labelings.

    ``average_method`` selects the normalizer combining the two
    entropies: ``"arithmetic"`` (mean), ``"max"``, ``"min"``, or
    ``"geometric"``.  Two identical partitions score 1.0; independent
    random partitions score approximately 0.0 (can be slightly negative).
    """
    if average_method not in ("arithmetic", "max", "min", "geometric"):
        raise ValueError(f"unknown average_method: {average_method!r}")
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    table = contingency_matrix(a, b)

    # Degenerate partitions (single cluster on both sides, or every item
    # its own cluster on both sides) are perfectly matched by convention.
    if table.shape == (1, 1):
        return 1.0
    if table.shape[0] == a.size and table.shape[1] == a.size:
        return 1.0

    mi = mutual_info(a, b)
    emi = expected_mutual_info(table)
    h_a, h_b = entropy(a), entropy(b)
    if average_method == "arithmetic":
        avg = 0.5 * (h_a + h_b)
    elif average_method == "max":
        avg = max(h_a, h_b)
    elif average_method == "min":
        avg = min(h_a, h_b)
    else:  # "geometric", validated above
        avg = float(np.sqrt(h_a * h_b))

    denom = avg - emi
    if abs(denom) < 1e-15:
        # Both partitions carry no information beyond chance.
        return 1.0 if abs(mi - emi) < 1e-15 else 0.0
    return float((mi - emi) / denom)
