"""Silhouette scores under an arbitrary distance function.

Sieve picks the number of k-Shape clusters per component by sweeping k
and keeping the assignment with the best silhouette value (Rousseeuw
1987), computed with the *shape-based distance* rather than Euclidean
distance (paper Section 3.2).  The silhouette of item ``i`` is

    s(i) = (b(i) - a(i)) / max(a(i), b(i))

with ``a(i)`` the mean distance to items sharing its cluster and
``b(i)`` the smallest mean distance to any other cluster; scores lie in
``[-1, 1]``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["pairwise_distance_matrix", "silhouette_samples", "silhouette_score"]

DistanceFn = Callable[[np.ndarray, np.ndarray], float]


def pairwise_distance_matrix(items: Sequence[np.ndarray],
                             distance: DistanceFn) -> np.ndarray:
    """Symmetric pairwise distance matrix with a zero diagonal."""
    n = len(items)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = float(distance(items[i], items[j]))
            out[i, j] = d
            out[j, i] = d
    return out


def silhouette_samples(distances: np.ndarray, labels) -> np.ndarray:
    """Per-item silhouette values from a precomputed distance matrix.

    Items in singleton clusters receive a silhouette of 0, following the
    convention of Rousseeuw (1987) and scikit-learn.
    """
    dist = np.asarray(distances, dtype=float)
    labs = np.asarray(labels)
    n = labs.size
    if dist.shape != (n, n):
        raise ValueError(
            f"distance matrix shape {dist.shape} does not match {n} labels"
        )
    unique = np.unique(labs)
    if unique.size < 2:
        raise ValueError("silhouette requires at least two clusters")

    members = {c: np.flatnonzero(labs == c) for c in unique}
    scores = np.zeros(n)
    for i in range(n):
        own = members[labs[i]]
        if own.size <= 1:
            scores[i] = 0.0
            continue
        a_i = dist[i, own].sum() / (own.size - 1)
        b_i = np.inf
        for c in unique:
            if c == labs[i]:
                continue
            other = members[c]
            b_i = min(b_i, dist[i, other].mean())
        denom = max(a_i, b_i)
        scores[i] = 0.0 if denom == 0 else (b_i - a_i) / denom
    return scores


def silhouette_score(distances: np.ndarray, labels) -> float:
    """Mean silhouette over all items."""
    return float(silhouette_samples(distances, labels).mean())
