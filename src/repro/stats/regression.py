"""Ordinary least squares, the workhorse of Sieve's causality tests.

The Granger procedure (paper Section 3.3) fits two nested linear models
with OLS and compares them with an F-test; the Augmented Dickey-Fuller
test is likewise an OLS regression whose t-statistic is compared against
non-standard critical values.  This module provides the shared OLS core
with the diagnostics both tests need (residual sum of squares, standard
errors, t-statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class OLSResult:
    """Fit diagnostics for an ordinary-least-squares regression."""

    params: np.ndarray
    """Estimated coefficients, one per design-matrix column."""

    rss: float
    """Residual sum of squares."""

    tss: float
    """Total sum of squares of the (centred) response."""

    n_obs: int
    """Number of observations."""

    n_params: int
    """Number of fitted parameters (design-matrix columns)."""

    stderr: np.ndarray = field(repr=False)
    """Standard error of each coefficient."""

    residuals: np.ndarray = field(repr=False)
    """Per-observation residuals ``y - X @ params``."""

    @property
    def df_resid(self) -> int:
        """Residual degrees of freedom."""
        return self.n_obs - self.n_params

    @property
    def r_squared(self) -> float:
        """Coefficient of determination; 0.0 for a degenerate response."""
        if self.tss <= 0:
            return 0.0
        return 1.0 - self.rss / self.tss

    @property
    def tvalues(self) -> np.ndarray:
        """t-statistics of the coefficients (NaN where stderr is zero)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.stderr > 0, self.params / self.stderr, np.nan)


def add_constant(design: np.ndarray) -> np.ndarray:
    """Prepend an intercept column of ones to a design matrix."""
    mat = np.atleast_2d(np.asarray(design, dtype=float))
    if mat.shape[0] == 1 and mat.shape[1] > 1 and np.asarray(design).ndim == 1:
        mat = mat.T
    ones = np.ones((mat.shape[0], 1))
    return np.hstack([ones, mat])


def ols(response: np.ndarray, design: np.ndarray) -> OLSResult:
    """Fit ``response ~ design`` by least squares.

    ``design`` must already contain an intercept column if one is wanted
    (use :func:`add_constant`).  The fit uses ``numpy.linalg.lstsq``,
    which handles rank-deficient designs by returning the minimum-norm
    solution; standard errors use the pseudo-inverse in that case.
    """
    y = np.asarray(response, dtype=float)
    X = np.atleast_2d(np.asarray(design, dtype=float))
    if X.shape[0] != y.shape[0]:
        if X.shape[1] == y.shape[0]:
            X = X.T
        else:
            raise ValueError(
                f"design has {X.shape[0]} rows but response has {y.shape[0]}"
            )
    n_obs, n_params = X.shape
    if n_obs <= n_params:
        raise ValueError(
            f"need more observations ({n_obs}) than parameters ({n_params})"
        )

    params, _, _, _ = np.linalg.lstsq(X, y, rcond=None)
    residuals = y - X @ params
    rss = float(residuals @ residuals)
    centred = y - y.mean()
    tss = float(centred @ centred)

    df_resid = n_obs - n_params
    sigma2 = rss / df_resid if df_resid > 0 else np.nan
    xtx_inv = np.linalg.pinv(X.T @ X)
    variances = np.clip(np.diag(xtx_inv) * sigma2, 0.0, None)
    stderr = np.sqrt(variances)

    return OLSResult(
        params=params,
        rss=rss,
        tss=tss,
        n_obs=n_obs,
        n_params=n_params,
        stderr=stderr,
        residuals=residuals,
    )
