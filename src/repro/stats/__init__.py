"""Statistics substrate for the Sieve reproduction.

The original Sieve implementation leaned on ``statsmodels`` (OLS, F-test,
Augmented Dickey-Fuller, Granger causality) and on the k-Shape reference
implementation's distance computations.  Neither is available in this
environment, so this subpackage implements the required statistical
machinery from scratch on top of numpy/scipy:

* :mod:`repro.stats.timeseries_ops` -- z-normalization, differencing,
  variance filtering and related array utilities.
* :mod:`repro.stats.interpolate` -- cubic-spline gap reconstruction and
  resampling to an equidistant grid (Sieve uses a 500 ms grid).
* :mod:`repro.stats.regression` -- ordinary least squares.
* :mod:`repro.stats.hypothesis_tests` -- the F-test used by the Granger
  procedure and the Augmented Dickey-Fuller stationarity test.
* :mod:`repro.stats.correlation` -- FFT-based normalized cross-correlation
  and the shape-based distance (SBD) of the k-Shape paper.
* :mod:`repro.stats.information` -- entropy, mutual information and the
  Adjusted Mutual Information score used for Figure 3.
* :mod:`repro.stats.silhouette` -- silhouette scores under an arbitrary
  pairwise distance (Sieve evaluates clusterings with SBD).
* :mod:`repro.stats.strings` -- Jaro / Jaro-Winkler similarity used for
  metric-name pre-clustering.
"""

from repro.stats.correlation import (
    normalized_cross_correlation,
    sbd,
    sbd_with_shift,
)
from repro.stats.hypothesis_tests import (
    ADFResult,
    FTestResult,
    adf_test,
    f_test_nested,
    is_stationary,
)
from repro.stats.information import (
    adjusted_mutual_info,
    entropy,
    expected_mutual_info,
    mutual_info,
)
from repro.stats.interpolate import resample_to_grid, spline_fill
from repro.stats.regression import OLSResult, ols
from repro.stats.silhouette import silhouette_samples, silhouette_score
from repro.stats.strings import jaro, jaro_winkler
from repro.stats.timeseries_ops import (
    first_difference,
    lag_matrix,
    variance_filter_mask,
    znormalize,
)

__all__ = [
    "ADFResult",
    "FTestResult",
    "OLSResult",
    "adf_test",
    "adjusted_mutual_info",
    "entropy",
    "expected_mutual_info",
    "f_test_nested",
    "first_difference",
    "is_stationary",
    "jaro",
    "jaro_winkler",
    "lag_matrix",
    "mutual_info",
    "normalized_cross_correlation",
    "ols",
    "resample_to_grid",
    "sbd",
    "sbd_with_shift",
    "silhouette_samples",
    "silhouette_score",
    "spline_fill",
    "variance_filter_mask",
    "znormalize",
]
