"""Hypothesis tests behind Sieve's dependency extraction.

Two tests from the paper's Section 3.3:

* the **F-test** comparing the restricted and unrestricted Granger OLS
  models (null: the extra lagged regressors add no explanatory power);
* the **Augmented Dickey-Fuller (ADF) test** used to find non-stationary
  series -- those are first-differenced before Granger testing, because
  regressions between integrated series are spurious (Granger & Newbold
  1974).

The ADF distribution is non-standard; we use the MacKinnon (2010)
response-surface critical values for the constant-only regression and an
interpolated quantile table for approximate p-values.  That matches what
``statsmodels.tsa.stattools.adfuller`` does, at the fidelity Sieve needs
(a stationary / non-stationary decision at the 5% level).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.stats.regression import add_constant, ols
from repro.stats.timeseries_ops import lag_matrix


@dataclass(frozen=True)
class FTestResult:
    """Outcome of the nested-model F-test."""

    f_statistic: float
    p_value: float
    df_num: int
    df_den: int

    def rejects_null(self, alpha: float = 0.05) -> bool:
        """True when the unrestricted model is significantly better."""
        return self.p_value < alpha


def f_test_nested(rss_restricted: float, rss_unrestricted: float,
                  n_extra_params: int, df_resid_unrestricted: int) -> FTestResult:
    """F-test for nested OLS models.

    ``F = ((RSS_r - RSS_u) / q) / (RSS_u / df_u)`` where ``q`` is the
    number of restrictions.  A perfect unrestricted fit (``RSS_u == 0``)
    yields ``p = 0`` when it strictly improves on the restricted model.
    """
    if n_extra_params < 1:
        raise ValueError("need at least one restriction to test")
    if df_resid_unrestricted < 1:
        raise ValueError("unrestricted model has no residual degrees of freedom")
    improvement = max(rss_restricted - rss_unrestricted, 0.0)
    if rss_unrestricted <= 0.0:
        p_value = 0.0 if improvement > 0 else 1.0
        return FTestResult(np.inf if improvement > 0 else 0.0, p_value,
                           n_extra_params, df_resid_unrestricted)
    f_stat = (improvement / n_extra_params) / (
        rss_unrestricted / df_resid_unrestricted
    )
    p_value = float(scipy_stats.f.sf(f_stat, n_extra_params,
                                     df_resid_unrestricted))
    return FTestResult(float(f_stat), p_value, n_extra_params,
                       df_resid_unrestricted)


# MacKinnon (2010) response-surface coefficients for the ADF tau
# distribution, constant-only regression ("c"), one unit root tested.
# cv(T) = b0 + b1/T + b2/T^2 + b3/T^3.
_MACKINNON_CV_CONSTANT = {
    0.01: (-3.43035, -6.5393, -16.786, -79.433),
    0.05: (-2.86154, -2.8903, -4.234, -40.04),
    0.10: (-2.56677, -1.5384, -2.809, 0.0),
}

# Asymptotic quantiles of the ADF tau distribution (constant case), from
# the Dickey-Fuller / MacKinnon tables.  Used for approximate p-values by
# monotone interpolation in probit space.
_TAU_QUANTILES = np.array(
    [-4.38, -3.95, -3.60, -3.43, -3.12, -2.86, -2.57, -2.25,
     -1.94, -1.57, -1.14, -0.72, -0.44, -0.07, 0.23, 0.60, 1.02]
)
_TAU_PROBS = np.array(
    [0.0005, 0.001, 0.0025, 0.01, 0.025, 0.05, 0.10, 0.20,
     0.33, 0.50, 0.67, 0.80, 0.90, 0.95, 0.975, 0.99, 0.999]
)


def mackinnon_critical_values(n_obs: int) -> dict[float, float]:
    """Finite-sample ADF critical values for the constant-only regression."""
    if n_obs < 1:
        raise ValueError("n_obs must be positive")
    out = {}
    for level, (b0, b1, b2, b3) in _MACKINNON_CV_CONSTANT.items():
        out[level] = b0 + b1 / n_obs + b2 / n_obs**2 + b3 / n_obs**3
    return out


def mackinnon_pvalue(tau: float) -> float:
    """Approximate p-value for an ADF tau statistic (constant case).

    Interpolates the asymptotic quantile table through the probit
    transform, which keeps the interpolant smooth and monotone.  Values
    beyond the table saturate at the boundary probabilities.
    """
    if tau <= _TAU_QUANTILES[0]:
        return float(_TAU_PROBS[0])
    if tau >= _TAU_QUANTILES[-1]:
        return float(_TAU_PROBS[-1])
    probits = scipy_stats.norm.ppf(_TAU_PROBS)
    interp = np.interp(tau, _TAU_QUANTILES, probits)
    return float(scipy_stats.norm.cdf(interp))


@dataclass(frozen=True)
class ADFResult:
    """Outcome of the Augmented Dickey-Fuller test.

    The null hypothesis is the presence of a unit root
    (non-stationarity); small p-values mean the series looks stationary.
    """

    statistic: float
    p_value: float
    used_lags: int
    n_obs: int
    critical_values: dict[float, float]

    def is_stationary(self, alpha: float = 0.05) -> bool:
        """True when the unit-root null is rejected at level ``alpha``."""
        return self.p_value < alpha


def _default_adf_lags(n_obs: int) -> int:
    """Schwert's rule of thumb, ``12 * (T/100)^0.25``, safely capped."""
    schwert = int(np.ceil(12.0 * (n_obs / 100.0) ** 0.25))
    return max(0, min(schwert, n_obs // 2 - 2))


def adf_test(values: np.ndarray, max_lags: int | None = None) -> ADFResult:
    """Augmented Dickey-Fuller test with a constant term.

    Regresses ``dy[t] = a + b*y[t-1] + sum_i g_i * dy[t-i] + e`` and
    compares the t-statistic of ``b`` against the MacKinnon distribution.

    A series with (near-)zero variance is reported as stationary with
    ``p = 0``: it trivially never wanders, and Sieve's variance filter
    removes such metrics anyway.
    """
    y = np.asarray(values, dtype=float)
    if y.ndim != 1:
        raise ValueError(f"expected 1-D series, got shape {y.shape}")
    if y.size < 8:
        raise ValueError("ADF test needs at least 8 observations")
    if y.std() <= 1e-12:
        return ADFResult(
            statistic=-np.inf,
            p_value=0.0,
            used_lags=0,
            n_obs=y.size,
            critical_values=mackinnon_critical_values(y.size),
        )

    dy = np.diff(y)
    lags = _default_adf_lags(y.size) if max_lags is None else int(max_lags)
    lags = max(0, min(lags, dy.size - 3))

    # Align: regress dy[lags:] on y_lagged and lagged differences.
    target = dy[lags:]
    level = y[lags:-1]
    columns = [level]
    if lags > 0:
        columns.append(lag_matrix(dy, lags))
    design = add_constant(np.column_stack(columns))
    fit = ols(target, design)

    tau = float(fit.tvalues[1])  # coefficient on y[t-1]
    if not np.isfinite(tau):
        # Degenerate regression (e.g. perfectly collinear design): treat
        # as stationary, the conservative choice for Sieve (no
        # differencing applied).
        tau, p_value = 0.0, 1.0
        p_value = 1.0
    else:
        p_value = mackinnon_pvalue(tau)
    return ADFResult(
        statistic=tau,
        p_value=p_value,
        used_lags=lags,
        n_obs=fit.n_obs,
        critical_values=mackinnon_critical_values(fit.n_obs),
    )


def is_stationary(values: np.ndarray, alpha: float = 0.05,
                  max_lags: int | None = None) -> bool:
    """Convenience wrapper: does ``values`` look stationary at ``alpha``?"""
    return adf_test(values, max_lags=max_lags).is_stationary(alpha)
