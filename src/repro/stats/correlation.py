"""Normalized cross-correlation and the shape-based distance (SBD).

The k-Shape clustering algorithm (Paparrizos & Gravano, SIGMOD 2015,
adopted by Sieve in Section 3.2) measures time-series similarity with

    SBD(x, y) = 1 - max_w NCC_w(x, y)

where ``NCC`` is the cross-correlation normalized by the geometric mean
of the two series' autocorrelations at lag zero, and ``w`` ranges over
all alignments of ``x`` slid over ``y``.  Because the maximization runs
over shifts, SBD recognizes two series that have the same shape but are
displaced in time -- exactly the situation of metrics in communicating
microservices, where effects propagate with network/processing delay.

Cross-correlation is computed with FFTs (O(n log n)), as in the k-Shape
paper.

Two implementations live here:

* the **per-pair reference** (:func:`sbd`, :func:`sbd_with_shift`,
  :func:`normalized_cross_correlation`) -- one FFT round-trip per
  series pair, the direct transcription of the k-Shape definition;
* the **batched kernel** (:func:`sbd_pairs`, :func:`sbd_matrix`) --
  stacks candidate rows and runs *one* ``rfft``/``irfft`` per batch,
  which is where the per-window re-cluster critical path spends its
  time.  Row-batched FFTs are bit-identical to per-row transforms and
  the per-row energies use the same BLAS dot the reference does; the
  residual difference is the complex spectrum product, whose SIMD
  rounding depends on how the multiply is sliced, so batched distances
  match the reference to within a few ulps (~1e-16) rather than
  bit-for-bit.  The batched path itself is deterministic (same shapes
  -> same bits), so clusterings are reproducible and identical across
  executors; the equivalence tests assert tight-tolerance agreement
  with the reference plus fingerprint-identical clusterings.
  :func:`use_reference_kernel` flips the batched entry points back
  onto per-pair loops so benchmarks and tests can time/compare both
  paths at unchanged call sites.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "cross_correlation_sequence",
    "normalized_cross_correlation",
    "sbd",
    "sbd_matrix",
    "sbd_pairs",
    "sbd_with_shift",
    "use_reference_kernel",
]


def _next_pow_two(n: int) -> int:
    return 1 << (int(n) - 1).bit_length()


def cross_correlation_sequence(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Full cross-correlation ``CC_w(x, y)`` for all shifts via FFT.

    Returns an array of length ``2n - 1`` where index ``n - 1`` is the
    zero-shift correlation, lower indices shift ``x`` left of ``y`` and
    higher indices shift it right.  Both inputs must share a length.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.ndim != 1 or ya.ndim != 1:
        raise ValueError("cross-correlation expects 1-D inputs")
    if xa.size != ya.size:
        raise ValueError(
            f"series lengths differ: {xa.size} vs {ya.size}; align them first"
        )
    n = xa.size
    if n == 0:
        raise ValueError("cannot correlate empty series")
    size = _next_pow_two(2 * n - 1)
    fx = np.fft.rfft(xa, size)
    fy = np.fft.rfft(ya, size)
    cc = np.fft.irfft(fx * np.conj(fy), size)
    # Rearrange so index 0 is shift -(n-1) and index 2n-2 is shift n-1.
    return np.concatenate([cc[-(n - 1):], cc[:n]]) if n > 1 else cc[:1]


def normalized_cross_correlation(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """NCC_w(x, y) for every shift w (the "NCCc" coefficient of k-Shape).

    Normalizes by ``sqrt((x . x) * (y . y))``, the geometric mean of the
    two lag-zero autocorrelations.  If either series has zero energy the
    correlation is defined as all zeros (two flat series are maximally
    distant in shape space unless both are compared by value elsewhere).
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    cc = cross_correlation_sequence(xa, ya)
    denom = np.sqrt(float(xa @ xa) * float(ya @ ya))
    if denom <= 1e-300:
        return np.zeros_like(cc)
    return cc / denom


def sbd_with_shift(x: np.ndarray, y: np.ndarray) -> tuple[float, int]:
    """Shape-based distance and the maximizing shift.

    Returns ``(distance, shift)`` where ``distance = 1 - max_w NCC_w``
    lies in ``[0, 2]`` and ``shift`` is the displacement of ``x``
    relative to ``y`` at the maximum (positive: ``x`` lags ``y``).
    """
    ncc = normalized_cross_correlation(x, y)
    idx = int(np.argmax(ncc))
    n = (ncc.size + 1) // 2
    distance = 1.0 - float(ncc[idx])
    # Guard against floating-point excursions just outside [0, 2].
    distance = min(max(distance, 0.0), 2.0)
    return distance, idx - (n - 1)


def sbd(x: np.ndarray, y: np.ndarray) -> float:
    """Shape-based distance ``1 - max_w NCC_w(x, y)`` in ``[0, 2]``."""
    return sbd_with_shift(x, y)[0]


# -- the batched kernel ----------------------------------------------------

#: Whether the batched entry points run the vectorized FFT kernel
#: (True) or fall back to the per-pair reference loops (False).
_BATCHED = True

#: Pair-rows per ``irfft`` chunk: bounds the batched kernel's scratch
#: memory (a chunk of 4096 pairs at FFT size 512 is ~16 MB) without
#: giving up the one-transform-per-batch win on realistic inputs.
_PAIR_CHUNK = 4096


@contextmanager
def use_reference_kernel() -> Iterator[None]:
    """Run the batched entry points on the per-pair reference loops.

    Benchmarks and equivalence tests wrap calls in this to compare the
    two implementations at unchanged call sites."""
    global _BATCHED
    previous = _BATCHED
    _BATCHED = False
    try:
        yield
    finally:
        _BATCHED = previous


def _as_rows(series: np.ndarray) -> np.ndarray:
    data = np.ascontiguousarray(np.atleast_2d(
        np.asarray(series, dtype=float)))
    if data.ndim != 2:
        raise ValueError("batched SBD expects a 2-D row matrix")
    if data.shape[1] == 0:
        raise ValueError("cannot correlate empty series")
    return data


def _row_energies(rows: np.ndarray) -> np.ndarray:
    """Per-row ``x . x``, via the same dot product the reference uses.

    ``einsum``/``(x * x).sum`` use pairwise summation and so differ
    from ``x @ x`` in the last ulp; the explicit per-row dot keeps the
    batched denominators identical to the per-pair reference's (rows
    are few -- the loop is noise next to the FFTs).
    """
    return np.array([float(row @ row) for row in rows])


def _ncc_block(fx: np.ndarray, fy: np.ndarray, size: int, n: int,
               denom: np.ndarray) -> np.ndarray:
    """NCC rows for pre-paired spectra (one ``irfft`` for the block).

    ``fx``/``fy`` are aligned (pairs, size // 2 + 1) spectra; ``denom``
    carries the pairwise energy normalizers (0 energy -> all-zero NCC,
    matching the reference's zero-energy convention).
    """
    cc = np.fft.irfft(fx * np.conj(fy), size, axis=1)
    if n > 1:
        cc = np.concatenate([cc[:, -(n - 1):], cc[:, :n]], axis=1)
    else:
        cc = cc[:, :1]
    safe = np.where(denom > 1e-300, denom, 1.0)
    cc /= safe[:, None]
    cc[denom <= 1e-300] = 0.0
    return cc


def sbd_pairs(x_rows: np.ndarray,
              y_rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """SBD and maximizing shift for every ``(x_rows[i], y_rows[j])``.

    Returns ``(distances, shifts)``, each of shape ``(nx, ny)`` --
    the batched equivalent of calling :func:`sbd_with_shift` on every
    cross pair (agreeing to ~1e-16; see the module docstring) with one
    ``rfft`` per input matrix and one ``irfft`` per pair chunk.
    """
    x = _as_rows(x_rows)
    y = _as_rows(y_rows)
    if x.shape[1] != y.shape[1]:
        raise ValueError(
            f"series lengths differ: {x.shape[1]} vs {y.shape[1]}; "
            f"align them first"
        )
    n = x.shape[1]
    nx, ny = x.shape[0], y.shape[0]
    if not _BATCHED:
        out_d = np.zeros((nx, ny))
        out_s = np.zeros((nx, ny), dtype=int)
        for i in range(nx):
            for j in range(ny):
                out_d[i, j], out_s[i, j] = sbd_with_shift(x[i], y[j])
        return out_d, out_s

    size = _next_pow_two(2 * n - 1)
    fx = np.fft.rfft(x, size, axis=1)
    fy = np.fft.rfft(y, size, axis=1)
    denom = np.sqrt(np.outer(_row_energies(x), _row_energies(y)))

    distances = np.empty((nx, ny))
    shifts = np.empty((nx, ny), dtype=int)
    pair_i, pair_j = np.divmod(np.arange(nx * ny), ny)
    for lo in range(0, nx * ny, _PAIR_CHUNK):
        sel_i = pair_i[lo:lo + _PAIR_CHUNK]
        sel_j = pair_j[lo:lo + _PAIR_CHUNK]
        ncc = _ncc_block(fx[sel_i], fy[sel_j], size, n,
                         denom[sel_i, sel_j])
        idx = np.argmax(ncc, axis=1)
        best = np.clip(1.0 - ncc[np.arange(ncc.shape[0]), idx], 0.0, 2.0)
        distances[sel_i, sel_j] = best
        shifts[sel_i, sel_j] = idx - (n - 1)
    return distances, shifts


def sbd_matrix(series: np.ndarray) -> np.ndarray:
    """Pairwise SBD matrix of the input rows (symmetric, zero diagonal).

    Batched: the upper triangle is computed with one ``rfft`` over the
    whole matrix and one ``irfft`` per pair chunk, then mirrored --
    agreeing with the per-pair double loop it replaces to ~1e-16 (see
    the module docstring).
    """
    data = _as_rows(series)
    n_rows = data.shape[0]
    out = np.zeros((n_rows, n_rows))
    if n_rows < 2:
        return out
    if not _BATCHED:
        for i in range(n_rows):
            for j in range(i + 1, n_rows):
                d = sbd(data[i], data[j])
                out[i, j] = d
                out[j, i] = d
        return out

    n = data.shape[1]
    size = _next_pow_two(2 * n - 1)
    spectra = np.fft.rfft(data, size, axis=1)
    energies = _row_energies(data)
    tri_i, tri_j = np.triu_indices(n_rows, k=1)
    for lo in range(0, tri_i.size, _PAIR_CHUNK):
        sel_i = tri_i[lo:lo + _PAIR_CHUNK]
        sel_j = tri_j[lo:lo + _PAIR_CHUNK]
        denom = np.sqrt(energies[sel_i] * energies[sel_j])
        ncc = _ncc_block(spectra[sel_i], spectra[sel_j], size, n, denom)
        best = np.clip(1.0 - ncc.max(axis=1), 0.0, 2.0)
        out[sel_i, sel_j] = best
        out[sel_j, sel_i] = best
    return out
