"""Normalized cross-correlation and the shape-based distance (SBD).

The k-Shape clustering algorithm (Paparrizos & Gravano, SIGMOD 2015,
adopted by Sieve in Section 3.2) measures time-series similarity with

    SBD(x, y) = 1 - max_w NCC_w(x, y)

where ``NCC`` is the cross-correlation normalized by the geometric mean
of the two series' autocorrelations at lag zero, and ``w`` ranges over
all alignments of ``x`` slid over ``y``.  Because the maximization runs
over shifts, SBD recognizes two series that have the same shape but are
displaced in time -- exactly the situation of metrics in communicating
microservices, where effects propagate with network/processing delay.

Cross-correlation is computed with FFTs (O(n log n)), as in the k-Shape
paper.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cross_correlation_sequence",
    "normalized_cross_correlation",
    "sbd",
    "sbd_with_shift",
]


def _next_pow_two(n: int) -> int:
    return 1 << (int(n) - 1).bit_length()


def cross_correlation_sequence(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Full cross-correlation ``CC_w(x, y)`` for all shifts via FFT.

    Returns an array of length ``2n - 1`` where index ``n - 1`` is the
    zero-shift correlation, lower indices shift ``x`` left of ``y`` and
    higher indices shift it right.  Both inputs must share a length.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.ndim != 1 or ya.ndim != 1:
        raise ValueError("cross-correlation expects 1-D inputs")
    if xa.size != ya.size:
        raise ValueError(
            f"series lengths differ: {xa.size} vs {ya.size}; align them first"
        )
    n = xa.size
    if n == 0:
        raise ValueError("cannot correlate empty series")
    size = _next_pow_two(2 * n - 1)
    fx = np.fft.rfft(xa, size)
    fy = np.fft.rfft(ya, size)
    cc = np.fft.irfft(fx * np.conj(fy), size)
    # Rearrange so index 0 is shift -(n-1) and index 2n-2 is shift n-1.
    return np.concatenate([cc[-(n - 1):], cc[:n]]) if n > 1 else cc[:1]


def normalized_cross_correlation(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """NCC_w(x, y) for every shift w (the "NCCc" coefficient of k-Shape).

    Normalizes by ``sqrt((x . x) * (y . y))``, the geometric mean of the
    two lag-zero autocorrelations.  If either series has zero energy the
    correlation is defined as all zeros (two flat series are maximally
    distant in shape space unless both are compared by value elsewhere).
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    cc = cross_correlation_sequence(xa, ya)
    denom = np.sqrt(float(xa @ xa) * float(ya @ ya))
    if denom <= 1e-300:
        return np.zeros_like(cc)
    return cc / denom


def sbd_with_shift(x: np.ndarray, y: np.ndarray) -> tuple[float, int]:
    """Shape-based distance and the maximizing shift.

    Returns ``(distance, shift)`` where ``distance = 1 - max_w NCC_w``
    lies in ``[0, 2]`` and ``shift`` is the displacement of ``x``
    relative to ``y`` at the maximum (positive: ``x`` lags ``y``).
    """
    ncc = normalized_cross_correlation(x, y)
    idx = int(np.argmax(ncc))
    n = (ncc.size + 1) // 2
    distance = 1.0 - float(ncc[idx])
    # Guard against floating-point excursions just outside [0, 2].
    distance = min(max(distance, 0.0), 2.0)
    return distance, idx - (n - 1)


def sbd(x: np.ndarray, y: np.ndarray) -> float:
    """Shape-based distance ``1 - max_w NCC_w(x, y)`` in ``[0, 2]``."""
    return sbd_with_shift(x, y)[0]
