"""Gap reconstruction and resampling for monitored metric time series.

During the load phase, timeouts and lost packets leave gaps in the
collected series, and different collectors sample at different instants.
Sieve (Section 3.2) reconstructs missing data with *cubic spline*
interpolation -- smoother than linear interpolation or carrying previous
values forward -- and discretizes every series onto a common 500 ms grid
(finer than the 2 s grid of the original k-Shape paper, to improve
alignment accuracy).
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import CubicSpline

#: Sieve's metric discretization interval, in seconds (paper Section 3.2).
DEFAULT_GRID_INTERVAL = 0.5


def spline_fill(
    timestamps: np.ndarray,
    values: np.ndarray,
    query_times: np.ndarray,
) -> np.ndarray:
    """Evaluate a cubic spline through ``(timestamps, values)`` at ``query_times``.

    Degenerate inputs degrade gracefully: fewer than two observations
    yield a constant series, and two or three observations fall back to
    linear interpolation (a cubic spline needs at least four points for
    its standard boundary conditions to be meaningful).

    Query times outside the observed range are clamped to the boundary
    values rather than extrapolated -- extrapolated cubics diverge
    quickly and would distort z-normalization.
    """
    ts = np.asarray(timestamps, dtype=float)
    vs = np.asarray(values, dtype=float)
    qs = np.asarray(query_times, dtype=float)
    if ts.shape != vs.shape or ts.ndim != 1:
        raise ValueError("timestamps and values must be equal-length 1-D arrays")
    if ts.size == 0:
        raise ValueError("cannot interpolate an empty series")
    order = np.argsort(ts)
    ts, vs = ts[order], vs[order]
    ts, unique_idx = np.unique(ts, return_index=True)
    vs = vs[unique_idx]

    if ts.size == 1:
        return np.full(qs.shape, vs[0])
    clamped = np.clip(qs, ts[0], ts[-1])
    if ts.size < 4:
        return np.interp(clamped, ts, vs)
    spline = CubicSpline(ts, vs)
    return spline(clamped)


def resample_to_grid(
    timestamps: np.ndarray,
    values: np.ndarray,
    interval: float = DEFAULT_GRID_INTERVAL,
    start: float | None = None,
    end: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Resample an irregular series onto an equidistant grid.

    Returns ``(grid_times, grid_values)``.  The grid spans
    ``[start, end]`` (defaulting to the observed range) with spacing
    ``interval``; values come from :func:`spline_fill`.
    """
    ts = np.asarray(timestamps, dtype=float)
    if ts.size == 0:
        raise ValueError("cannot resample an empty series")
    if interval <= 0:
        raise ValueError("interval must be positive")
    lo = ts.min() if start is None else float(start)
    hi = ts.max() if end is None else float(end)
    if hi < lo:
        raise ValueError(f"grid end {hi} precedes start {lo}")
    n_steps = int(np.floor((hi - lo) / interval)) + 1
    grid = lo + interval * np.arange(n_steps)
    return grid, spline_fill(ts, values, grid)


def align_series(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    interval: float = DEFAULT_GRID_INTERVAL,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Resample many ``name -> (timestamps, values)`` series onto one grid.

    The common grid spans the intersection of the observed ranges, so no
    series is extrapolated.  Returns ``(grid, {name: values})``.
    """
    if not series:
        raise ValueError("no series to align")
    starts, ends = [], []
    for name, (ts, _vs) in series.items():
        ts = np.asarray(ts, dtype=float)
        if ts.size == 0:
            raise ValueError(f"series {name!r} is empty")
        starts.append(ts.min())
        ends.append(ts.max())
    lo, hi = max(starts), min(ends)
    if hi < lo:
        raise ValueError("series do not overlap in time; cannot align")
    n_steps = int(np.floor((hi - lo) / interval)) + 1
    grid = lo + interval * np.arange(n_steps)
    aligned = {
        name: spline_fill(np.asarray(ts, float), np.asarray(vs, float), grid)
        for name, (ts, vs) in series.items()
    }
    return grid, aligned
