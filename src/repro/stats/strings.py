"""Jaro and Jaro-Winkler string similarity.

Sieve seeds k-Shape with clusters built from *metric-name similarity*
(paper Section 3.2): developers name related metrics consistently
("cpu_usage", "cpu_usage_percentile"), so grouping by Jaro distance
(Jaro 1989) gives an initial assignment that converges in fewer
iterations than random initialization.  Jaro-Winkler boosts the score of
strings sharing a prefix, which matches the naming conventions of
exported metrics particularly well.
"""

from __future__ import annotations

__all__ = ["jaro", "jaro_distance", "jaro_winkler"]


def jaro(s1: str, s2: str) -> float:
    """Jaro similarity in ``[0, 1]`` (1 means identical)."""
    if s1 == s2:
        return 1.0
    len1, len2 = len(s1), len(s2)
    if len1 == 0 or len2 == 0:
        return 0.0

    match_window = max(len1, len2) // 2 - 1
    match_window = max(match_window, 0)

    s1_matched = [False] * len1
    s2_matched = [False] * len2
    matches = 0
    for i, ch in enumerate(s1):
        lo = max(0, i - match_window)
        hi = min(len2, i + match_window + 1)
        for j in range(lo, hi):
            if s2_matched[j] or s2[j] != ch:
                continue
            s1_matched[i] = True
            s2_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    # Count transpositions between the matched subsequences.
    s2_indices = [j for j in range(len2) if s2_matched[j]]
    transpositions = 0
    k = 0
    for i in range(len1):
        if not s1_matched[i]:
            continue
        if s1[i] != s2[s2_indices[k]]:
            transpositions += 1
        k += 1
    transpositions //= 2

    m = float(matches)
    return (m / len1 + m / len2 + (m - transpositions) / m) / 3.0


def jaro_distance(s1: str, s2: str) -> float:
    """Jaro *distance* ``1 - jaro(s1, s2)`` in ``[0, 1]``."""
    return 1.0 - jaro(s1, s2)


def jaro_winkler(s1: str, s2: str, prefix_weight: float = 0.1,
                 max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity: Jaro with a common-prefix bonus.

    ``prefix_weight`` must not exceed 0.25 or the score could leave
    ``[0, 1]``.
    """
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError("prefix_weight must lie in [0, 0.25]")
    base = jaro(s1, s2)
    prefix = 0
    for c1, c2 in zip(s1[:max_prefix], s2[:max_prefix]):
        if c1 != c2:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)
