"""Elementary time-series transformations used across the Sieve pipeline.

These are the array-level primitives behind Sieve's metric-reduction step
(Section 3.2 of the paper): z-normalization before shape-based clustering,
variance filtering of unvarying metrics, and first differencing of
non-stationary series before Granger testing (Section 3.3).
"""

from __future__ import annotations

import numpy as np

#: Variance threshold below which Sieve discards a metric as "unvarying"
#: (paper Section 3.2: ``var <= 0.002``).
DEFAULT_VARIANCE_THRESHOLD = 0.002


def znormalize(values: np.ndarray, epsilon: float = 1e-12) -> np.ndarray:
    """Return the z-normalized copy of ``values``.

    k-Shape requires amplitude-invariant input, which the paper obtains
    via ``z = (x - mu) / sigma``.  A constant series has ``sigma == 0``;
    we map it to all zeros rather than dividing by zero, which keeps the
    SBD of two constant series at its minimum.

    Parameters
    ----------
    values:
        One-dimensional array of observations.
    epsilon:
        Standard deviations below this are treated as zero.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D series, got shape {arr.shape}")
    mu = arr.mean()
    sigma = arr.std()
    # The epsilon is relative to the magnitude of the data: a constant
    # series of large values has a tiny-but-nonzero floating-point std
    # that must not be divided through.
    if sigma <= epsilon * max(1.0, abs(mu)):
        return np.zeros_like(arr)
    return (arr - mu) / sigma


def first_difference(values: np.ndarray) -> np.ndarray:
    """Return the first difference ``x[t] - x[t-1]`` of a series.

    Sieve applies this to series the ADF test flags as non-stationary
    (e.g. monotonically increasing CPU / network counters) before using
    them in Granger causality tests.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D series, got shape {arr.shape}")
    if arr.size < 2:
        raise ValueError("need at least two observations to difference")
    return np.diff(arr)


def variance_filter_mask(
    matrix: np.ndarray, threshold: float = DEFAULT_VARIANCE_THRESHOLD
) -> np.ndarray:
    """Boolean mask of rows of ``matrix`` whose variance exceeds ``threshold``.

    ``matrix`` holds one metric time series per row.  Rows with variance
    at or below the threshold carry no information about the applied load
    and are dropped before clustering (paper Section 3.2).
    """
    mat = np.atleast_2d(np.asarray(matrix, dtype=float))
    return mat.var(axis=1) > threshold


def lag_matrix(values: np.ndarray, lags: int) -> np.ndarray:
    """Build the lagged design matrix used by the Granger OLS models.

    Returns an array of shape ``(n - lags, lags)`` whose column ``j``
    holds ``values[lags - 1 - j : n - 1 - j]``, i.e. column 0 is the
    series lagged by one step, column 1 by two steps, and so on.  The
    target vector aligned with this matrix is ``values[lags:]``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D series, got shape {arr.shape}")
    if lags < 1:
        raise ValueError("lags must be >= 1")
    n = arr.size
    if n <= lags:
        raise ValueError(f"series of length {n} too short for {lags} lags")
    columns = [arr[lags - 1 - j : n - 1 - j] for j in range(lags)]
    return np.column_stack(columns)


def has_constant_trend(values: np.ndarray, tolerance: float = 1e-12) -> bool:
    """True when the series never deviates from its first observation."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return True
    return bool(np.all(np.abs(arr - arr[0]) <= tolerance))
