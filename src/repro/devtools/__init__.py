"""Developer tooling that ships with the package.

``repro.devtools`` holds code that checks or manipulates *this
repository itself* rather than metric streams: currently the
:mod:`repro.devtools.lint` static analyzer behind ``repro lint``.
Nothing here is imported by the runtime pipeline, so the analysis
paths stay free of tooling dependencies.
"""

from __future__ import annotations
