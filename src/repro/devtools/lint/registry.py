"""The lint-rule registry: one more string-keyed factory table.

Rules plug in exactly like storage backends or executors do in
:mod:`repro.api.registry` -- the same :class:`~repro.api.registry
.Registry` mechanism, keyed by rule id::

    from repro.devtools.lint import Rule, register_rule

    @register_rule
    class NoEval(Rule):
        id = "RL900"
        name = "no-eval"
        description = "eval() is banned in library code"

        def check_file(self, ctx, config, project):
            ...yield Finding(...)

A registered rule immediately works everywhere ids are accepted:
``repro lint --rules``, suppression comments, baselines and the JSON
report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Type

from repro.api.registry import Registry
from repro.devtools.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.lint.config import LintConfig
    from repro.devtools.lint.context import FileContext, ProjectContext


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set ``id``/``name``/``description`` and implement
    ``check_file`` (per-file findings) and/or ``finalize`` (findings
    that need the whole project, e.g. lock-order cycles).
    """

    id: str = ""
    name: str = ""
    description: str = ""

    def check_file(self, ctx: "FileContext", config: "LintConfig",
                   project: "ProjectContext") -> Iterable[Finding]:
        """Findings local to one file (default: none).

        ``project`` is the run-wide accumulator: per-file passes that
        feed a ``finalize`` phase (e.g. the lock graph) record their
        cross-file facts on it.
        """
        return ()

    def finalize(self, project: "ProjectContext",
                 config: "LintConfig") -> Iterable[Finding]:
        """Findings that need every file seen first (default: none)."""
        return ()


#: All lint rules, keyed by rule id (``RL001`` ...).
RULES = Registry("lint rule")


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering ``cls`` under ``cls.id``."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} must set a non-empty id")
    RULES.register(cls.id, cls)
    return cls


def all_rules() -> Iterator[Type[Rule]]:
    """Every registered rule class, in id order."""
    # Importing the built-in rule modules registers them on first use.
    import repro.devtools.lint.rules  # noqa: F401

    for rule_id in RULES.names():
        yield RULES.get(rule_id)
