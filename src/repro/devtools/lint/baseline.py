"""Committed-baseline mechanism for legacy findings.

A baseline is a JSON file mapping finding fingerprints to a short
human-readable record.  Findings whose fingerprint appears in the
baseline are reported as *baselined* (informational) instead of
failing the run, so a new rule can land with its legacy debt recorded
while the zero-new-findings CI gate still blocks regressions.

Fingerprints hash ``rule | path | symbol | message`` (no line
numbers), so unrelated edits that move a legacy finding around a file
do not invalidate the baseline; fixing the finding *does* (the entry
then shows up as stale and ``--write-baseline`` prunes it).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint.findings import Finding

#: Baseline file format version (bumped on incompatible change).
BASELINE_VERSION = 1

#: Default baseline filename looked up next to the linted tree.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass
class Baseline:
    """The set of accepted legacy findings."""

    entries: dict[str, dict] = field(default_factory=dict)
    path: Path | None = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (a missing file is an empty baseline)."""
        if not path.exists():
            return cls(path=path)
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or "findings" not in data:
            raise ValueError(
                f"{path}: not a lint baseline (missing 'findings' key)")
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})")
        entries = {
            entry["fingerprint"]: entry
            for entry in data["findings"]
        }
        return cls(entries=entries, path=path)

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      path: Path | None = None) -> "Baseline":
        entries = {}
        for finding in sorted(findings):
            entries[finding.fingerprint()] = {
                "fingerprint": finding.fingerprint(),
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "message": finding.message,
            }
        return cls(entries=entries, path=path)

    def save(self, path: Path | None = None) -> Path:
        target = path or self.path
        if target is None:
            raise ValueError("baseline has no path to save to")
        payload = {
            "version": BASELINE_VERSION,
            "findings": [self.entries[key] for key in sorted(self.entries)],
        }
        target.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
        return target

    # -- matching --------------------------------------------------------

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def stale_entries(self, findings: list[Finding]) -> list[dict]:
        """Baseline entries no current finding matches (fixed debt)."""
        live = {finding.fingerprint() for finding in findings}
        return [
            self.entries[key] for key in sorted(self.entries)
            if key not in live
        ]
