"""``repro lint``: the repo-invariant static analyzer.

An AST-based rule engine that checks *this system's* hard-won
invariants -- lock discipline, analysis-path determinism,
everything-through-the-registries wiring, frozen specs -- rather than
generic style.  Rules live in a string-keyed registry (the same
:class:`~repro.api.registry.Registry` mechanism the pipeline uses),
findings can be suppressed per line (``# repro-lint: disable=RL001``)
or accepted wholesale in a committed baseline, and the ``repro lint``
CLI gates CI on zero new findings.

Public surface::

    from repro.devtools.lint import Linter, LintConfig, lint_paths

    result = lint_paths(["src/repro"])
    assert result.ok, result.active
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.devtools.lint.config import DEFAULT_CONFIG, LintConfig
from repro.devtools.lint.context import FileContext, ProjectContext
from repro.devtools.lint.engine import (
    Linter,
    LintResult,
    apply_fixes,
    discover_files,
)
from repro.devtools.lint.findings import Finding, TextFix
from repro.devtools.lint.registry import RULES, Rule, all_rules, register_rule
from repro.devtools.lint.report import (
    render_json,
    render_rule_list,
    render_text,
)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CONFIG",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "Linter",
    "ProjectContext",
    "RULES",
    "Rule",
    "TextFix",
    "all_rules",
    "apply_fixes",
    "discover_files",
    "lint_paths",
    "register_rule",
    "render_json",
    "render_rule_list",
    "render_text",
]


def lint_paths(paths: Sequence[str | Path],
               *,
               config: LintConfig | None = None,
               rules: Iterable[str] | None = None,
               baseline: Baseline | None = None) -> LintResult:
    """Run the analyzer over ``paths`` and return the result."""
    linter = Linter(config=config, rules=rules, baseline=baseline)
    return linter.run(paths)
