"""Small AST helpers shared by the built-in rules."""

from __future__ import annotations

import ast
from typing import Iterator

#: ``threading`` constructors that create a lock-like object.
LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
})


class ImportMap:
    """Resolves local names back to canonical dotted import paths.

    ``import numpy as np`` makes ``np.random.rand`` resolve to
    ``numpy.random.rand``; ``from random import shuffle as mix`` makes
    ``mix`` resolve to ``random.shuffle``.  Unimported bare names
    resolve to ``None`` so a local helper called ``time()`` can never
    masquerade as :func:`time.time`.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    canonical = alias.name if alias.asname else local
                    self._aliases[local] = canonical
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of an expression, if import-rooted."""
        parts: list[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        root = self._aliases.get(cursor.id)
        if root is None:
            if not parts:
                return None
            # `foo.bar` with an unimported root still names a chain a
            # rule may recognize (e.g. a module-global alias).
            root = cursor.id
        parts.append(root)
        return ".".join(reversed(parts))


def self_attr(node: ast.expr) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``, else None."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def call_name(node: ast.Call) -> str | None:
    """The rightmost name of a call target (``Foo`` for ``x.y.Foo()``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def class_methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child  # type: ignore[misc]


def lock_attributes(classdef: ast.ClassDef, imports: ImportMap) -> set[str]:
    """Attributes assigned a ``threading`` lock anywhere in the class."""
    locks: set[str] = set()
    for node in ast.walk(classdef):
        if not isinstance(node, ast.Assign) \
                or not isinstance(node.value, ast.Call):
            continue
        resolved = imports.resolve(node.value.func)
        if resolved not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = self_attr(target)
            if attr is not None:
                locks.add(attr)
    return locks


def acquired_locks(with_node: ast.With | ast.AsyncWith,
                   lock_names: set[str]) -> list[str]:
    """Locks of ``lock_names`` this ``with`` statement acquires."""
    taken = []
    for item in with_node.items:
        attr = self_attr(item.context_expr)
        if attr is not None and attr in lock_names:
            taken.append(attr)
    return taken


def walk_with_locks(
    node: ast.AST,
    lock_names: set[str],
    held: tuple[str, ...] = (),
) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
    """Yield ``(node, held_locks)`` for every node under ``node``.

    ``with self.<lock>`` pushes onto the held stack for its body (the
    ``with`` items themselves are visited with the *outer* set: the
    acquisition is what happens under the outer locks).  Nested
    function definitions reset the stack -- their bodies run later,
    usually on another thread -- but are still traversed.
    """
    yield node, held
    if isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            yield from walk_with_locks(item.context_expr, lock_names, held)
            if item.optional_vars is not None:
                yield from walk_with_locks(
                    item.optional_vars, lock_names, held)
        inner = held + tuple(acquired_locks(node, lock_names))
        for stmt in node.body:
            yield from walk_with_locks(stmt, lock_names, inner)
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.Lambda)):
        for child in ast.iter_child_nodes(node):
            yield from walk_with_locks(child, lock_names, ())
    else:
        for child in ast.iter_child_nodes(node):
            yield from walk_with_locks(child, lock_names, held)
