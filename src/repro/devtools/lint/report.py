"""Rendering lint results as text (humans) or JSON (CI artifacts)."""

from __future__ import annotations

import json

from repro.devtools.lint.engine import LintResult
from repro.devtools.lint.registry import all_rules


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """Compiler-style ``path:line:col: RULE message`` listing."""
    out: list[str] = []
    for finding in result.active:
        out.append(
            f"{finding.location()}: {finding.rule} {finding.message}")
    if verbose:
        for finding in result.baselined:
            out.append(
                f"{finding.location()}: {finding.rule} "
                f"[baselined] {finding.message}")
    for entry in result.stale_baseline:
        out.append(
            f"{entry['path']}: {entry['rule']} [stale baseline] "
            f"entry no longer matches any finding -- prune it with "
            f"--write-baseline: {entry['message']}")
    summary = (
        f"checked {result.files_checked} files: "
        f"{len(result.active)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed"
    )
    out.append(summary if result.ok and not result.stale_baseline
               else summary + " -- FAIL" if result.active else summary)
    return "\n".join(out)


def render_json(result: LintResult) -> str:
    return json.dumps(result.to_dict(), indent=2) + "\n"


def render_rule_list() -> str:
    """``repro lint --list-rules`` output."""
    out = []
    for cls in all_rules():
        out.append(f"{cls.id}  {cls.name}")
        out.append(f"       {cls.description}")
    return "\n".join(out)
