"""Suppression hygiene: disable comments must earn their keep.

A ``# repro-lint: disable=RULE`` that suppresses nothing is debt with
the paperwork still attached -- either the violation was fixed (drop
the comment) or the rule id is wrong (the real violation is live
elsewhere).  This rule runs last, after every other rule recorded
which suppressions actually fired.
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.context import ProjectContext
from repro.devtools.lint.findings import Finding, TextFix
from repro.devtools.lint.registry import RULES, Rule, register_rule


@register_rule
class UnusedSuppressionRule(Rule):
    """RL000: every disable comment suppresses something."""

    id = "RL000"
    name = "unused-suppression"
    description = (
        "a '# repro-lint: disable=...' comment that no longer "
        "suppresses any finding (or names an unknown rule) must be "
        "removed"
    )

    #: Runs after every other finalize pass (the engine sorts on this).
    priority = 100

    def finalize(self, project: ProjectContext,
                 config: LintConfig) -> Iterable[Finding]:
        hits = project.suppression_hits
        for ctx in project.files:
            for suppression in ctx.suppressions.values():
                dead: list[str] = []
                unknown: list[str] = []
                for rule_id in suppression.rules:
                    if rule_id == "all":
                        if not any(hit[0] == ctx.path
                                   and hit[1] == suppression.line
                                   for hit in hits):
                            dead.append(rule_id)
                        continue
                    if rule_id not in RULES:
                        unknown.append(rule_id)
                        continue
                    if rule_id not in project.selected_rules:
                        continue  # not run: cannot judge
                    if (ctx.path, suppression.line, rule_id) not in hits:
                        dead.append(rule_id)
                if not dead and not unknown:
                    continue
                judged = [rule_id for rule_id in suppression.rules
                          if rule_id == "all"
                          or rule_id not in RULES
                          or rule_id in project.selected_rules]
                fix = None
                if set(dead) | set(unknown) >= set(judged) \
                        and set(judged) == set(suppression.rules):
                    # The whole comment is dead: safe to remove.
                    fix = TextFix(suppression.line, suppression.comment, "")
                parts = []
                if dead:
                    parts.append(
                        f"suppresses nothing for {', '.join(dead)}")
                if unknown:
                    parts.append(
                        f"names unknown rule(s) {', '.join(unknown)}")
                yield Finding(
                    path=ctx.path, line=suppression.line, col=0,
                    rule=self.id,
                    symbol=ctx.symbol_at(suppression.line),
                    message=f"suppression comment {'; '.join(parts)}",
                    fix=fix,
                )
