"""Built-in lint rules (importing this package registers them)."""

from __future__ import annotations

from repro.devtools.lint.rules import (  # noqa: F401
    architecture,
    determinism,
    hygiene,
    locks,
)
