"""Architecture rules: registry wiring, frozen specs, output edges.

The ROADMAP north star is everything-through-the-registries: policy
objects (backends, executors, writers) are named by strings and built
by :mod:`repro.api.registry` factories, specs are immutable value
objects, and user-facing output happens at the CLI edge only.  These
rules make those conventions machine-checked instead of review-time
folklore.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.astutil import call_name
from repro.devtools.lint.config import LintConfig, path_matches
from repro.devtools.lint.context import FileContext, ProjectContext
from repro.devtools.lint.findings import Finding, TextFix
from repro.devtools.lint.registry import Rule, register_rule


@register_rule
class RegistryOnlyRule(Rule):
    """RL020: policy classes are constructed via the registries."""

    id = "RL020"
    name = "registry-only"
    description = (
        "backends/executors/writers must be built through "
        "repro.api.registry factories (or a factory in their defining "
        "module), never constructed ad hoc at call sites"
    )

    def check_file(self, ctx: FileContext, config: LintConfig,
                   project: ProjectContext) -> Iterable[Finding]:
        if ctx.path.startswith("tests/") or "/tests/" in ctx.path:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name not in config.registry_only:
                continue
            allowed = config.registry_only[name] + config.registry_modules
            if path_matches(ctx.path, allowed):
                continue
            yield Finding(
                path=ctx.path, line=node.lineno, col=node.col_offset,
                rule=self.id, symbol=ctx.symbol_at(node.lineno),
                message=(
                    f"direct construction of {name}(...): resolve it "
                    f"through repro.api.registry so named "
                    f"configuration and third-party plugins keep "
                    f"working"
                ),
            )


@register_rule
class FrozenSpecRule(Rule):
    """RL021: every ``*Spec`` dataclass is immutable."""

    id = "RL021"
    name = "frozen-spec"
    description = (
        "*Spec dataclasses are declarative value objects embedded in "
        "checkpoints and serialized specs; they must be "
        "@dataclass(frozen=True)"
    )

    def check_file(self, ctx: FileContext, config: LintConfig,
                   project: ProjectContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) \
                    or not node.name.endswith("Spec"):
                continue
            for decorator in node.decorator_list:
                finding = self._check_decorator(decorator, node, ctx)
                if finding is not None:
                    yield finding

    def _check_decorator(self, decorator: ast.expr, node: ast.ClassDef,
                         ctx: FileContext) -> Finding | None:
        is_bare = isinstance(decorator, ast.Name) \
            and decorator.id == "dataclass"
        is_call = isinstance(decorator, ast.Call) \
            and call_name(decorator) == "dataclass"
        if not is_bare and not is_call:
            return None
        fix = None
        if is_bare:
            fix = TextFix(decorator.lineno, "@dataclass",
                          "@dataclass(frozen=True)")
        else:
            assert isinstance(decorator, ast.Call)
            frozen = None
            for keyword in decorator.keywords:
                if keyword.arg == "frozen":
                    frozen = keyword
            if frozen is not None:
                if isinstance(frozen.value, ast.Constant) \
                        and frozen.value.value is True:
                    return None
                fix = TextFix(decorator.lineno, "frozen=False",
                              "frozen=True")
            else:
                fix = TextFix(decorator.lineno, "@dataclass(",
                              "@dataclass(frozen=True, ")
        return Finding(
            path=ctx.path, line=node.lineno, col=node.col_offset,
            rule=self.id, symbol=node.name,
            message=(
                f"spec dataclass {node.name} is not frozen: specs are "
                f"value objects (checkpointed, hashed, shared across "
                f"threads) and must be @dataclass(frozen=True)"
            ),
            fix=fix,
        )


@register_rule
class NoPrintRule(Rule):
    """RL022: user-facing output only at the CLI/report edge."""

    id = "RL022"
    name = "no-print"
    description = (
        "library modules may not print(); route output through the "
        "CLI or reporting layer (or a logger) so services and tests "
        "stay silent"
    )

    def check_file(self, ctx: FileContext, config: LintConfig,
                   project: ProjectContext) -> Iterable[Finding]:
        if path_matches(ctx.path, config.print_allowed):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "print":
                yield Finding(
                    path=ctx.path, line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    symbol=ctx.symbol_at(node.lineno),
                    message="print() in library code",
                )
