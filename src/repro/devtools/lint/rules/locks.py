"""Lock-discipline rules: guarded-by, blocking-under-lock, lock order.

These encode the concurrency contracts the service and writer tests
pin down dynamically -- here they become structural: a field annotated
``# guarded-by: <lock>`` may only be touched under ``with
self.<lock>``, nothing that can block the world may run while any
lock is held, and the static lock-acquisition graph must stay acyclic.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.lint.astutil import (
    ImportMap,
    class_methods,
    lock_attributes,
    self_attr,
    walk_with_locks,
)
from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.context import FileContext, ProjectContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register_rule


def _guarded_fields(classdef: ast.ClassDef,
                    ctx: FileContext) -> dict[str, str]:
    """``{attr: lock}`` for every ``# guarded-by:`` annotated field."""
    guarded: dict[str, str] = {}
    for node in ast.walk(classdef):
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        else:
            continue
        lock = ctx.guarded_comment(node.lineno)
        if lock is None:
            continue
        for target in targets:
            attr = self_attr(target)
            if attr is not None:
                guarded[attr] = lock
    return guarded


@register_rule
class GuardedByRule(Rule):
    """RL001: annotated fields only under their lock."""

    id = "RL001"
    name = "guarded-by"
    description = (
        "an attribute annotated '# guarded-by: <lock>' may only be "
        "read or written inside 'with self.<lock>:' (construction in "
        "__init__ is exempt)"
    )

    def check_file(self, ctx: FileContext, config: LintConfig,
                   project: ProjectContext) -> Iterable[Finding]:
        for classdef in ast.walk(ctx.tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            guarded = _guarded_fields(classdef, ctx)
            if not guarded:
                continue
            locks = set(guarded.values())
            for method in class_methods(classdef):
                if method.name == "__init__":
                    continue
                for node, held in walk_with_locks(method, locks):
                    if not isinstance(node, ast.Attribute):
                        continue
                    attr = self_attr(node)
                    if attr is None or attr not in guarded:
                        continue
                    lock = guarded[attr]
                    if lock in held:
                        continue
                    yield Finding(
                        path=ctx.path, line=node.lineno,
                        col=node.col_offset, rule=self.id,
                        symbol=ctx.symbol_at(node.lineno),
                        message=(
                            f"'self.{attr}' is guarded by "
                            f"'self.{lock}' but is touched without "
                            f"holding it"
                        ),
                    )


@register_rule
class NoBlockingUnderLockRule(Rule):
    """RL002: nothing that can stall runs while a lock is held."""

    id = "RL002"
    name = "no-blocking-under-lock"
    description = (
        "sleeping, socket construction, subprocesses or HTTP calls "
        "while holding a lock stalls every thread queued on it"
    )

    def check_file(self, ctx: FileContext, config: LintConfig,
                   project: ProjectContext) -> Iterable[Finding]:
        imports = ImportMap(ctx.tree)
        banned = frozenset(config.blocking_calls)
        for classdef in ast.walk(ctx.tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            locks = lock_attributes(classdef, imports)
            if not locks:
                continue
            for method in class_methods(classdef):
                for node, held in walk_with_locks(method, locks):
                    if not held or not isinstance(node, ast.Call):
                        continue
                    resolved = imports.resolve(node.func)
                    if resolved not in banned:
                        continue
                    yield Finding(
                        path=ctx.path, line=node.lineno,
                        col=node.col_offset, rule=self.id,
                        symbol=ctx.symbol_at(node.lineno),
                        message=(
                            f"'{resolved}' called while holding "
                            f"'self.{held[-1]}'"
                        ),
                    )


def _method_lock_summary(
    classdef: ast.ClassDef, locks: set[str]
) -> tuple[dict[str, set[str]], list[tuple[str, str, int]],
           list[tuple[str, str, int]]]:
    """Per-class lock facts for the order analysis.

    Returns ``(direct_acquires_per_method, lexical_edges,
    held_calls)`` where lexical edges are ``(held, acquired, line)``
    and held calls are ``(held, called_method, line)``.
    """
    direct: dict[str, set[str]] = {}
    edges: list[tuple[str, str, int]] = []
    held_calls: list[tuple[str, str, int]] = []
    for method in class_methods(classdef):
        acquired_here: set[str] = set()
        for node, held in walk_with_locks(method, locks):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    attr = self_attr(item.context_expr)
                    if attr is None or attr not in locks:
                        continue
                    acquired_here.add(attr)
                    for held_lock in held:
                        if held_lock != attr:
                            edges.append((held_lock, attr, node.lineno))
            elif isinstance(node, ast.Call) and held:
                callee = self_attr(node.func)
                if callee is not None:
                    held_calls.append((held[-1], callee, node.lineno))
        direct[method.name] = acquired_here
    return direct, edges, held_calls


@register_rule
class LockOrderRule(Rule):
    """RL003: the static lock-acquisition graph has no cycles."""

    id = "RL003"
    name = "lock-order"
    description = (
        "taking lock B while holding lock A orders A before B; a "
        "cycle in that order across the codebase is a latent deadlock"
    )

    def check_file(self, ctx: FileContext, config: LintConfig,
                   project: ProjectContext) -> Iterable[Finding]:
        imports = ImportMap(ctx.tree)
        for classdef in ast.walk(ctx.tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            locks = lock_attributes(classdef, imports)
            if not locks:
                continue
            direct, edges, held_calls = _method_lock_summary(
                classdef, locks)
            # One-level-plus fixpoint: a method may acquire whatever
            # the same-class methods it calls acquire.
            calls: dict[str, set[str]] = {name: set() for name in direct}
            for method in class_methods(classdef):
                for node in ast.walk(method):
                    if isinstance(node, ast.Call):
                        callee = self_attr(node.func)
                        if callee in direct:
                            calls[method.name].add(callee)
            may_acquire = {name: set(found) for name, found in direct.items()}
            changed = True
            while changed:
                changed = False
                for name, callees in calls.items():
                    for callee in callees:
                        missing = may_acquire[callee] - may_acquire[name]
                        if missing:
                            may_acquire[name].update(missing)
                            changed = True
            qualify = f"{ctx.path}::{classdef.name}"
            for held, acquired, line in edges:
                project.add_lock_edge(
                    f"{qualify}.{held}", f"{qualify}.{acquired}",
                    ctx.path, line)
            for held, callee, line in held_calls:
                for acquired in may_acquire.get(callee, ()):
                    if acquired != held:
                        project.add_lock_edge(
                            f"{qualify}.{held}", f"{qualify}.{acquired}",
                            ctx.path, line)
        return ()

    def finalize(self, project: ProjectContext,
                 config: LintConfig) -> Iterable[Finding]:
        edges = dict(project.lock_edges)
        graph: dict[str, set[str]] = {}
        for held, acquired in edges:
            graph.setdefault(held, set()).add(acquired)
            graph.setdefault(acquired, set())
        seen_cycles: set[frozenset[str]] = set()
        for cycle in _cycles(graph):
            key = frozenset(cycle)
            if key in seen_cycles:
                continue
            seen_cycles.add(key)
            first_edge = (cycle[0], cycle[1 % len(cycle)])
            path, line = edges.get(first_edge, ("", 0))
            pretty = " -> ".join(
                node.split("::", 1)[-1] for node in cycle + [cycle[0]])
            yield Finding(
                path=path or cycle[0].split("::", 1)[0],
                line=line or 1, col=0, rule=self.id,
                symbol="",
                message=f"lock-order cycle: {pretty}",
            )


def _cycles(graph: dict[str, set[str]]) -> Iterator[list[str]]:
    """Elementary cycles via DFS back-edge detection (small graphs)."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack: list[str] = []

    def visit(node: str) -> Iterator[list[str]]:
        color[node] = GREY
        stack.append(node)
        for neighbor in sorted(graph[node]):
            if color[neighbor] == GREY:
                start = stack.index(neighbor)
                yield stack[start:]
            elif color[neighbor] == WHITE:
                yield from visit(neighbor)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            yield from visit(node)
