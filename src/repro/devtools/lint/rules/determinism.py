"""Determinism rules for the analysis core and the shm transport.

The repo's headline property is bit-identical windows across
serial/thread/process/shm executors and across crash/resume.  Every
wall-clock read, unseeded RNG draw, or set-iteration order leak in
the analysis path silently spends that guarantee; every pickle of an
array in the shm path silently spends the zero-copy one.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.astutil import ImportMap
from repro.devtools.lint.config import LintConfig, path_matches
from repro.devtools.lint.context import FileContext, ProjectContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register_rule

#: Wall-clock reads that leak run time into analysis results.
WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: ``random``-module members that take an explicit seed and are fine.
SEEDED_RANDOM = frozenset({"random.Random"})

#: Set-typed methods whose result is an unordered set.
SET_COMBINATORS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


@register_rule
class DeterminismRule(Rule):
    """RL010: no nondeterminism sources in the analysis path."""

    id = "RL010"
    name = "determinism"
    description = (
        "the analysis path may not read the wall clock, draw from an "
        "unseeded RNG, or iterate a set directly (order feeds results)"
    )

    def check_file(self, ctx: FileContext, config: LintConfig,
                   project: ProjectContext) -> Iterable[Finding]:
        if not path_matches(ctx.path, config.analysis_paths):
            return
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, ctx, imports, config)
            elif isinstance(node, ast.For):
                yield from self._check_iteration(node.iter, ctx, imports)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iteration(
                        generator.iter, ctx, imports)

    def _check_call(self, node: ast.Call, ctx: FileContext,
                    imports: ImportMap,
                    config: LintConfig) -> Iterable[Finding]:
        resolved = imports.resolve(node.func)
        if resolved is None:
            return
        message = None
        if resolved in WALL_CLOCK:
            message = (
                f"'{resolved}()' reads the wall clock in the analysis "
                f"path; results must be a pure function of the input "
                f"stream (use data time, or suppress for telemetry)"
            )
        elif resolved.startswith("random.") \
                and resolved not in SEEDED_RANDOM:
            message = (
                f"'{resolved}()' draws from the process-global RNG; "
                f"use a seeded random.Random(seed) instance"
            )
        elif resolved.startswith("numpy.random."):
            member = resolved.split(".", 2)[2].split(".")[0]
            if member not in config.seeded_numpy_random:
                message = (
                    f"'{resolved}()' uses numpy's default global RNG; "
                    f"use numpy.random.default_rng(seed) / "
                    f"RandomState(seed)"
                )
        if message is not None:
            yield Finding(
                path=ctx.path, line=node.lineno, col=node.col_offset,
                rule=self.id, symbol=ctx.symbol_at(node.lineno),
                message=message,
            )

    def _check_iteration(self, iter_node: ast.expr, ctx: FileContext,
                         imports: ImportMap) -> Iterable[Finding]:
        what = None
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            what = "a set literal"
        elif isinstance(iter_node, ast.Call):
            func = iter_node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                what = f"'{func.id}(...)'"
            elif isinstance(func, ast.Attribute) \
                    and func.attr in SET_COMBINATORS:
                what = f"a '.{func.attr}()' result"
        elif isinstance(iter_node, ast.BinOp) \
                and isinstance(iter_node.op, (ast.BitOr, ast.BitAnd,
                                              ast.Sub, ast.BitXor)):
            # `a | b` over sets is common; only flag when one side is
            # literally a set expression (no type inference).
            operands = (iter_node.left, iter_node.right)
            if any(isinstance(op, (ast.Set, ast.SetComp)) or
                   (isinstance(op, ast.Call)
                    and isinstance(op.func, ast.Name)
                    and op.func.id in ("set", "frozenset"))
                   for op in operands):
                what = "a set expression"
        if what is not None:
            yield Finding(
                path=ctx.path, line=iter_node.lineno,
                col=iter_node.col_offset, rule=self.id,
                symbol=ctx.symbol_at(iter_node.lineno),
                message=(
                    f"iterating {what} feeds unordered elements into "
                    f"downstream order; wrap it in sorted(...)"
                ),
            )


@register_rule
class NoPickleOfArraysRule(Rule):
    """RL011: the shm transport never pickles payloads."""

    id = "RL011"
    name = "no-pickle-of-arrays"
    description = (
        "the shared-memory executor path moves arrays as ArrayRef "
        "descriptors; a direct pickle call re-introduces the "
        "multi-copy serialization the subsystem exists to avoid"
    )

    def check_file(self, ctx: FileContext, config: LintConfig,
                   project: ProjectContext) -> Iterable[Finding]:
        if not path_matches(ctx.path, config.shm_paths):
            return
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved.startswith(("pickle.", "cPickle.", "marshal.")) \
                    and resolved.split(".", 1)[1] in (
                        "dumps", "loads", "dump", "load"):
                yield Finding(
                    path=ctx.path, line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    symbol=ctx.symbol_at(node.lineno),
                    message=(
                        f"'{resolved}()' in the shm transport path: "
                        f"ship ArrayRef descriptors, not serialized "
                        f"arrays"
                    ),
                )
