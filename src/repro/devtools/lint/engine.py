"""The lint driver: files in, verdict out.

:class:`Linter` walks the target tree, parses each file once into a
:class:`~repro.devtools.lint.context.FileContext`, runs every selected
rule's per-file pass, then the project-wide ``finalize`` passes (lock
cycles, unused suppressions), and splits the findings three ways:

* **suppressed** -- a ``# repro-lint: disable=RULE`` comment on the
  offending line (recorded, so the unused-suppression rule can tell
  live suppressions from stale ones);
* **baselined** -- fingerprint present in the committed baseline
  (legacy debt: reported, never failing);
* **active** -- everything else; any active finding fails the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.config import DEFAULT_CONFIG, LintConfig
from repro.devtools.lint.context import FileContext, ProjectContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, all_rules

#: Pseudo-rule id for files the parser rejects outright.
PARSE_RULE = "RL-PARSE"


@dataclass
class LintResult:
    """Everything one lint run learned."""

    active: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing non-baselined was found."""
        return not self.active

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": self.rules_run,
            "active": [finding.to_dict() for finding in self.active],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "suppressed_count": len(self.suppressed),
            "stale_baseline": self.stale_baseline,
        }


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into the sorted list of ``.py`` files."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(
                candidate for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            found.add(path)
        else:
            raise ValueError(f"not a python file or directory: {path}")
    return sorted(found)


def _relative(path: Path) -> str:
    """Repo-relative posix path (falls back to the given path)."""
    resolved = path.resolve()
    for parent in resolved.parents:
        if (parent / "pyproject.toml").exists() or (parent / ".git").exists():
            return resolved.relative_to(parent).as_posix()
    return path.as_posix()


class Linter:
    """One configured lint run over a set of paths."""

    def __init__(self, config: LintConfig | None = None,
                 rules: Iterable[str] | None = None,
                 baseline: Baseline | None = None) -> None:
        self.config = config or DEFAULT_CONFIG
        self.baseline = baseline or Baseline()
        available = {cls.id: cls for cls in all_rules()}
        if rules is None:
            selected = sorted(available)
        else:
            selected = []
            for rule_id in rules:
                if rule_id not in available:
                    raise ValueError(
                        f"unknown lint rule {rule_id!r} "
                        f"(registered: {', '.join(sorted(available))})")
                selected.append(rule_id)
        self.rules: list[Rule] = [available[rule_id]()
                                  for rule_id in sorted(set(selected))]

    # -- the run ---------------------------------------------------------

    def run(self, paths: Sequence[str | Path]) -> LintResult:
        result = LintResult(rules_run=[rule.id for rule in self.rules])
        project = ProjectContext(
            selected_rules=frozenset(rule.id for rule in self.rules))
        contexts: list[FileContext] = []
        for path in discover_files(paths):
            rel = _relative(path)
            try:
                source = path.read_text(encoding="utf-8")
                contexts.append(FileContext(rel, source))
            except (SyntaxError, UnicodeDecodeError) as exc:
                line = getattr(exc, "lineno", 1) or 1
                result.active.append(Finding(
                    path=rel, line=line, col=0, rule=PARSE_RULE,
                    message=f"file does not parse: {exc}",
                ))
        project.files = contexts
        result.files_checked = len(contexts)

        raw: list[Finding] = []
        for rule in self.rules:
            for ctx in contexts:
                raw.extend(rule.check_file(ctx, self.config, project))
        self._triage(raw, contexts, project, result)

        # Project-wide passes, unused-suppression last: it needs the
        # suppression hits every other pass (including finalize ones)
        # just recorded.
        by_file = {ctx.path: ctx for ctx in contexts}
        for rule in sorted(self.rules,
                           key=lambda r: (getattr(r, "priority", 0), r.id)):
            late = list(rule.finalize(project, self.config))
            self._triage(late, list(by_file.values()), project, result)

        result.stale_baseline = self.baseline.stale_entries(
            result.active + result.baselined)
        result.active.sort()
        result.baselined.sort()
        return result

    def _triage(self, findings: Iterable[Finding],
                contexts: list[FileContext],
                project: ProjectContext, result: LintResult) -> None:
        by_file = {ctx.path: ctx for ctx in contexts}
        for finding in findings:
            ctx = by_file.get(finding.path)
            if ctx is not None and ctx.suppressed(finding.line, finding.rule):
                project.suppression_hits.add(
                    (finding.path, finding.line, finding.rule))
                result.suppressed.append(finding)
            elif finding in self.baseline:
                result.baselined.append(finding)
            else:
                result.active.append(finding)


def apply_fixes(findings: Iterable[Finding]) -> dict[str, int]:
    """Apply every finding's attached fix, one rewrite per file.

    Returns ``{path: fixes_applied}``.  Paths are resolved relative to
    the current directory (the repo root in normal use); findings
    without a fix -- the majority; most invariants need a human -- are
    skipped.
    """
    per_file: dict[str, list[Finding]] = {}
    for finding in findings:
        if finding.fix is not None:
            per_file.setdefault(finding.path, []).append(finding)
    applied: dict[str, int] = {}
    for path, fixable in per_file.items():
        target = Path(path)
        if not target.exists():
            continue
        lines = target.read_text(encoding="utf-8").splitlines(keepends=True)
        count = 0
        # Bottom-up keeps untouched line numbers valid even if a fix
        # ever grows to span lines.
        for finding in sorted(fixable, key=lambda f: -f.line):
            stripped = [line.rstrip("\n") for line in lines]
            if finding.fix is not None and finding.fix.apply(stripped):
                lines = [line + "\n" for line in stripped]
                count += 1
        if count:
            target.write_text("".join(lines), encoding="utf-8")
            applied[path] = count
    return applied
