"""Per-file and per-run state handed to lint rules.

:class:`FileContext` owns everything a rule needs about one source
file: the parsed AST, the raw lines, real comments (extracted with
:mod:`tokenize`, so strings containing ``#`` never count), and the
``# repro-lint: disable=RULE`` suppressions derived from them.

:class:`ProjectContext` accumulates cross-file state for rules with a
``finalize`` phase (lock-order cycles, unused suppressions).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

#: Suppression comment grammar: ``# repro-lint: disable=RL001,RL010``
#: (optionally followed by a free-text reason after ``--``).
SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--.*)?$"
)

#: Guarded-attribute annotation: ``# guarded-by: _stats_lock``
GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")


@dataclass(frozen=True)
class Suppression:
    """One ``# repro-lint: disable=...`` comment."""

    line: int
    rules: tuple[str, ...]
    """Rule ids listed in the comment (``("all",)`` disables every
    rule on the line)."""

    comment: str
    """The raw comment text (used by the unused-suppression fixer)."""

    def covers(self, rule: str) -> bool:
        return "all" in self.rules or rule in self.rules


class FileContext:
    """One parsed source file plus its comment-derived annotations."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.comments: dict[int, str] = {}
        for token in self._tokens():
            if token.type == tokenize.COMMENT:
                self.comments[token.start[0]] = token.string
        self.suppressions: dict[int, Suppression] = {}
        for line, comment in self.comments.items():
            match = SUPPRESS_RE.search(comment)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",")
                if part.strip()
            )
            if rules:
                self.suppressions[line] = Suppression(line, rules, comment)
        self._symbols = _SymbolIndex(self.tree)
        self._parents: dict[ast.AST, ast.AST] | None = None

    def _tokens(self) -> list[tokenize.TokenInfo]:
        try:
            return list(tokenize.generate_tokens(
                io.StringIO(self.source).readline))
        except tokenize.TokenError:  # pragma: no cover - ast parsed OK
            return []

    # -- annotations -----------------------------------------------------

    def guarded_comment(self, line: int) -> str | None:
        """The lock named by a ``# guarded-by:`` comment on ``line``."""
        comment = self.comments.get(line)
        if comment is None:
            return None
        match = GUARDED_RE.search(comment)
        return match.group("lock") if match else None

    def suppressed(self, line: int, rule: str) -> bool:
        suppression = self.suppressions.get(line)
        return suppression is not None and suppression.covers(rule)

    # -- structure -------------------------------------------------------

    def symbol_at(self, line: int) -> str:
        """Dotted enclosing definition (``Class.method``) of ``line``."""
        return self._symbols.at(line)

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (lazily indexed once per file)."""
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents.get(node)


class _SymbolIndex:
    """Maps a line to its innermost enclosing class/function name."""

    def __init__(self, tree: ast.Module) -> None:
        self._spans: list[tuple[int, int, str]] = []
        self._collect(tree, ())

    def _collect(self, node: ast.AST, stack: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                nested = stack + (child.name,)
                end = getattr(child, "end_lineno", child.lineno)
                self._spans.append((child.lineno, end, ".".join(nested)))
                self._collect(child, nested)
            else:
                self._collect(child, stack)

    def at(self, line: int) -> str:
        best = ""
        best_span = None
        for start, end, name in self._spans:
            if start <= line <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best, best_span = name, span
        return best


@dataclass
class ProjectContext:
    """Cross-file state shared by all rules during one lint run.

    ``lock_edges`` is the static lock-acquisition graph (``A`` held
    when ``B`` is taken); ``suppression_hits`` records which disable
    comments actually suppressed something, keyed by ``(path, line)``.
    """

    files: list[FileContext] = field(default_factory=list)
    lock_edges: dict[tuple[str, str], tuple[str, int]] = \
        field(default_factory=dict)
    suppression_hits: set[tuple[str, int]] = field(default_factory=set)
    selected_rules: frozenset[str] = frozenset()

    def add_lock_edge(self, held: str, taken: str,
                      path: str, line: int) -> None:
        self.lock_edges.setdefault((held, taken), (path, line))
