"""Lint findings and their stable fingerprints.

A :class:`Finding` is one rule violation at one source location.  The
:meth:`Finding.fingerprint` hash deliberately excludes the line
number: baselined legacy findings must keep matching after unrelated
edits move them around a file, so the identity is
``rule | path | symbol | message`` -- the enclosing definition
(``symbol``) anchors a finding far more stably than a line.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    """Repo-relative posix path of the offending file."""

    line: int
    """1-based source line."""

    col: int
    """0-based source column."""

    rule: str
    """Rule id, e.g. ``"RL001"``."""

    message: str
    """Human-readable description of the violation."""

    symbol: str = ""
    """Dotted enclosing definition (``Class.method``) -- the stable
    anchor used by baselines instead of the line number."""

    fix: "TextFix | None" = field(default=None, compare=False)
    """Optional automatic fix (applied by ``repro lint --fix``)."""

    def fingerprint(self) -> str:
        """Stable identity of this finding for baseline matching."""
        key = "|".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> dict:
        data = asdict(self)
        data.pop("fix", None)
        data["fingerprint"] = self.fingerprint()
        return data


@dataclass(frozen=True)
class TextFix:
    """A line-scoped rewrite: replace ``old`` with ``new`` on ``line``.

    Fixes are deliberately tiny (one line, exact-substring) so a
    fixer can never mangle code it did not inspect; a fix whose
    ``old`` text no longer matches is skipped, not forced.
    """

    line: int
    old: str
    new: str

    def apply(self, lines: list[str]) -> bool:
        """Rewrite ``lines`` in place; False when ``old`` is gone."""
        index = self.line - 1
        if index < 0 or index >= len(lines):
            return False
        if self.old not in lines[index]:
            return False
        lines[index] = lines[index].replace(self.old, self.new, 1)
        return True
