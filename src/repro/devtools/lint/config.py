"""Repo-invariant policy the rules consult.

The *mechanism* (AST walking, suppression, baselines) lives in the
engine and rules; the *policy* -- which paths form the deterministic
analysis core, which classes must be built through the registries,
which modules are allowed wall-clock or ``print`` -- is data, all of
it here, so adding a backend or widening the analysis path is a
one-line config change rather than a rule edit.

Paths are repo-relative posix patterns matched with
:func:`fnmatch.fnmatch` against the path *suffix*, so configs work
whether the linter is pointed at ``src/repro`` or at a checkout root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch


def path_matches(path: str, patterns: tuple[str, ...]) -> bool:
    """True when ``path`` ends with any of the ``patterns``."""
    normalized = path.replace("\\", "/")
    for pattern in patterns:
        if fnmatch(normalized, pattern) or fnmatch(normalized, f"*/{pattern}"):
            return True
    return False


@dataclass(frozen=True)
class LintConfig:
    """Every path- and name-policy the built-in rules consult."""

    # -- RL010: the deterministic analysis core --------------------------
    analysis_paths: tuple[str, ...] = (
        "streaming/analyzer.py",
        "streaming/engine.py",
        "streaming/window.py",
        "streaming/drift.py",
        "clustering/*.py",
        "stats/*.py",
        "rca/*.py",
        "causality/*.py",
    )
    """Modules whose outputs must be bit-identical run-to-run: no
    wall-clock, no unseeded RNG, no set-iteration feeding order."""

    #: ``numpy.random`` members that carry an explicit seed and are
    #: therefore fine in the analysis path.
    seeded_numpy_random: tuple[str, ...] = (
        "default_rng", "Generator", "RandomState", "SeedSequence",
        "PCG64", "Philox",
    )

    # -- RL011: the zero-copy shm transport ------------------------------
    shm_paths: tuple[str, ...] = (
        "parallel/shm.py",
    )
    """Modules where arrays must travel as shm descriptors; any direct
    ``pickle`` call re-introduces the multi-copy path."""

    # -- RL020: everything-through-the-registries ------------------------
    registry_only: dict[str, tuple[str, ...]] = field(default_factory=lambda: {
        # class name -> extra modules allowed to construct it (the
        # defining module and api/registry.py are always allowed).
        "MemoryBackend": ("persistence/backend.py",),
        "SqliteBackend": ("persistence/sqlite_backend.py",),
        "SpillBackend": ("persistence/spill.py",),
        "ShardExecutor": ("parallel/executor.py",),
        "ThreadShardExecutor": ("parallel/executor.py",),
        "ProcessShardExecutor": ("parallel/executor.py",),
        "ShmShardExecutor": ("parallel/shm.py",),
        "BatchingWriter": ("parallel/writer.py", "api/session.py"),
    })
    """Classes that must be built via :mod:`repro.api.registry` (or a
    factory next to their definition), never constructed ad hoc."""

    registry_modules: tuple[str, ...] = (
        "api/registry.py",
    )
    """Modules that may construct anything: the registries themselves."""

    # -- RL022: user-facing output stays at the edge ---------------------
    print_allowed: tuple[str, ...] = (
        "cli.py",
        "reporting.py",
        "devtools/*",
        "devtools/*/*",
        "devtools/*/*/*",
    )
    """Modules allowed to ``print``: the CLI/report edge and the lint
    tool's own output layer."""

    # -- RL002: calls that block while a lock is held --------------------
    blocking_calls: tuple[str, ...] = (
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.check_call",
        "subprocess.check_output",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
    )
    """Dotted call names that may stall every thread queued on the
    same lock (the deny-list is exact dotted matches, so ``", ".join``
    or ``os.path.join`` can never false-positive)."""


DEFAULT_CONFIG = LintConfig()
