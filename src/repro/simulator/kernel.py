"""Heap-based discrete-event simulation kernel.

A deliberately small, classic DES core: events are (time, seq, callback)
triples on a binary heap; the loop pops them in time order and invokes
the callbacks, which may schedule further events.  The sequence number
breaks ties deterministically, so two runs with the same seed replay
identically.

The request-level experiments (Figure 5: 10 000 HTTP requests against an
nginx model under different tracers) run on this kernel; the large
application models use the fluid engine instead, which is orders of
magnitude cheaper for hour-long loads.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback; ordering is (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class EventLoop:
    """Discrete-event loop with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        event = Event(time, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Process the next event; False when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.now = event.time
        event.callback()
        self.processed += 1
        return True

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Drain the queue, optionally bounded by time or event count.

        With ``until`` set, events strictly after that time remain queued
        and ``now`` advances to ``until``.
        """
        count = 0
        while self._queue:
            if max_events is not None and count >= max_events:
                return
            if until is not None and self._queue[0].time > until:
                self.now = until
                return
            self.step()
            count += 1
        if until is not None:
            self.now = max(self.now, until)

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
