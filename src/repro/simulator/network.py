"""Network latency model for inter-component calls.

Microservices of one application typically share a data center and talk
over a LAN where round-trip times are in the order of milliseconds
(paper Section 3.3 -- the observation motivating Sieve's conservative
500 ms Granger lag).  The model below produces per-call latencies drawn
from a shifted log-normal, with same-host calls an order of magnitude
faster than cross-host ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class NetworkModel:
    """Latency generator for RPC-style calls between components."""

    base_rtt: float = 0.001
    """Median cross-host round-trip time, seconds (~1 ms LAN)."""

    same_host_factor: float = 0.1
    """Same-host calls (loopback / container bridge) are this much faster."""

    jitter_sigma: float = 0.4
    """Log-normal sigma of the latency distribution."""

    serialization_cost: float = 0.0002
    """Fixed marshalling/unmarshalling cost per call, seconds."""

    def call_latency(self, rng: np.random.Generator,
                     same_host: bool = False) -> float:
        """Draw one call's network latency in seconds."""
        median = self.base_rtt * (self.same_host_factor if same_host else 1.0)
        latency = median * float(rng.lognormal(mean=0.0,
                                               sigma=self.jitter_sigma))
        return latency + self.serialization_cost

    def expected_latency(self, same_host: bool = False) -> float:
        """Mean latency of the distribution (for fluid-model delays)."""
        median = self.base_rtt * (self.same_host_factor if same_host else 1.0)
        return median * float(np.exp(self.jitter_sigma**2 / 2.0)) \
            + self.serialization_cost
