"""Microservice application simulator.

The paper evaluates Sieve on two real deployments (ShareLatex on a
10-node cluster, OpenStack Kolla on EC2).  Neither is available here, so
this subpackage provides the substrate that stands in for them:

* :mod:`repro.simulator.kernel` -- a classic heap-based discrete-event
  kernel, used where request-level granularity matters (the Figure 5
  tracing-overhead experiment runs 10 000 individual HTTP requests).
* :mod:`repro.simulator.component` -- the microservice model: a queueing
  station with instances, endpoints, resource usage and a metric
  exporter covering system-level and application-level metrics.
* :mod:`repro.simulator.network` -- LAN latency model for inter-component
  calls.
* :mod:`repro.simulator.fluid` -- the time-stepped ("fluid") simulation
  engine that advances every component's arrival/service dynamics on a
  fixed step, propagates load along the call topology with realistic
  delay, and emits connection events for the call-graph tracer.
* :mod:`repro.simulator.faults` -- fault injection (component crashes,
  degradations) used to produce the "faulty" OpenStack version of the
  RCA case study.
* :mod:`repro.simulator.app` -- the :class:`Application` bundle gluing
  components, topology, workload and monitoring together.
"""

from repro.simulator.app import Application, LiveRunSession, LoadedRun
from repro.simulator.component import (
    CallSpec,
    Component,
    ComponentSpec,
    EndpointSpec,
)
from repro.simulator.faults import ComponentCrash, Degradation, FaultPlan
from repro.simulator.fluid import FluidSimulation
from repro.simulator.kernel import Event, EventLoop
from repro.simulator.network import NetworkModel

__all__ = [
    "Application",
    "CallSpec",
    "Component",
    "ComponentCrash",
    "ComponentSpec",
    "Degradation",
    "EndpointSpec",
    "Event",
    "EventLoop",
    "FaultPlan",
    "FluidSimulation",
    "LiveRunSession",
    "LoadedRun",
    "NetworkModel",
]
