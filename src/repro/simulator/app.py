"""The :class:`Application` bundle: components + topology + monitoring.

An ``Application`` is the static description of a microservices-based
system (its component specs and entry points).  Calling :meth:`load`
performs Sieve's Step #1 (paper Section 3.1): run the workload against
the system while the collector records every exported metric and the
sysdig tracer captures the call graph.  The outcome is a
:class:`LoadedRun`, the input to the analysis steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.metrics.collector import Collector
from repro.metrics.store import MetricsStore
from repro.metrics.timeseries import MetricFrame
from repro.simulator.component import ComponentSpec
from repro.simulator.faults import FaultPlan
from repro.simulator.fluid import FluidSimulation, WorkloadFn
from repro.tracing.callgraph import CallGraph
from repro.tracing.sysdig import SysdigTracer


@dataclass
class LoadedRun:
    """Everything recorded while loading the application once."""

    application: str
    workload: str
    seed: int
    duration: float
    frame: MetricFrame
    call_graph: CallGraph
    store: MetricsStore
    tracer: SysdigTracer
    sla_samples: list = field(default_factory=list, repr=False)
    """Optional per-window (time, latency) samples recorded during the run."""

    def metric_count(self) -> int:
        """Number of distinct metrics recorded."""
        return len(self.frame)

    def component_metric_counts(self) -> dict[str, int]:
        """Metrics recorded per component."""
        return {
            component: len(self.frame.metrics_of(component))
            for component in self.frame.components
        }


class Application:
    """A microservices application the Sieve pipeline can load."""

    def __init__(self, name: str, specs: Sequence[ComponentSpec],
                 entrypoints: Mapping[str, float] | None = None,
                 sla_path: Sequence[str] | None = None):
        """``entrypoints`` maps entry components to their share of
        external traffic (normalized internally; default: first spec
        takes all traffic).  ``sla_path`` lists the components whose
        latencies sum to the user-perceived request latency (default:
        the main entry component alone)."""
        if not specs:
            raise ValueError("an application needs at least one component")
        self.name = name
        self.specs = list(specs)
        names = {spec.name for spec in self.specs}
        if entrypoints is None:
            entrypoints = {self.specs[0].name: 1.0}
        unknown = set(entrypoints) - names
        if unknown:
            raise ValueError(f"entrypoints reference unknown components: "
                             f"{sorted(unknown)}")
        total = sum(entrypoints.values())
        if total <= 0:
            raise ValueError("entrypoint shares must sum to a positive value")
        self.entrypoints = {k: v / total for k, v in entrypoints.items()}
        if sla_path is None:
            sla_path = [max(self.entrypoints, key=self.entrypoints.get)]
        unknown = set(sla_path) - names
        if unknown:
            raise ValueError(f"sla_path references unknown components: "
                             f"{sorted(unknown)}")
        self.sla_path = list(sla_path)

    @property
    def component_names(self) -> list[str]:
        """All component names, in spec order."""
        return [spec.name for spec in self.specs]

    def spec_of(self, name: str) -> ComponentSpec:
        """Spec of one component (KeyError if unknown)."""
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(f"unknown component {name!r}")

    def end_to_end_latency(self, sim: FluidSimulation) -> float:
        """User-perceived latency: the sum along the SLA path, seconds."""
        return sum(
            sim.component(name).mean_latency() for name in self.sla_path
        )

    def _workload_fn(self, total_rate_fn) -> WorkloadFn:
        """Split a scalar external rate over the entry components."""
        def workload(now: float) -> dict[str, float]:
            rate = max(float(total_rate_fn(now)), 0.0)
            return {entry: rate * share
                    for entry, share in self.entrypoints.items()}
        return workload

    def build_simulation(self, total_rate_fn, seed: int = 0,
                         dt: float = 0.1,
                         fault_plan: FaultPlan | None = None,
                         tracer: SysdigTracer | None = None,
                         ) -> tuple[FluidSimulation, SysdigTracer]:
        """Construct the simulation and its attached tracer."""
        tracer = tracer or SysdigTracer()
        tracer.register_components(self.component_names)
        sim = FluidSimulation(
            self.specs,
            self._workload_fn(total_rate_fn),
            dt=dt,
            seed=seed,
            fault_plan=fault_plan,
            trace_sink=tracer.sink,
        )
        return sim, tracer

    def open_session(
        self,
        total_rate_fn,
        seed: int = 0,
        dt: float = 0.1,
        scrape_interval: float = 0.5,
        fault_plan: FaultPlan | None = None,
        workload_name: str = "custom",
        warmup: float = 5.0,
        bus=None,
        record_frame: bool = True,
    ) -> "LiveRunSession":
        """Open a step-wise load session (the streaming engine's driver).

        The session exposes :meth:`LiveRunSession.advance` so the
        application can be moved forward in arbitrary hops while an
        external consumer (e.g. the streaming analysis engine) drains
        the collected samples between hops.  :meth:`Application.load`
        is exactly one session advanced in a single hop, so batch and
        streaming runs observe bit-identical metric/trace streams for
        a given seed.
        """
        return LiveRunSession(
            self, total_rate_fn, seed=seed, dt=dt,
            scrape_interval=scrape_interval, fault_plan=fault_plan,
            workload_name=workload_name, warmup=warmup, bus=bus,
            record_frame=record_frame,
        )

    def load(
        self,
        total_rate_fn,
        duration: float,
        seed: int = 0,
        dt: float = 0.1,
        scrape_interval: float = 0.5,
        fault_plan: FaultPlan | None = None,
        workload_name: str = "custom",
        warmup: float = 5.0,
    ) -> LoadedRun:
        """Sieve Step #1: load the application and record everything.

        ``total_rate_fn(t)`` gives the external request rate at time
        ``t``; it is split over the entry components.  ``warmup``
        seconds run before collection starts so queues and delay lines
        reach their operating region.
        """
        session = self.open_session(
            total_rate_fn, seed=seed, dt=dt,
            scrape_interval=scrape_interval, fault_plan=fault_plan,
            workload_name=workload_name, warmup=warmup,
        )
        session.advance(duration)
        return session.finish()


class LiveRunSession:
    """A load in progress: advance the simulation, consume as you go.

    Construction performs the warmup; each :meth:`advance` steps the
    simulation while the collector scrapes on its fixed schedule
    (scrape state persists across hops, so ``advance(a); advance(b)``
    records exactly what ``advance(a + b)`` would).  :meth:`finish`
    seals the session into a :class:`LoadedRun`.
    """

    def __init__(
        self,
        application: Application,
        total_rate_fn,
        seed: int = 0,
        dt: float = 0.1,
        scrape_interval: float = 0.5,
        fault_plan: FaultPlan | None = None,
        workload_name: str = "custom",
        warmup: float = 5.0,
        bus=None,
        record_frame: bool = True,
    ):
        self.application = application
        self.workload_name = workload_name
        self.seed = seed
        self.sim, self.tracer = application.build_simulation(
            total_rate_fn, seed=seed, dt=dt, fault_plan=fault_plan
        )
        self.store = MetricsStore()
        self.collector = Collector(
            self.sim.exporters(),
            interval=scrape_interval,
            seed=seed + 1,
            # Streaming-only sessions skip the metered store as well as
            # the frame: both grow unboundedly with run length, and the
            # bus's window store is the bounded retention instead.
            store=self.store if record_frame else None,
            bus=bus,
            record_frame=record_frame,
        )
        self.sla_samples: list[tuple[float, float]] = []
        self.elapsed = 0.0
        if warmup > 0:
            self.sim.run(warmup)
        self._next_scrape = self.sim.now

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def advance(self, seconds: float) -> None:
        """Run the simulation forward, scraping on schedule."""
        application = self.application

        def on_step(s: FluidSimulation) -> None:
            while self._next_scrape <= s.now:
                self.collector.scrape_once(self._next_scrape)
                self.sla_samples.append(
                    (self._next_scrape, application.end_to_end_latency(s))
                )
                self._next_scrape += self.collector.interval

        self.sim.run(seconds, on_step=on_step)
        self.elapsed += seconds

    def call_graph(self, min_count: int = 2) -> CallGraph:
        """The call graph observed so far."""
        return self.tracer.call_graph(min_count=min_count)

    def finish(self, min_count: int = 2) -> LoadedRun:
        """Seal the session into a :class:`LoadedRun`."""
        self.store.simulate_dashboard_reads()
        return LoadedRun(
            application=self.application.name,
            workload=self.workload_name,
            seed=self.seed,
            duration=self.elapsed,
            frame=self.collector.frame,
            call_graph=self.call_graph(min_count=min_count),
            store=self.store,
            tracer=self.tracer,
            sla_samples=self.sla_samples,
        )
