"""The microservice component model.

Each component is a multi-instance queueing station with named endpoints
(its RPC/HTTP interface), outgoing call specifications (which other
components it invokes per request, and how often), a resource-usage
model, and a metric exporter.

The exporter produces the two metric classes the paper distinguishes
(Section 3.1):

* **system metrics** -- CPU, memory, network and disk usage of the
  process, including monotone byte *counters* (deliberately
  non-stationary, to exercise Sieve's ADF-and-difference path);
* **application metrics** -- per-endpoint request statistics in the
  paper's naming convention (``http-requests_<endpoint>_<stat>``),
  plus runtime-specific families (node.js garbage collection, database
  query statistics, message-queue depths, ...) selected by the
  component ``kind``.

Metrics can be *conditional*: an error-state counter is only exported
once errors actually occur.  This mirrors real collectors (Telegraf
only reports series that exist) and is what produces the new/discarded
metrics that drive the RCA case study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

#: Runtime kinds with dedicated metric families.
KNOWN_KINDS = (
    "nodejs", "python", "database", "kv-store", "loadbalancer",
    "queue", "webserver", "generic",
)


@dataclass(frozen=True)
class EndpointSpec:
    """One entry point of a component's interface."""

    name: str
    service_time: float = 0.02
    """Mean in-process service time per request, seconds."""

    weight: float = 1.0
    """Relative share of the component's direct traffic."""


@dataclass(frozen=True)
class CallSpec:
    """An outgoing dependency: this component calls ``target``."""

    target: str
    ratio: float = 1.0
    """Downstream calls issued per request processed here."""

    delay: float = 0.5
    """Load-propagation delay to the target, seconds.  Covers network
    latency plus queueing/batching before the callee sees the work;
    Sieve's 500 ms Granger lag (paper Section 3.3) targets exactly this
    scale."""


CustomMetricFn = Callable[["Component", float], float | None]


@dataclass(frozen=True)
class ComponentSpec:
    """Static description of a microservice component."""

    name: str
    kind: str = "generic"
    endpoints: tuple[EndpointSpec, ...] = (EndpointSpec("index_GET"),)
    calls: tuple[CallSpec, ...] = ()
    instances: int = 1
    concurrency: int = 8
    """Requests one instance can process concurrently."""

    baseline_cpu: float = 2.0
    """Idle CPU usage, percent."""

    cpu_per_unit_load: float = 60.0
    """CPU percent consumed at utilization 1.0 (per instance)."""

    baseline_memory_mb: float = 120.0
    memory_per_queued_mb: float = 0.8
    request_bytes: float = 2200.0
    """Mean wire bytes exchanged per request."""

    error_base_rate: float = 0.0005
    """Background fraction of failing requests."""

    custom_metrics: tuple[tuple[str, CustomMetricFn], ...] = ()
    """Extra exported metrics: (name, fn(component, now) -> value|None)."""

    metric_profile: str = "full"
    """How rich the exporter is: ``"full"`` (all system + 5 stats per
    endpoint), ``"slim"`` (6 system metrics, 3 stats per endpoint --
    typical of Telegraf service plugins), or ``"tiny"`` (2 system
    metrics, 3 stats per endpoint -- thin sidecar processes)."""

    export_errors: str = "seen"
    """Error-metric policy: ``"seen"`` (export once errors occurred,
    the Telegraf-like default), ``"always"``, or ``"never"``."""

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise ValueError(f"unknown component kind {self.kind!r}")
        if not self.endpoints:
            raise ValueError(f"component {self.name!r} needs >= 1 endpoint")
        if self.instances < 1 or self.concurrency < 1:
            raise ValueError("instances and concurrency must be >= 1")
        if self.metric_profile not in ("full", "slim", "tiny"):
            raise ValueError(f"unknown metric_profile {self.metric_profile!r}")
        if self.export_errors not in ("seen", "always", "never"):
            raise ValueError(f"unknown export_errors {self.export_errors!r}")

    def endpoint_weights(self) -> np.ndarray:
        weights = np.array([e.weight for e in self.endpoints], dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError(f"component {self.name!r} has zero total weight")
        return weights / total


class Component:
    """Runtime state of one component inside a fluid simulation."""

    def __init__(self, spec: ComponentSpec, seed: int = 0,
                 env: dict | None = None):
        self.spec = spec
        self.name = spec.name
        self.instances = spec.instances
        self.env = env if env is not None else {}
        self._rng = np.random.default_rng(seed)

        # Continuous state advanced by step().
        self.utilization = 0.0
        self.queue_length = 0.0
        self.crashed = False
        self.degradation = 1.0  # service-time multiplier (faults raise it)

        # Per-endpoint instantaneous rates and latencies.
        self.endpoint_rates: dict[str, float] = {
            e.name: 0.0 for e in spec.endpoints
        }
        self.endpoint_latency: dict[str, float] = {
            e.name: e.service_time for e in spec.endpoints
        }

        # Monotone counters (non-stationary system metrics).
        self.net_in_total = 0.0
        self.net_out_total = 0.0
        self.disk_read_total = 0.0
        self.disk_write_total = 0.0
        self.requests_total = 0.0
        self.errors_total = 0.0

        # Instantaneous gauges.
        self.cpu_usage = spec.baseline_cpu
        self.memory_mb = spec.baseline_memory_mb
        self.error_rate = 0.0
        self._memory_drift = 0.0
        self._errors_seen = False
        self._rebalance_latency = 0.0
        self._cpu_wander = 0.0

    # -- dynamics ------------------------------------------------------

    @property
    def capacity(self) -> float:
        """Work units (request-seconds) the component can absorb per second."""
        return float(self.instances * self.spec.concurrency)

    def offered_work(self) -> float:
        """Request-seconds of work arriving per second at current rates."""
        work = 0.0
        for endpoint in self.spec.endpoints:
            rate = self.endpoint_rates[endpoint.name]
            work += rate * endpoint.service_time * self.degradation
        return work

    def step(self, dt: float, incoming: Mapping[str, float]) -> None:
        """Advance the component by ``dt`` seconds.

        ``incoming`` maps endpoint name to arrival rate (requests/sec).
        Unknown endpoint names are distributed over the declared
        endpoints by weight -- upstream components address the component
        as a whole unless a call targets a specific endpoint.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")

        weights = self.spec.endpoint_weights()
        rates = dict.fromkeys(self.endpoint_rates, 0.0)
        for endpoint_name, rate in incoming.items():
            if endpoint_name in rates:
                rates[endpoint_name] += rate
            else:
                for e, w in zip(self.spec.endpoints, weights):
                    rates[e.name] += rate * w
        if self.crashed:
            rates = dict.fromkeys(rates, 0.0)
        self.endpoint_rates = rates

        # Utilization and queue dynamics (fluid M/M/c approximation).
        work = self.offered_work()
        capacity = self.capacity
        rho = work / capacity if capacity > 0 else np.inf
        self.utilization = min(rho, 2.0)

        overflow = max(work - capacity * 0.98, 0.0)
        drain = max(capacity * 0.98 - work, 0.0)
        self.queue_length = max(
            self.queue_length + (overflow - drain * 0.5) * dt * 10.0, 0.0
        )

        # Latency: base service time inflated by congestion, plus the
        # transient disruption of a recent scaling action (connection
        # rebalancing, cache warmup) decaying over a few seconds.
        congestion = 1.0 / max(1.0 - min(rho, 0.98), 0.02)
        queue_penalty = self.queue_length / max(capacity, 1.0)
        self._rebalance_latency *= float(np.exp(-dt / 4.0))
        for endpoint in self.spec.endpoints:
            base = endpoint.service_time * self.degradation
            noise = float(self._rng.normal(0.0, 0.03 * base))
            self.endpoint_latency[endpoint.name] = max(
                base * (0.6 + 0.4 * congestion) + base * queue_penalty + noise,
                base * 0.5,
            ) + self._rebalance_latency

        # Errors: background rate plus overload-induced failures.
        overload_errors = max(rho - 1.0, 0.0) * 0.5
        self.error_rate = min(self.spec.error_base_rate + overload_errors, 1.0)
        if self.crashed:
            self.error_rate = 1.0

        total_rate = sum(rates.values())
        self.requests_total += total_rate * dt
        self.errors_total += total_rate * self.error_rate * dt
        if self.errors_total > 0.5:
            self._errors_seen = True

        # Resource usage.
        per_instance_load = rho  # utilization already folds in instances
        target_cpu = (
            self.spec.baseline_cpu
            + self.spec.cpu_per_unit_load * min(per_instance_load, 1.5)
        )
        # Real per-process CPU readings are noisy at two time scales:
        # fast sampling jitter, and a slow wander (GC cycles, background
        # housekeeping, co-located tenants) that survives the averaging
        # windows rule engines use.  The wander is an AR(1) process with
        # a ~45 s correlation time and ~7% stationary amplitude -- the
        # reason CPU makes a poor autoscaling trigger compared to
        # application metrics (paper Section 6.2).
        alpha = float(np.exp(-dt / 45.0))
        self._cpu_wander = alpha * self._cpu_wander + float(
            self._rng.normal(0.0, 12.0 * np.sqrt(1.0 - alpha * alpha))
        )
        cpu_noise = float(self._rng.normal(0.0, 2.5))
        self.cpu_usage = float(np.clip(
            0.7 * self.cpu_usage + 0.3 * (target_cpu + self._cpu_wander)
            + cpu_noise,
            0.0, 100.0,
        ))
        if self.crashed:
            self.cpu_usage = float(np.clip(self._rng.normal(0.2, 0.1), 0, 1))

        self._memory_drift += float(self._rng.normal(0.0, 0.15))
        self.memory_mb = max(
            self.spec.baseline_memory_mb
            + self.spec.memory_per_queued_mb * self.queue_length
            + self._memory_drift,
            16.0,
        )

        bytes_per_s = total_rate * self.spec.request_bytes
        self.net_in_total += bytes_per_s * dt
        self.net_out_total += bytes_per_s * 1.4 * dt
        self.disk_read_total += bytes_per_s * 0.1 * dt
        self.disk_write_total += bytes_per_s * 0.25 * dt

    def outgoing_rates(self) -> dict[str, float]:
        """Current call rate towards each downstream target."""
        if self.crashed:
            return {call.target: 0.0 for call in self.spec.calls}
        total_rate = sum(self.endpoint_rates.values())
        successful = total_rate * (1.0 - self.error_rate)
        return {
            call.target: successful * call.ratio for call in self.spec.calls
        }

    def set_instances(self, n: int) -> None:
        """Scale the component to ``n`` instances (autoscaling hook).

        Changing the instance count is not free: the load balancer
        rebalances connections and new instances start cold, briefly
        inflating latency (more so under load).  This is why the number
        of scaling actions is itself a quality metric (paper Table 4).
        """
        if n < 1:
            raise ValueError("a component needs at least one instance")
        if n != self.instances:
            self._rebalance_latency += 0.7 * min(self.utilization, 1.2) \
                * min(abs(n - self.instances), 3)
        self.instances = n

    # -- metric export --------------------------------------------------

    def total_request_rate(self) -> float:
        """Aggregate request arrival rate over all endpoints."""
        return sum(self.endpoint_rates.values())

    def mean_latency(self) -> float:
        """Traffic-weighted mean endpoint latency (seconds)."""
        total = self.total_request_rate()
        if total <= 0:
            weights = self.spec.endpoint_weights()
            return float(sum(
                w * self.endpoint_latency[e.name]
                for e, w in zip(self.spec.endpoints, weights)
            ))
        return sum(
            self.endpoint_rates[e.name] * self.endpoint_latency[e.name]
            for e in self.spec.endpoints
        ) / total

    def sample_metrics(self, now: float) -> dict[str, float]:
        """Export every currently-live metric (collector protocol)."""
        rng = self._rng
        profile = self.spec.metric_profile
        out: dict[str, float] = {}

        # System metrics; richness depends on the profile.
        out["cpu_usage"] = self.cpu_usage
        out["memory_usage"] = self.memory_mb
        if profile in ("full", "slim"):
            out["net_in_bytes_total"] = self.net_in_total
            out["net_out_bytes_total"] = self.net_out_total
            out["open_fds"] = 24.0 + 2.0 * self.instances \
                + self.total_request_rate() * 0.4 + float(rng.normal(0, 0.5))
            out["threads"] = float(4 * self.instances)
        if profile == "full":
            out["cpu_usage_percentile"] = float(
                np.clip(self.cpu_usage * 1.15 + rng.normal(0, 0.5), 0, 100)
            )
            out["memory_rss"] = self.memory_mb * 0.92 \
                + float(rng.normal(0, 1.0))
            out["disk_read_bytes_total"] = self.disk_read_total
            out["disk_write_bytes_total"] = self.disk_write_total

        # Application metrics: per-endpoint request statistics.
        for endpoint in self.spec.endpoints:
            rate = self.endpoint_rates[endpoint.name]
            latency_ms = self.endpoint_latency[endpoint.name] * 1000.0
            prefix = f"http-requests_{endpoint.name}"
            out[f"{prefix}_count"] = rate
            out[f"{prefix}_mean"] = latency_ms
            out[f"{prefix}_p90"] = latency_ms * 1.6 \
                + float(rng.normal(0, 0.04 * latency_ms))
            if profile == "full":
                out[f"{prefix}_median"] = latency_ms * 0.9 \
                    + float(rng.normal(0, 0.02 * latency_ms))
                out[f"{prefix}_p99"] = latency_ms * 2.8 \
                    + float(rng.normal(0, 0.08 * latency_ms))

        out["queue_length"] = self.queue_length
        if profile == "full":
            out["active_connections"] = self.total_request_rate() * 1.8 \
                + float(rng.normal(0, 0.3))
            out["instances"] = float(self.instances)
        if profile == "tiny":
            del out["queue_length"]

        # Error metrics according to the export policy.
        policy = self.spec.export_errors
        if policy == "always" or (policy == "seen" and self._errors_seen):
            out["error_count_total"] = self.errors_total
            out["error_rate"] = self.error_rate

        out.update(self._kind_metrics(rng))

        for name, fn in self.spec.custom_metrics:
            value = fn(self, now)
            if value is not None:
                out[name] = float(value)
        return out

    def _kind_metrics(self, rng: np.random.Generator) -> dict[str, float]:
        """Runtime-specific metric families, selected by ``spec.kind``."""
        load = self.utilization
        rate = self.total_request_rate()
        kind = self.spec.kind
        if kind == "nodejs":
            heap = self.memory_mb * 0.6
            return {
                "nodejs_heap_used_mb": heap + float(rng.normal(0, 1.5)),
                "nodejs_heap_total_mb": self.memory_mb * 0.75,
                "nodejs_gc_pause_ms": max(
                    0.4 + 6.0 * load + float(rng.normal(0, 0.3)), 0.0),
                "nodejs_eventloop_lag_ms": max(
                    0.1 + 9.0 * max(load - 0.6, 0.0)
                    + float(rng.normal(0, 0.05)), 0.0),
                "nodejs_active_handles": 10.0 + rate * 0.9,
            }
        if kind == "database":
            return {
                "db_queries_select_mean_ms": max(
                    1.0 + 14.0 * load + float(rng.normal(0, 0.4)), 0.1),
                "db_queries_insert_mean_ms": max(
                    1.5 + 18.0 * load + float(rng.normal(0, 0.5)), 0.1),
                "db_queries_count": rate * 2.4,
                "db_connections_active": 4.0 + rate * 0.8
                + float(rng.normal(0, 0.4)),
                "db_cache_hit_ratio": float(np.clip(
                    0.97 - 0.2 * max(load - 0.5, 0.0)
                    + rng.normal(0, 0.004), 0.0, 1.0)),
                "db_rows_returned": rate * 11.0,
                "db_lock_waits": max(rate * max(load - 0.8, 0.0) * 0.5
                                     + float(rng.normal(0, 0.02)), 0.0),
            }
        if kind == "kv-store":
            return {
                "kv_keys": 1500.0 + self.requests_total * 0.01,
                "kv_hits": rate * 3.1,
                "kv_misses": rate * 0.2 + float(rng.normal(0, 0.05)),
                "kv_evictions": max(rate * max(load - 0.9, 0.0)
                                    + float(rng.normal(0, 0.01)), 0.0),
                "kv_used_memory_mb": self.memory_mb * 0.5,
            }
        if kind == "loadbalancer":
            return {
                "lb_backends_up": float(max(self.instances, 1)),
                "lb_sessions": rate * 1.9 + float(rng.normal(0, 0.3)),
                "lb_bytes_in_rate": rate * self.spec.request_bytes,
                "lb_bytes_out_rate": rate * self.spec.request_bytes * 1.4,
                "lb_retries": max(rate * self.error_rate * 0.5
                                  + float(rng.normal(0, 0.01)), 0.0),
            }
        if kind == "queue":
            backlog = self.queue_length * 12.0
            return {
                "messages": backlog + rate * 0.8 + float(rng.normal(0, 0.4)),
                "messages_ack-diff": rate * 0.8 - backlog * 0.05
                + float(rng.normal(0, 0.2)),
                "messages_publish_rate": rate * 1.1,
                "messages_deliver_rate": rate * 1.1 * (1 - self.error_rate),
                "consumers": float(6 + self.instances),
                "queue_memory_mb": self.memory_mb * 0.4 + backlog * 0.002,
            }
        if kind == "webserver":
            return {
                "ws_requests_rate": rate,
                "ws_active_workers": min(rate * 0.6, 64.0)
                + float(rng.normal(0, 0.2)),
                "ws_keepalive_connections": rate * 1.3,
            }
        if kind == "python":
            return {
                "py_gc_collections": 2.0 + load * 6.0
                + float(rng.normal(0, 0.2)),
                "py_wsgi_workers_busy": min(load * self.capacity, 64.0),
                "py_request_queue": self.queue_length,
            }
        return {}
