"""Fault injection primitives.

The RCA case study (paper Section 6.3) needs a *faulty* application
version: OpenStack Kolla bug #1533942 crashes the Neutron Open vSwitch
agent, after which VM launches fail with 'No valid host was found'.
These primitives inject the analogous failures into a fluid simulation:

* :class:`ComponentCrash` -- the component stops processing entirely
  (its metrics freeze, downstream call rates drop to zero, every
  request it would serve fails);
* :class:`Degradation` -- the component's service time is multiplied by
  a factor over a window (soft performance faults);
* :class:`EnvFlag` -- sets an entry in the shared application
  environment, which application models translate into state-dependent
  metric changes (e.g. ``vm_launch_failing`` flips Nova's instance-state
  metrics from ACTIVE to ERROR).

A :class:`FaultPlan` bundles faults and is evaluated once per simulation
step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.simulator.component import Component


@dataclass(frozen=True)
class ComponentCrash:
    """Hard-crash ``component`` at ``at_time`` (never restarts)."""

    component: str
    at_time: float = 0.0

    def apply(self, components: Mapping[str, Component], now: float,
              env: dict) -> None:
        if now >= self.at_time:
            target = components.get(self.component)
            if target is None:
                raise KeyError(f"unknown component {self.component!r}")
            target.crashed = True


@dataclass(frozen=True)
class Degradation:
    """Multiply ``component``'s service time by ``factor`` in a window."""

    component: str
    factor: float = 3.0
    at_time: float = 0.0
    until: float = float("inf")

    def apply(self, components: Mapping[str, Component], now: float,
              env: dict) -> None:
        target = components.get(self.component)
        if target is None:
            raise KeyError(f"unknown component {self.component!r}")
        if self.at_time <= now < self.until:
            target.degradation = self.factor
        elif target.degradation == self.factor:
            target.degradation = 1.0


@dataclass(frozen=True)
class EnvFlag:
    """Set ``env[key] = value`` from ``at_time`` on."""

    key: str
    value: object = True
    at_time: float = 0.0

    def apply(self, components: Mapping[str, Component], now: float,
              env: dict) -> None:
        if now >= self.at_time:
            env[self.key] = self.value


@dataclass
class FaultPlan:
    """A set of faults evaluated at every simulation step."""

    faults: list = field(default_factory=list)

    def apply(self, components: Mapping[str, Component], now: float,
              env: dict) -> None:
        for fault in self.faults:
            fault.apply(components, now, env)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (healthy run)."""
        return cls(faults=[])
