"""Time-stepped ("fluid") simulation engine.

Request-level discrete-event simulation of an hour-long load against a
15-component application means tens of millions of events; Sieve's
analysis, however, only consumes *metric time series on a 500 ms grid*
and the *call graph*.  The fluid engine therefore advances the system on
a fixed step (default 100 ms), treating load as continuous rates:

* external workload injects arrival rates at entry components;
* each component updates its queueing/resource state from the rates it
  currently sees (:meth:`Component.step`);
* outgoing call rates propagate along :class:`CallSpec` edges with the
  spec's delay, through per-edge delay lines;
* every step, connection *events* are drawn (Poisson) for each active
  edge and handed to the attached tracer -- this is the syscall stream
  the sysdig analog consumes;
* the attached collector scrapes component metrics on its own interval.

The engine is deterministic for a given seed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.simulator.component import Component, ComponentSpec
from repro.simulator.faults import FaultPlan

#: Signature of a workload: simulation time -> {entry component: rate}.
WorkloadFn = Callable[[float], Mapping[str, float]]

#: Signature of a trace sink: (time, src, dst, n_connections).
TraceSink = Callable[[float, str, str, int], None]


class _DelayLine:
    """Delayed rate signal: reads return the rate ``delay`` seconds ago."""

    __slots__ = ("delay", "_history")

    def __init__(self, delay: float):
        self.delay = delay
        self._history: deque[tuple[float, float]] = deque()

    def push(self, time: float, rate: float) -> None:
        self._history.append((time, rate))

    def read(self, now: float) -> float:
        """Rate that applied at ``now - delay`` (0 before any signal)."""
        cutoff = now - self.delay
        value = 0.0
        while self._history and self._history[0][0] <= cutoff:
            value = self._history.popleft()[1]
        # Keep the last matured value visible for subsequent reads.
        if value != 0.0 or not self._history:
            self._history.appendleft((cutoff, value))
        return value


class FluidSimulation:
    """Fluid-flow simulation of a microservice application."""

    def __init__(
        self,
        specs: Sequence[ComponentSpec],
        workload: WorkloadFn,
        dt: float = 0.1,
        seed: int = 0,
        fault_plan: FaultPlan | None = None,
        trace_sink: TraceSink | None = None,
    ):
        if dt <= 0:
            raise ValueError("dt must be positive")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate component names")
        self.env: dict = {}
        self.dt = dt
        self.now = 0.0
        self.workload = workload
        self.fault_plan = fault_plan or FaultPlan.none()
        self.trace_sink = trace_sink
        self._rng = np.random.default_rng(seed)

        self.components: dict[str, Component] = {}
        for i, spec in enumerate(specs):
            self.components[spec.name] = Component(
                spec, seed=seed * 7919 + i, env=self.env
            )
        for spec in specs:
            for call in spec.calls:
                if call.target not in self.components:
                    raise ValueError(
                        f"{spec.name} calls unknown component {call.target!r}"
                    )

        # One delay line per (source, call) edge.
        self._edges: list[tuple[str, str, _DelayLine]] = []
        for spec in specs:
            for call in spec.calls:
                self._edges.append(
                    (spec.name, call.target, _DelayLine(call.delay))
                )

    def step(self) -> None:
        """Advance the simulation by one ``dt``."""
        now = self.now
        self.fault_plan.apply(self.components, now, self.env)

        # Gather incoming rates: external workload + matured edge signals.
        incoming: dict[str, dict[str, float]] = {
            name: {} for name in self.components
        }
        for entry, rate in self.workload(now).items():
            if entry not in self.components:
                raise KeyError(f"workload targets unknown component {entry!r}")
            incoming[entry]["__external__"] = (
                incoming[entry].get("__external__", 0.0) + max(rate, 0.0)
            )
        for src, dst, line in self._edges:
            rate = line.read(now)
            if rate > 0.0:
                incoming[dst][f"__from_{src}__"] = (
                    incoming[dst].get(f"__from_{src}__", 0.0) + rate
                )

        for name, component in self.components.items():
            component.step(self.dt, incoming[name])

        # Publish outgoing rates onto the delay lines and emit trace events.
        for src, dst, line in self._edges:
            rate = self.components[src].outgoing_rates().get(dst, 0.0)
            line.push(now, rate)
            if self.trace_sink is not None and rate > 0.0:
                n_events = int(self._rng.poisson(rate * self.dt))
                if n_events > 0:
                    self.trace_sink(now, src, dst, n_events)

        self.now = now + self.dt

    def run(self, duration: float,
            on_step: Callable[["FluidSimulation"], None] | None = None,
            ) -> None:
        """Run for ``duration`` seconds, invoking ``on_step`` after each step."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        n_steps = int(round(duration / self.dt))
        for _ in range(n_steps):
            self.step()
            if on_step is not None:
                on_step(self)

    def component(self, name: str) -> Component:
        """Look up a component by name."""
        return self.components[name]

    def exporters(self) -> list[Component]:
        """All components, in spec order (collector attachment)."""
        return list(self.components.values())
