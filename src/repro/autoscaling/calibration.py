"""Threshold calibration against peak-load samples (Section 6.2).

"To calculate the threshold values to trigger autoscaling, we used a
5-minute sample from the peak load of our HTTP trace and iteratively
refined the values to stay within the SLA condition."

Two phases reproduce that procedure:

1. **Level sweep** -- simulate the peak window at every instance count
   and record the guiding metric's level plus whether the SLA held.
   The scale-up threshold lands between the best *violating* level and
   the worst *satisfying* one; the initial scale-down threshold sits
   just below the worst satisfying level (a tight hysteresis band).
2. **Iterative refinement** -- replay a mid-load window with the
   candidate rule active.  If the rule itself causes SLA violations
   (scale-down flapping: the metric falls below the band after an
   upscale and the rule gives capacity back too eagerly), the
   scale-down threshold is halved and the window replayed, until the
   SLA holds.

Phase 2 is what separates metric qualities in the paper: a latency-like
application metric is *backlog-aware* and convex near saturation, so
the tight band survives refinement; CPU usage scales inversely with the
instance count and saturates, so refinement keeps cutting its
scale-down threshold (the paper ended at 1%), which later costs
efficiency (instances are never returned).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.autoscaling.rules import ScalingRule
from repro.autoscaling.sla import SLACondition
from repro.simulator.app import Application


@dataclass(frozen=True)
class CalibratedThresholds:
    """Calibration outcome for one guiding metric."""

    metric_component: str
    metric: str
    scale_up: float
    scale_down: float
    refinement_rounds: int
    levels: dict[int, tuple[float, bool]]
    """instance count -> (metric level, SLA satisfied)."""


def _observe_level(
    application: Application,
    rate_fn,
    component: str,
    instances: int,
    metric_component: str,
    metric: str,
    duration: float,
    seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Run a load window at a fixed instance count.

    Returns (guiding-metric samples, end-to-end latency samples).
    """
    sim, _tracer = application.build_simulation(rate_fn, seed=seed)
    sim.component(component).set_instances(instances)
    sim.run(5.0)  # warmup
    metric_samples: list[float] = []
    latency_samples: list[float] = []
    next_sample = sim.now

    def on_step(s) -> None:
        nonlocal next_sample
        while next_sample <= s.now:
            value = s.component(metric_component) \
                .sample_metrics(next_sample).get(metric)
            if value is not None:
                metric_samples.append(value)
            latency_samples.append(application.end_to_end_latency(s))
            next_sample += 0.5

    sim.run(duration, on_step=on_step)
    return np.asarray(metric_samples), np.asarray(latency_samples)


def calibrate_thresholds(
    application: Application,
    peak_rate_fn,
    component: str,
    metric_component: str,
    metric: str,
    sla: SLACondition,
    duration: float = 60.0,
    max_instances: int = 10,
    seed: int = 0,
    mid_rate_fn=None,
    max_refinements: int = 6,
    refinement_duration: float | None = None,
) -> CalibratedThresholds:
    """Find scale-up/down thresholds for ``metric`` (see module doc).

    ``mid_rate_fn`` is the moderate-load window used by the refinement
    phase; it defaults to 55% of the peak rate.  Refinement replays run
    for ``refinement_duration`` (default 4x the sweep ``duration``) so
    ramps are gentle enough that a well-placed trigger *can* keep up.
    """
    levels: dict[int, tuple[float, bool]] = {}
    for instances in range(1, max_instances + 1):
        metric_vals, latencies = _observe_level(
            application, peak_rate_fn, component, instances,
            metric_component, metric, duration, seed + instances,
        )
        if metric_vals.size == 0:
            continue
        levels[instances] = (
            float(np.mean(metric_vals)),
            not sla.violated(latencies),
        )

    satisfying = [lvl for lvl, ok in levels.values() if ok]
    violating = [lvl for lvl, ok in levels.values() if not ok]
    if not satisfying:
        raise RuntimeError(
            "SLA unsatisfiable at every instance count; calibration failed"
        )

    # The metric's *idle floor*: its reading when wildly overprovisioned.
    # A latency metric never reads below the base service time, CPU never
    # below the baseline -- any scale-down threshold at or below the
    # floor can never trigger and silently disables downscaling.
    floor_vals, _ = _observe_level(
        application, _scaled_rate(peak_rate_fn, 0.2), component,
        max_instances, metric_component, metric, duration, seed + 777,
    )
    floor = float(np.mean(floor_vals)) if floor_vals.size else 0.0

    # The guiding metric is assumed load-increasing (latency, CPU, rate
    # all rise with pressure): violating levels sit above satisfying.
    # The band hugs the highest satisfying level ("worst ok", the
    # efficient operating point): scale up a quarter above it, scale
    # down at it -- the 1.25 : 1.0 band ratio of the paper's refined
    # thresholds (1400 ms / 1120 ms).  When the first violating level
    # sits close above, the midpoint keeps the trigger below it.
    worst_ok = max(satisfying)
    scale_up = worst_ok * 1.25
    if violating:
        boundary = min(violating)
        if boundary > worst_ok:
            scale_up = min(scale_up, 0.5 * (worst_ok + boundary))
        else:  # overlapping levels: stay just above worst_ok
            scale_up = worst_ok * 1.1
    scale_down = floor + 0.35 * max(worst_ok - floor, 0.0)
    if scale_down >= scale_up:
        scale_down = scale_up * 0.8

    # Phase 2: iterative refinement.  Two failure modes are checked and
    # repaired until the SLA holds (or the round budget runs out):
    #
    # * *flapping* -- at moderate steady load the rule gives capacity
    #   back and immediately overloads; repaired by halving the
    #   scale-down threshold (how the paper's CPU rule ended at 1%);
    # * *late triggering* -- on a ramp towards peak load the rule fires
    #   only after the backlog has formed; repaired by moving the
    #   scale-up threshold towards the scale-down one (how the paper's
    #   CPU rule ended at an eager 21%).
    if refinement_duration is None:
        refinement_duration = 4.0 * duration
    if mid_rate_fn is None:
        # Moderate load with a slow swing: the regime where a flappy
        # rule hands back capacity at the trough and overloads at the
        # crest.  Real traces wiggle; a flat check window would hide
        # this failure mode entirely.
        mid_rate_fn = _swinging_rate(peak_rate_fn, low=0.35, high=0.75,
                                     period=120.0)
    ramp_rate_fn = _ramp_to_peak(peak_rate_fn, refinement_duration)
    adequate = min(
        (n for n, (_lvl, ok) in levels.items() if ok),
        default=max_instances,
    )
    rounds = 0
    for rounds in range(max_refinements + 1):
        rule = ScalingRule(
            component=component,
            metric_component=metric_component,
            metric=metric,
            scale_up_threshold=scale_up,
            scale_down_threshold=scale_down,
            min_instances=1,
            max_instances=max_instances,
        )
        flapping = _rule_causes_violations(
            application, mid_rate_fn, rule, sla, refinement_duration,
            seed + 997 + rounds, start_instances=adequate,
        )
        if flapping:
            # Back the scale-down threshold off towards (never below)
            # the idle floor: flap-downs were handing capacity back too
            # eagerly.
            scale_down = floor + 0.5 * max(scale_down - floor, 0.0)
            continue
        late = _rule_causes_violations(
            application, ramp_rate_fn, rule, sla, refinement_duration,
            seed + 499 + rounds, start_instances=1,
        )
        if late and scale_up > scale_down * 1.1:
            scale_up = scale_down + 0.7 * (scale_up - scale_down)
            continue
        break

    return CalibratedThresholds(
        metric_component=metric_component,
        metric=metric,
        scale_up=scale_up,
        scale_down=scale_down,
        refinement_rounds=rounds,
        levels=levels,
    )


def _scaled_rate(rate_fn, factor: float):
    """A rate function scaled by ``factor``."""
    return lambda now: factor * rate_fn(now)


def _swinging_rate(peak_rate_fn, low: float, high: float, period: float):
    """A slow sinusoid between ``low`` and ``high`` fractions of peak."""
    mid = 0.5 * (low + high)
    amplitude = 0.5 * (high - low)
    def fn(now: float) -> float:
        frac = mid + amplitude * np.sin(2.0 * np.pi * now / period)
        return peak_rate_fn(now) * frac
    return fn


def _ramp_to_peak(peak_rate_fn, duration: float):
    """A ramp from 30% of peak up to full peak over ``duration``."""
    def fn(now: float) -> float:
        frac = min(max(now / max(duration, 1e-9), 0.0), 1.0)
        return peak_rate_fn(now) * (0.3 + 0.7 * frac)
    return fn


def _rule_causes_violations(
    application: Application,
    rate_fn,
    rule: ScalingRule,
    sla: SLACondition,
    duration: float,
    seed: int,
    sla_window: int = 5,
    start_instances: int | None = None,
) -> bool:
    """Replay a window with the rule active; any SLA violation fails it.

    Imported lazily to avoid an import cycle with the engine module.
    """
    from repro.autoscaling.engine import run_autoscaling

    outcome = run_autoscaling(
        application, rate_fn, replace(rule), duration=duration,
        sla=sla, sla_window=sla_window, seed=seed,
        start_instances=start_instances,
    )
    return outcome.sla_violations > 0
