"""Service-level agreement conditions (paper Section 6.2).

The autoscaling case study uses: "90th percentile of all request
latencies should be below 1000 ms".  Violations are counted over fixed
evaluation windows, matching the paper's "SLA violations (out of 1400
samples)" metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SLACondition:
    """A percentile-latency service-level condition."""

    percentile: float = 90.0
    threshold: float = 1.0
    """Latency bound in seconds (paper: 1000 ms)."""

    def __post_init__(self) -> None:
        if not 0 < self.percentile < 100:
            raise ValueError("percentile must lie in (0, 100)")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")

    def violated(self, latencies) -> bool:
        """True when the window's percentile latency breaks the bound."""
        arr = np.asarray(latencies, dtype=float)
        if arr.size == 0:
            return False
        return float(np.percentile(arr, self.percentile)) > self.threshold

    def count_violations(self, latencies, window: int) -> tuple[int, int]:
        """Evaluate consecutive windows; returns (violations, windows)."""
        if window < 1:
            raise ValueError("window must be >= 1")
        arr = np.asarray(latencies, dtype=float)
        n_windows = arr.size // window
        violations = 0
        for i in range(n_windows):
            if self.violated(arr[i * window:(i + 1) * window]):
                violations += 1
        return violations, n_windows
