"""The streaming autoscaling engine (Kapacitor analog) and the
Table 4 experiment driver.

During a live run the engine samples the rule's guiding metric every
grid interval, keeps a sliding window, and applies the rule's decision
to the target component.  The experiment driver reports exactly the
three quantities of Table 4:

* mean CPU usage per component (efficiency: higher is better, idle
  overprovisioned instances depress it),
* SLA violations out of the evaluation samples,
* number of scaling actions (operational churn).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.autoscaling.rules import ScalingRule
from repro.autoscaling.sla import SLACondition
from repro.simulator.app import Application


@dataclass
class AutoscalingOutcome:
    """Result of one autoscaled run (one Table 4 column)."""

    rule_metric: str
    mean_cpu_per_component: float
    sla_violations: int
    sla_samples: int
    scaling_actions: int
    instance_trace: list[tuple[float, int]] = field(repr=False,
                                                    default_factory=list)

    def summary(self) -> dict:
        return {
            "metric": self.rule_metric,
            "mean_cpu_per_component": round(self.mean_cpu_per_component, 2),
            "sla_violations": self.sla_violations,
            "sla_samples": self.sla_samples,
            "scaling_actions": self.scaling_actions,
        }


def run_autoscaling(
    application: Application,
    workload_fn,
    rule: ScalingRule,
    duration: float,
    sla: SLACondition | None = None,
    sla_window: int = 5,
    seed: int = 0,
    sample_interval: float = 0.5,
    warmup: float = 5.0,
    start_instances: int | None = None,
) -> AutoscalingOutcome:
    """Run ``workload_fn`` with ``rule`` active; report Table 4 numbers.

    ``sla_window`` is the number of consecutive latency samples per SLA
    evaluation window.  ``start_instances`` overrides the scaled
    component's initial instance count.
    """
    sla = sla or SLACondition()
    sim, _tracer = application.build_simulation(workload_fn, seed=seed)
    target = sim.component(rule.component)
    if start_instances is not None:
        target.set_instances(start_instances)

    window_len = max(int(rule.window / sample_interval), 1)
    metric_window: deque[float] = deque(maxlen=window_len)
    latencies: list[float] = []
    cpu_sums: dict[str, float] = dict.fromkeys(sim.components, 0.0)
    cpu_samples = 0
    actions = 0
    instance_trace: list[tuple[float, int]] = []

    if warmup > 0:
        sim.run(warmup)
    next_sample = sim.now

    def on_step(s) -> None:
        nonlocal cpu_samples, actions, next_sample
        while next_sample <= s.now:
            metrics = s.component(rule.metric_component) \
                .sample_metrics(next_sample)
            value = metrics.get(rule.metric)
            if value is not None:
                metric_window.append(float(value))
            latencies.append(application.end_to_end_latency(s))
            for name, comp in s.components.items():
                cpu_sums[name] += comp.cpu_usage
            cpu_samples += 1

            delta = rule.decide(next_sample, metric_window,
                                target.instances)
            if delta != 0:
                target.set_instances(target.instances + delta)
                actions += 1
                instance_trace.append((next_sample, target.instances))
            next_sample += sample_interval

    sim.run(duration, on_step=on_step)

    violations, windows = sla.count_violations(latencies, sla_window)
    mean_cpu = (
        float(np.mean([total / max(cpu_samples, 1)
                       for total in cpu_sums.values()]))
        if cpu_samples else 0.0
    )
    return AutoscalingOutcome(
        rule_metric=f"{rule.metric_component}/{rule.metric}",
        mean_cpu_per_component=mean_cpu,
        sla_violations=violations,
        sla_samples=windows,
        scaling_actions=actions,
        instance_trace=instance_trace,
    )
