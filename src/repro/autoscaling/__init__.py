"""Case study #1: orchestration of autoscaling (paper Sections 4.1, 6.2).

Sieve's dependency graph tells the developer *which metric to scale on*:
the metric appearing most often in Granger relations.  The engine here
is the Kapacitor analog -- it streams the guiding metric during a live
run and applies threshold scaling rules (+/- one instance).

* :mod:`repro.autoscaling.sla` -- the SLA condition (90th percentile of
  request latencies below 1000 ms) and violation counting.
* :mod:`repro.autoscaling.rules` -- threshold scaling rules with
  hysteresis and cooldown.
* :mod:`repro.autoscaling.calibration` -- iterative threshold
  refinement against a peak-load sample (paper Section 6.2).
* :mod:`repro.autoscaling.engine` -- the streaming evaluator and the
  Table 4 experiment driver.
"""

from repro.autoscaling.calibration import calibrate_thresholds
from repro.autoscaling.engine import AutoscalingOutcome, run_autoscaling
from repro.autoscaling.rules import ScalingRule
from repro.autoscaling.sla import SLACondition

__all__ = [
    "AutoscalingOutcome",
    "ScalingRule",
    "SLACondition",
    "calibrate_thresholds",
    "run_autoscaling",
]
