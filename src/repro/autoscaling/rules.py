"""Threshold-based scaling rules (paper Section 4.1).

A rule binds a *guiding metric* to scale-in/out actions: when the
metric's windowed value exceeds the scale-up threshold, the target
component gains one instance; below the scale-down threshold it loses
one (subject to bounds and a cooldown so one burst does not trigger a
staircase of actions).  This is the rule family every cloud provider's
autoscaler offers and the one the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass
class ScalingRule:
    """One threshold scaling rule for one component."""

    component: str
    metric_component: str
    metric: str
    scale_up_threshold: float
    scale_down_threshold: float
    min_instances: int = 1
    max_instances: int = 10
    cooldown: float = 15.0
    """Seconds between consecutive actions."""

    window: float = 10.0
    """Averaging window of the guiding metric, seconds."""

    _last_action_time: float = -float("inf")

    def __post_init__(self) -> None:
        if self.scale_down_threshold >= self.scale_up_threshold:
            raise ValueError(
                "scale_down_threshold must lie below scale_up_threshold"
            )
        if self.min_instances < 1 or self.max_instances < self.min_instances:
            raise ValueError("invalid instance bounds")

    def rebind(self, metric_component: str, metric: str) -> "ScalingRule":
        """A copy of this rule guided by a different metric.

        The streaming autoscaling consumer calls this whenever the
        engine's dependency graph elects a new most-connected metric;
        thresholds, bounds and cooldown carry over, the action clock
        resets so the fresh guide starts from a clean cooldown.
        """
        return replace(self, metric_component=metric_component,
                       metric=metric, _last_action_time=-float("inf"))

    def decide(self, now: float, metric_window,
               current_instances: int) -> int:
        """Return the instance delta (-1, 0 or +1) for this evaluation."""
        if now - self._last_action_time < self.cooldown:
            return 0
        values = np.asarray(metric_window, dtype=float)
        if values.size == 0:
            return 0
        value = float(values.mean())
        if (value > self.scale_up_threshold
                and current_instances < self.max_instances):
            self._last_action_time = now
            return 1
        if (value < self.scale_down_threshold
                and current_instances > self.min_instances):
            self._last_action_time = now
            return -1
        return 0
