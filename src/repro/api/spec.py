"""Declarative, serializable run specifications.

A :class:`RunSpec` says *everything* about one pipeline run -- the
application, the workload, the analysis tunables
(:class:`~repro.core.config.SieveConfig` /
:class:`~repro.core.config.StreamingConfig`) and the storage /
executor / consumer policy -- as one frozen dataclass tree that
round-trips losslessly through JSON or TOML.  Feeding the same spec to
:func:`repro.api.build_pipeline` reproduces the same run bit-for-bit,
which is why ``repro spec`` emits the resolved spec of any CLI
invocation and why checkpoints embed the spec they were taken under.

Every string-keyed policy field (``workload.kind``, ``storage.kind``,
``streaming.executor``, consumer kinds) resolves through the plugin
registries of :mod:`repro.api.registry`, so a spec file can name
third-party extensions exactly like builtins.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.persistence.retention import RetentionSchedule
    from repro.tracing.callgraph import CallGraph

from repro.api.registry import (
    APPLICATIONS,
    BACKENDS,
    CONSUMERS,
    EXPORTERS,
    WORKLOADS,
)
from repro.core.config import StreamingConfig
from repro.core.serialize import (
    streaming_config_from_dict,
    streaming_config_to_dict,
)

#: Schema version written into every serialized spec.
SPEC_VERSION = 1

#: Valid :attr:`RunSpec.mode` values (one per pipeline entry point).
RUN_MODES = ("pipeline", "stream", "record", "replay",
             "rca", "trace-overhead", "catalog", "serve")

#: Modes that instantiate an application model by name.
_APP_MODES = ("pipeline", "stream", "record", "rca", "catalog")


@dataclass(frozen=True)
class WorkloadSpec:
    """Which load generator drives the run (resolved by registry)."""

    kind: str = "random"
    rate: float = 25.0
    """Request rate for rate-shaped workloads (constant, ramp)."""

    options: dict = field(default_factory=dict)
    """Extra keyword arguments for the registered factory."""

    def __post_init__(self) -> None:
        if self.kind not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.kind!r} "
                f"(registered: {', '.join(WORKLOADS.names())})"
            )
        if self.rate < 0:
            raise ValueError("rate must be non-negative")


@dataclass(frozen=True)
class StorageSpec:
    """Where ingested series are durably stored (resolved by registry).

    ``kind="memory"`` (with an empty path) means no durable store --
    the in-RAM rings are the only copy, the pre-persistence behaviour.
    """

    kind: str = "memory"
    path: str = ""
    retention: float = 0.0
    """Compaction horizon in seconds for :meth:`Session.compact`:
    samples older than (per-series newest - retention) may be dropped
    when compaction runs.  0 keeps everything."""

    schedule: str = ""
    """Tiered-retention schedule applied by compaction, e.g.
    ``"1000s:full,4000s:1m,inf:10m"`` (full resolution for the newest
    1000 s, one-minute mean/min/max/count rollups to 4000 s, ten-minute
    rollups forever).  Empty keeps everything at full resolution.  The
    policy half of the split: backends supply the rollup mechanism."""

    options: dict = field(default_factory=dict)
    """Extra keyword arguments for the registered backend factory
    (e.g. ``hot_points`` / ``compact_min_points`` for spill)."""

    def __post_init__(self) -> None:
        if self.kind not in BACKENDS:
            raise ValueError(
                f"unknown storage backend {self.kind!r} "
                f"(registered: {', '.join(BACKENDS.names())})"
            )
        if self.retention < 0:
            raise ValueError("retention must be >= 0")
        if self.schedule:
            # Parse errors surface at spec build time, not at the
            # first compaction hours into a run.
            from repro.persistence.retention import RetentionSchedule

            RetentionSchedule.parse(self.schedule)

    @property
    def parsed_schedule(self) -> "RetentionSchedule | None":
        """The :class:`~repro.persistence.retention.RetentionSchedule`
        this spec declares (None when unscheduled)."""
        if not self.schedule:
            return None
        from repro.persistence.retention import RetentionSchedule

        return RetentionSchedule.parse(self.schedule)

    @property
    def enabled(self) -> bool:
        """Whether this spec names an actual storage target.

        An empty path means "no store": the kind field alone (which
        always carries a default) must not conjure a backend up.
        """
        return bool(self.path)


@dataclass(frozen=True)
class TelemetrySpec:
    """Self-telemetry policy of one run (the ``obs`` layer's wiring).

    Off by default -- the engine then runs with no-op instruments.
    ``enabled=True`` turns collection on without serving; a positive
    ``port`` additionally starts the HTTP scrape endpoint (and implies
    collection, since serving dead metrics helps no one).  ``port=0``
    with ``enabled=True`` is the tests' shape: collect, serve on an
    ephemeral port only if asked at runtime.
    """

    enabled: bool = False
    port: int = 0
    """Scrape-endpoint port (0 = do not serve).  Sessions started from
    a spec with ``port>0`` bind ``host:port`` and expose ``/metrics``,
    ``/metrics.json``, ``/traces``, ``/healthz`` and
    ``/export/<name>``."""

    host: str = "127.0.0.1"
    span_history: int = 64
    """Per-window traces retained by the span tracer."""

    exporters: tuple = ()
    """Extra exporter names (resolved via the EXPORTERS registry) to
    serve at ``/export/<name>`` beyond the built-in prometheus/json."""

    options: dict = field(default_factory=dict)
    """Extra keyword arguments for registered exporter factories."""

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.span_history < 1:
            raise ValueError("span_history must be >= 1")
        object.__setattr__(self, "exporters", tuple(self.exporters))
        for name in self.exporters:
            if name not in EXPORTERS:
                raise ValueError(
                    f"unknown exporter {name!r} "
                    f"(registered: {', '.join(EXPORTERS.names())})"
                )

    @property
    def active(self) -> bool:
        """Whether this spec turns telemetry collection on."""
        return self.enabled or self.port > 0


#: Valid :attr:`ServiceSpec.clock` values (who schedules analysis).
SERVICE_CLOCKS = ("ingest", "wall")


@dataclass(frozen=True)
class ServiceSpec:
    """The live operations surface of one run (``POST /ingest`` +
    ``GET /api/...`` on the telemetry server).

    Off by default.  In ``serve`` mode the engine has *no* simulator
    driver: samples arrive over HTTP and analysis hops are scheduled
    off ingest watermarks (``clock="ingest"``, deterministic -- the
    bit-identical-to-in-process guarantee) or off the wall clock
    (``clock="wall"``, a poller offers the newest ingested timestamp
    every ``poll_interval`` seconds).  In ``stream`` mode an enabled
    service only exposes the query surface; ingest answers 409 because
    the co-simulation driver owns the bus.
    """

    enabled: bool = False
    port: int = 0
    """Port the operations routes are served on (0 = ephemeral).
    The service shares the telemetry server, so this is the same
    listener as ``/metrics``; ``telemetry.port`` wins when both are
    set and positive."""

    host: str = "127.0.0.1"
    clock: str = "ingest"
    poll_interval: float = 0.0
    """Wall-clock seconds between analysis offers for
    ``clock="wall"`` (0 = the streaming hop)."""

    event_history: int = 256
    """Operational events retained behind ``/api/events``."""

    view_history: int = 64
    """Window summaries retained behind ``/api/windows``."""

    topology: tuple = ()
    """Static deployment edges ``(caller, callee[, count])`` carried
    into every analysis offer -- HTTP ingest has no tracer to observe
    calls, so the communication topology is declared."""

    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.clock not in SERVICE_CLOCKS:
            raise ValueError(
                f"unknown service clock {self.clock!r} "
                f"(expected one of {SERVICE_CLOCKS})"
            )
        if self.poll_interval < 0:
            raise ValueError("poll_interval must be >= 0")
        if self.event_history < 1:
            raise ValueError("event_history must be >= 1")
        if self.view_history < 1:
            raise ValueError("view_history must be >= 1")
        edges = []
        for edge in self.topology:
            edge = tuple(edge)
            if len(edge) == 2:
                edge = (*edge, 1)
            if len(edge) != 3 or not all(
                    isinstance(part, str) for part in edge[:2]):
                raise ValueError(
                    f"topology edge must be (caller, callee[, count]), "
                    f"got {edge!r}"
                )
            edges.append((edge[0], edge[1], int(edge[2])))
        object.__setattr__(self, "topology", tuple(edges))

    @property
    def active(self) -> bool:
        """Whether this spec turns the operations surface on."""
        return self.enabled or self.port > 0

    def build_call_graph(self) -> "CallGraph":
        """The declared topology as a
        :class:`~repro.tracing.callgraph.CallGraph`."""
        from repro.tracing.callgraph import CallGraph

        graph = CallGraph()
        for caller, callee, count in self.topology:
            graph.record_call(caller, callee, count)
        return graph


@dataclass(frozen=True)
class ConsumerSpec:
    """One subscribed window consumer (resolved by registry)."""

    kind: str
    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in CONSUMERS:
            raise ValueError(
                f"unknown consumer {self.kind!r} "
                f"(registered: {', '.join(CONSUMERS.names())})"
            )


@dataclass(frozen=True)
class RunSpec:
    """The complete declarative description of one pipeline run."""

    mode: str = "stream"
    app: str = "sharelatex"
    seed: int = 1
    duration: float = 120.0
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    streaming: StreamingConfig = field(default_factory=StreamingConfig)
    storage: StorageSpec = field(default_factory=StorageSpec)
    journal: str = ""
    """Write-ahead ingest journal path ('' = no journal)."""

    checkpoint: str = ""
    """Checkpoint file path ('' = no checkpointing).  The cadence is
    :attr:`streaming.checkpoint_every_windows
    <repro.core.config.StreamingConfig.checkpoint_every_windows>` --
    note its default is 0 (manual checkpoints only), so set it (or use
    :meth:`~repro.api.session.PipelineBuilder.checkpoint`, which
    defaults to every window) when declaring a path here."""

    resume: bool = False
    """Restore state from :attr:`checkpoint` before streaming."""

    consumers: tuple[ConsumerSpec, ...] = ()
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)
    service: ServiceSpec = field(default_factory=ServiceSpec)
    compare: bool = False
    """Stream mode: also run the batch analysis and report
    streaming-vs-batch convergence."""

    snapshot: str = ""
    """Pipeline mode: write the analysis snapshot JSON here."""

    extra: dict = field(default_factory=dict)
    """Mode-specific knobs (rca: iterations/threshold;
    trace-overhead: requests)."""

    def __post_init__(self) -> None:
        if self.mode not in RUN_MODES:
            raise ValueError(
                f"unknown mode {self.mode!r} (expected one of {RUN_MODES})"
            )
        if self.mode in _APP_MODES and self.app not in APPLICATIONS:
            raise ValueError(
                f"unknown application {self.app!r} "
                f"(registered: {', '.join(APPLICATIONS.names())})"
            )
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.mode in ("record", "replay") and not self.storage.enabled:
            raise ValueError(
                f"mode {self.mode!r} needs a storage path "
                f"(spec.storage.path)"
            )
        if self.resume and not self.journal:
            raise ValueError(
                "resume needs a journal (the ingest log to replay)"
            )
        if self.resume and not self.checkpoint:
            raise ValueError("resume needs a checkpoint path")
        if self.mode == "serve" and not self.service.active:
            raise ValueError(
                "serve mode needs an active service spec "
                "(service.enabled or service.port > 0)"
            )
        if self.storage.enabled and self.storage.schedule \
                and self.mode in ("stream", "serve"):
            full = self.storage.parsed_schedule.full_horizon
            if full < self.streaming.retention:
                raise ValueError(
                    f"storage.schedule keeps full resolution for only "
                    f"{full:g}s but streaming.retention is "
                    f"{self.streaming.retention:g}s; windows falling "
                    "back from an evicted ring to the store would "
                    "silently read rollups instead of raw samples"
                )

    @property
    def sieve(self) -> SieveConfig:
        """The batch-analysis tunables (nested in streaming)."""
        return self.streaming.sieve

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """This spec as a fully resolved JSON/TOML-compatible dict."""
        return {
            "version": SPEC_VERSION,
            "mode": self.mode,
            "app": self.app,
            "seed": self.seed,
            "duration": self.duration,
            "workload": dataclasses.asdict(self.workload),
            "streaming": streaming_config_to_dict(self.streaming),
            "storage": dataclasses.asdict(self.storage),
            "journal": self.journal,
            "checkpoint": self.checkpoint,
            "resume": self.resume,
            "consumers": [dataclasses.asdict(c) for c in self.consumers],
            "telemetry": {
                **dataclasses.asdict(self.telemetry),
                "exporters": list(self.telemetry.exporters),
            },
            "service": {
                **dataclasses.asdict(self.service),
                "topology": [list(edge)
                             for edge in self.service.topology],
            },
            "compare": self.compare,
            "snapshot": self.snapshot,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Inverse of :meth:`to_dict`; partial dicts keep defaults,
        unknown keys raise (a typo must not silently run defaults)."""
        data = dict(data)
        version = data.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"unsupported spec version {version!r} "
                f"(expected {SPEC_VERSION})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RunSpec field(s): {', '.join(sorted(unknown))}"
            )
        kwargs: dict[str, Any] = dict(data)
        if "workload" in kwargs:
            kwargs["workload"] = _sub_spec(WorkloadSpec,
                                           kwargs["workload"])
        if "streaming" in kwargs:
            kwargs["streaming"] = streaming_config_from_dict(
                kwargs["streaming"])
        if "storage" in kwargs:
            kwargs["storage"] = _sub_spec(StorageSpec, kwargs["storage"])
        if "consumers" in kwargs:
            kwargs["consumers"] = tuple(
                _sub_spec(ConsumerSpec, c) for c in kwargs["consumers"]
            )
        if "telemetry" in kwargs:
            kwargs["telemetry"] = _sub_spec(TelemetrySpec,
                                            kwargs["telemetry"])
        if "service" in kwargs:
            kwargs["service"] = _sub_spec(ServiceSpec,
                                          kwargs["service"])
        for name in ("seed",):
            if name in kwargs:
                kwargs[name] = int(kwargs[name])
        for name in ("duration",):
            if name in kwargs:
                kwargs[name] = float(kwargs[name])
        return cls(**kwargs)


def _sub_spec(cls: type, data: Any) -> Any:
    """Build a nested spec dataclass from a (partial) dict."""
    if isinstance(data, cls):
        return data
    if not isinstance(data, dict):
        raise ValueError(f"{cls.__name__} payload must be a table/dict")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s): "
            f"{', '.join(sorted(unknown))}"
        )
    return cls(**data)


# -- file formats ----------------------------------------------------------


def spec_to_json(spec: RunSpec, indent: int = 1) -> str:
    """The resolved spec as pretty JSON."""
    return json.dumps(spec.to_dict(), indent=indent, sort_keys=True)


def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        # JSON string escaping is valid TOML basic-string escaping.
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
    raise TypeError(f"cannot emit {type(value).__name__} as TOML")


def _emit_toml_table(lines: list[str], table: dict, prefix: str) -> None:
    scalars = {k: v for k, v in table.items()
               if not isinstance(v, dict)
               and not (isinstance(v, list) and v
                        and all(isinstance(i, dict) for i in v))}
    subtables = {k: v for k, v in table.items() if isinstance(v, dict)}
    arrays = {k: v for k, v in table.items()
              if isinstance(v, list) and v
              and all(isinstance(i, dict) for i in v)}
    if prefix and (scalars or not (subtables or arrays)):
        lines.append(f"[{prefix}]")
    for key in sorted(scalars):
        lines.append(f"{key} = {_toml_scalar(scalars[key])}")
    if scalars:
        lines.append("")
    for key in sorted(subtables):
        sub = subtables[key]
        path = f"{prefix}.{key}" if prefix else key
        if not sub:
            lines.append(f"[{path}]")
            lines.append("")
            continue
        _emit_toml_table(lines, sub, path)
    for key in sorted(arrays):
        path = f"{prefix}.{key}" if prefix else key
        for item in arrays[key]:
            lines.append(f"[[{path}]]")
            flat = {k: v for k, v in item.items()
                    if not isinstance(v, dict)}
            for k in sorted(flat):
                lines.append(f"{k} = {_toml_scalar(flat[k])}")
            for k in sorted(set(item) - set(flat)):
                _emit_toml_table(lines, item[k], f"{path}.{k}")
            lines.append("")


def spec_to_toml(spec: RunSpec) -> str:
    """The resolved spec as a TOML document.

    The emitter covers exactly the value shapes :meth:`RunSpec.to_dict`
    produces (scalars, lists of scalars, nested tables, and the
    ``consumers`` array of tables); it is not a general TOML writer.
    """
    data = spec.to_dict()
    lines: list[str] = []
    top_scalars = {k: v for k, v in data.items()
                   if not isinstance(v, (dict, list))
                   or (isinstance(v, list)
                       and not any(isinstance(i, dict) for i in v))}
    for key in sorted(top_scalars):
        lines.append(f"{key} = {_toml_scalar(top_scalars[key])}")
    lines.append("")
    _emit_toml_table(
        lines,
        {k: v for k, v in data.items() if k not in top_scalars},
        "",
    )
    return "\n".join(lines).rstrip() + "\n"


def loads_spec(text: str, format: str = "json") -> RunSpec:
    """Parse a spec document (``format``: ``"json"`` or ``"toml"``)."""
    if format == "json":
        return RunSpec.from_dict(json.loads(text))
    if format == "toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - Python 3.10
            raise RuntimeError(
                "TOML specs need Python >= 3.11 (tomllib); "
                "use a JSON spec instead"
            ) from exc
        return RunSpec.from_dict(tomllib.loads(text))
    raise ValueError(f"unknown spec format {format!r}")


def _format_of(path: Path) -> str:
    return "toml" if path.suffix.lower() == ".toml" else "json"


def load_spec(path: str | Path) -> RunSpec:
    """Load a spec file (``.toml`` -> TOML, anything else -> JSON)."""
    path = Path(path)
    return loads_spec(path.read_text(encoding="utf-8"),
                      _format_of(path))


def save_spec(spec: RunSpec, path: str | Path) -> None:
    """Write the resolved spec to ``path`` (format by suffix)."""
    path = Path(path)
    text = spec_to_toml(spec) if _format_of(path) == "toml" \
        else spec_to_json(spec)
    path.write_text(text, encoding="utf-8")
