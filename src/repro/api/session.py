"""The pipeline façade: turn a :class:`RunSpec` into a running session.

``build_pipeline(spec)`` resolves every policy named by the spec
through the plugin registries -- application, workload, storage
backend, writer, executor, drift detector, consumers -- wires them
together exactly once, and hands back a :class:`Session` whose
``run()`` executes the declared mode:

* ``pipeline`` -- the offline Load -> Reduce -> Identify batch run;
* ``stream``   -- the windowed streaming engine against a live
  co-simulation (crash-safe with journal + checkpoint, resumable);
* ``serve``    -- the same engine fed over HTTP (``POST /ingest`` +
  ``GET /api/...`` on the telemetry server), no simulator driver;
* ``record``   -- capture a live run into a durable backend;
* ``replay``   -- re-analyze a recorded backend and meter the replay;
* ``rca`` / ``trace-overhead`` / ``catalog`` -- the paper's case-study
  utilities.

Sessions are context managers; ``close()`` releases executors, drains
asynchronous writers and closes backends.  Construction itself
acquires resources (truncates fresh journals, clears stale
checkpoints, overwrites record targets) -- build a session only when
you mean to run it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.api.registry import (
    APPLICATIONS,
    BACKENDS,
    CONSUMERS,
    EXECUTORS,
    WORKLOADS,
)
from repro.api.spec import ConsumerSpec, RunSpec, WorkloadSpec

#: Checkpoint keys revalidated against the current spec on resume.
_RESUME_KEYS = ("app", "seed")


class Session:
    """Base façade: a built pipeline ready to :meth:`run` once."""

    def __init__(self, spec: RunSpec) -> None:
        self.spec = spec
        self.backend: Any = None
        self.telemetry: Any = None
        """Self-telemetry handle (:class:`repro.obs.Telemetry`) for
        session kinds that instrument themselves; None otherwise."""

        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def run(self) -> Any:
        raise NotImplementedError  # pragma: no cover - abstract

    def close(self) -> None:
        """Release resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._close_impl()

    def _close_impl(self) -> None:
        if self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _writer_stats(self) -> dict | None:
        """Counters of an asynchronous writer backend, if one is on."""
        from repro.parallel.writer import BatchingWriter

        if isinstance(self.backend, BatchingWriter):
            return self.backend.stats.as_dict()
        return None

    # -- maintenance ----------------------------------------------------

    def compact(self, retention: float | None = None) -> dict:
        """Compact this session's durable storage backend.

        ``retention`` overrides the spec's
        :attr:`~repro.api.spec.StorageSpec.retention` horizon (None
        keeps it; 0 means merge-only, dropping nothing).  A
        :attr:`~repro.api.spec.StorageSpec.schedule` travels with the
        backend itself, so this call also drives tiered-retention
        migration: points crossing a tier horizon are rolled up to
        that tier's resolution.  Returns the backend's compaction
        stats (empty for backends with nothing to compact, e.g.
        memory).
        """
        if self.backend is None:
            return {}
        horizon = self.spec.storage.retention \
            if retention is None else retention
        return self.backend.compact(retention=horizon or None)


def _build_workload(spec: RunSpec) -> Any:
    w: WorkloadSpec = spec.workload
    return WORKLOADS.create(w.kind, duration=spec.duration,
                            seed=spec.seed, rate=w.rate, **w.options)


def _clear_backend_path(path: Path) -> None:
    """Clear a backend target so a new recording starts fresh.

    Appending a second run's timeline to an existing backend would be
    rejected as out-of-order.
    """
    import shutil

    if path.exists():
        shutil.rmtree(path) if path.is_dir() else path.unlink()
    for sidecar in (Path(str(path) + "-wal"), Path(str(path) + "-shm")):
        sidecar.unlink(missing_ok=True)


def _open_storage(spec: RunSpec, fresh: bool) -> Any:
    """Resolve the spec's durable backend (None when storage is off),
    wrapped in the asynchronous writer when the spec says so."""
    storage = spec.storage
    if not storage.enabled:
        return None
    if fresh and storage.path:
        _clear_backend_path(Path(storage.path))
    options = dict(storage.options)
    if storage.schedule:
        options["schedule"] = storage.schedule
    backend = BACKENDS.create(storage.kind, storage.path, **options)
    if spec.streaming.writer == "async":
        # The concurrent-ingest path: durable writes happen on a
        # dedicated thread so ingestion never blocks on them.
        from repro.parallel.writer import BatchingWriter

        backend = BatchingWriter(
            backend,
            max_batches=spec.streaming.writer_queue_batches,
        )
    return backend


# -- batch pipeline --------------------------------------------------------


class BatchSession(Session):
    """Mode ``pipeline``: the offline three-step batch run."""

    def __init__(self, spec: RunSpec) -> None:
        super().__init__(spec)
        from repro.core.sieve import Sieve

        self.application = APPLICATIONS.create(spec.app)
        self.workload = _build_workload(spec)
        self.sieve = Sieve(self.application, config=spec.sieve)

    def run(self) -> Any:
        """Execute the batch pipeline; returns the
        :class:`~repro.core.results.SieveResult` (and writes the
        snapshot when the spec names one)."""
        result = self.sieve.run(
            self.workload, duration=self.spec.duration,
            seed=self.spec.seed, workload_name=self.spec.workload.kind,
        )
        if self.spec.snapshot:
            from repro.core.serialize import save_snapshot

            save_snapshot(result, self.spec.snapshot)
        return result


# -- streaming -------------------------------------------------------------


@dataclass
class StreamOutcome:
    """Everything one streaming run produced."""

    analyses: list = field(repr=False)
    summary: dict
    writer_stats: dict | None = None
    final: Any = field(default=None, repr=False)
    """Full-retention final analysis (``compare`` runs only)."""

    batch: Any = field(default=None, repr=False)
    """The exact batch result for the same trace (``compare`` only)."""

    edge_jaccard: float | None = None
    """Streaming-vs-batch dependency-edge agreement (``compare``)."""


class _EngineSession(Session):
    """Shared wiring of every session that runs a streaming engine.

    Resolves telemetry, durable storage, the write-ahead journal, the
    engine itself (fresh or checkpoint-restored), the checkpoint
    policy, the spec's consumers and the health probes -- in exactly
    the order :class:`StreamSession` always used, so subscription
    order (policy first, then consumers) and therefore determinism
    are identical whether the engine is driven by a co-simulation
    (``stream``) or by HTTP ingest (``serve``).
    """

    def _init_engine(self, spec: RunSpec,
                     telemetry: Any = None) -> None:
        """Build ``self._engine`` and everything it depends on.
        ``telemetry`` overrides the spec-derived facade (serve mode
        always observes itself)."""
        from repro.obs.telemetry import Telemetry
        from repro.persistence import (
            CheckpointPolicy,
            IngestJournal,
            load_checkpoint,
            restore_engine,
        )
        from repro.streaming import StreamingSieve

        config = spec.streaming
        self.resumed = False
        self.service: Any = None
        self.telemetry = telemetry if telemetry is not None \
            else Telemetry.from_spec(spec.telemetry)

        state = None
        if spec.resume:
            if not Path(spec.checkpoint).exists():
                raise FileNotFoundError(
                    f"resume needs an existing checkpoint file "
                    f"({spec.checkpoint!r} not found)"
                )
            state = load_checkpoint(spec.checkpoint)
            self._validate_resume(state)

        self.backend = _open_storage(spec, fresh=not spec.resume)
        if self.telemetry.enabled and self.backend is not None:
            from repro.parallel.writer import BatchingWriter

            if isinstance(self.backend, BatchingWriter):
                self.backend.attach_telemetry(self.telemetry)
        # A fresh (non-resume) run starts its journal over; appending
        # a second run's timeline onto an old journal would make any
        # later replay reject the restart of time as out-of-order.
        self.journal = IngestJournal(spec.journal,
                                     truncate=not spec.resume) \
            if spec.journal else None
        if not spec.resume and spec.checkpoint \
                and Path(spec.checkpoint).exists():
            # A stale checkpoint from a previous session must not
            # survive a fresh start: if this run crashed before its
            # first window, a later resume would otherwise restore the
            # *old* session's state over the new journal.
            Path(spec.checkpoint).unlink()

        if spec.resume:
            self._engine = restore_engine(state, config,
                                          journal_path=spec.journal,
                                          journal=self.journal,
                                          store_backend=self.backend,
                                          telemetry=self.telemetry)
            self.resumed = True
        else:
            self._engine = StreamingSieve(
                config=config, seed=spec.seed, journal=self.journal,
                application=spec.app, workload=spec.workload.kind,
                store_backend=self.backend,
                telemetry=self.telemetry,
            )

        self.policy = None
        if spec.checkpoint:
            # Cadence comes from streaming.checkpoint_every_windows
            # (0 = manual checkpoints only -- the CLI's documented
            # --checkpoint-every 0; PipelineBuilder.checkpoint()
            # defaults it to every window when left unset).
            # Under a tiered-retention schedule, journal retirement
            # anchors on the *full-resolution* horizon: replay must
            # re-create every raw sample the durable store keeps raw,
            # and rollups cannot stand in for them.
            retire_horizon = None
            if spec.storage.enabled and spec.storage.schedule:
                retire_horizon = max(
                    config.retention,
                    spec.storage.parsed_schedule.full_horizon,
                )
            self.policy = CheckpointPolicy(
                self._engine, spec.checkpoint,
                spec=spec.to_dict(),
                retire_horizon=retire_horizon,
            )
            self._engine.subscribe(self.policy)
        self.consumers: dict[str, Any] = {}
        for consumer_spec in spec.consumers:
            consumer = CONSUMERS.create(consumer_spec.kind,
                                        self._engine,
                                        **consumer_spec.options)
            self._engine.subscribe(consumer)
            self.consumers[consumer_spec.kind] = consumer
        if self.telemetry.enabled:
            self._register_health_probes()

    def _attach_service(self, spec: RunSpec,
                        ingest_enabled: bool) -> None:
        """Stand up the operations surface when the spec asks for it:
        view + event log on the engine, event hooks on the RCA
        consumer and the checkpoint policy, and the service itself on
        the telemetry facade (the server routes ``/ingest`` and
        ``/api/...`` only while one is attached)."""
        if not spec.service.active:
            return
        from repro.obs.query import AnalysisView, EventLog
        from repro.obs.service import OperationsService

        view = AnalysisView(history=spec.service.view_history)
        events = EventLog(history=spec.service.event_history)
        self._engine.attach_view(view)
        self._engine.attach_events(events)
        self.service = OperationsService(
            self._engine,
            clock=spec.service.clock,
            call_graph=spec.service.build_call_graph(),
            view=view, events=events,
            ingest_enabled=ingest_enabled,
            consumers=self.consumers,
        )
        rca = self.consumers.get("rca")
        if rca is not None and hasattr(rca, "on_report"):
            chained = rca.on_report

            def _on_rca(triggered: Any, _chained: Any = chained) -> None:
                latest = self._engine.latest()
                events.append("rca",
                              latest.end if latest is not None else 0.0,
                              {
                                  "faulty_window":
                                      triggered.faulty_index,
                                  "baseline_window":
                                      triggered.baseline_index,
                                  "top": [
                                      candidate.component
                                      for candidate in
                                      triggered.report.final_ranking[:3]
                                  ],
                              })
                if _chained is not None:
                    _chained(triggered)

            rca.on_report = _on_rca
        if self.policy is not None:

            def _on_checkpoint(analysis: Any, policy: Any) -> None:
                events.append("checkpoint", analysis.end, {
                    "window": analysis.index,
                    "checkpoints_written": policy.checkpoints_written,
                })

            self.policy.on_checkpoint = _on_checkpoint
        self.telemetry.attach_service(self.service)

    def _register_health_probes(self) -> None:
        """Wire the standard liveness probes into ``/healthz``.

        Backpressure shedding on the bus, a failed or saturated
        asynchronous writer, and a checkpoint falling behind its
        cadence each flip the surface to 503.
        """
        from repro.obs.health import (
            bus_probe,
            checkpoint_probe,
            writer_probe,
        )
        from repro.parallel.writer import BatchingWriter

        health = self.telemetry.health
        health.add_probe("bus", bus_probe(self._engine.bus))
        if isinstance(self.backend, BatchingWriter):
            health.add_probe("writer", writer_probe(self.backend))
        if self.policy is not None:
            health.add_probe("checkpoint",
                             checkpoint_probe(self.policy))

    @property
    def engine(self) -> Any:
        return self._engine

    def _validate_resume(self, state: dict) -> None:
        """The resumed co-simulation must be the *same* trace the dead
        run was on; a mismatched spec would silently continue a
        different simulation on top of the old rings."""
        spec = self.spec
        embedded = state.get("spec") or {}
        recorded = {
            "app": embedded.get("app", state.get("application")),
            "seed": embedded.get("seed", state.get("seed")),
        }
        given = {"app": spec.app, "seed": spec.seed}
        mismatched = [
            (name, recorded[name], given[name])
            for name in _RESUME_KEYS
            if recorded[name] != given[name]
        ]
        workload = embedded.get("workload")
        if workload is None:
            if state.get("workload") != spec.workload.kind:
                mismatched.append(("workload", state.get("workload"),
                                   spec.workload.kind))
        else:
            for field_name in ("kind", "rate", "options"):
                recorded_value = workload.get(field_name)
                given_value = getattr(spec.workload, field_name)
                if recorded_value != given_value:
                    mismatched.append((f"workload.{field_name}",
                                       recorded_value, given_value))
        if mismatched:
            details = "; ".join(
                f"{name}: checkpoint has {rec!r}, given {cur!r}"
                for name, rec, cur in mismatched
            )
            raise ValueError(f"resume spec mismatch -- {details}")

    def _close_impl(self) -> None:
        self._engine.close()
        if self.journal is not None:
            # A serve session may be closed without run() ever
            # returning (signal handlers, tests): the journal tail
            # must still reach the OS or a resume would lose it.
            self.journal.commit()
        if self.backend is not None:
            # Drain the (possibly asynchronous) writer even on an
            # interrupted run -- queued batches must reach disk.
            self.backend.close()
        self.telemetry.close()


class StreamSession(_EngineSession):
    """Mode ``stream``: windowed analysis of a live co-simulation."""

    def __init__(self, spec: RunSpec) -> None:
        super().__init__(spec)
        from repro.streaming import SimulationStreamDriver

        self.application = APPLICATIONS.create(spec.app)
        self.workload = _build_workload(spec)
        self._init_engine(spec)
        self.driver = SimulationStreamDriver(
            self.application, self.workload, config=spec.streaming,
            seed=spec.seed, workload_name=spec.workload.kind,
            record_frame=spec.compare, engine=self._engine,
        )
        # The co-simulation driver owns the bus, so an attached
        # service exposes the query surface only (ingest answers 409).
        self._attach_service(spec, ingest_enabled=False)
        if spec.telemetry.port > 0:
            self.telemetry.serve(spec.telemetry.port,
                                 host=spec.telemetry.host)
        elif self.service is not None:
            self.telemetry.serve(spec.service.port,
                                 host=spec.service.host)

    def remaining(self) -> float:
        """Simulated seconds :meth:`run` will actually stream.

        For a resumed session the dead run's progress (its resume
        horizon relative to the fresh session's post-warmup clock) is
        subtracted from the spec duration.
        """
        spec = self.spec
        if self.resumed:
            target = self.engine.resume_horizon()
            elapsed_dead = 0.0 if target is None \
                else max(target - self.driver.session.now, 0.0)
            return max(spec.duration - elapsed_dead, 0.0)
        return max(spec.duration - self.driver.session.elapsed, 0.0)

    def run(self, on_window: Callable | None = None) -> StreamOutcome:
        """Stream the spec's duration; returns the outcome.

        ``on_window`` is invoked for every produced analysis, in
        addition to the spec's subscribed consumers.
        """
        remaining = self.remaining()
        analyses: list = []
        if remaining > 0:
            runner = self.driver.resume_run if self.resumed \
                else self.driver.run
            analyses = runner(remaining, on_window=on_window)
        if self.journal is not None:
            self.journal.commit()
        outcome = StreamOutcome(
            analyses=analyses,
            summary=self.engine.summary(),
            writer_stats=self._writer_stats(),
        )
        if self.spec.compare:
            final = self.driver.final_analysis()
            batch = self.driver.batch_result()
            outcome.final = final
            outcome.batch = batch
            if final is not None:
                from repro.causality.depgraph import edge_jaccard

                outcome.edge_jaccard = edge_jaccard(
                    final.dependency_graph, batch.dependency_graph,
                )
        return outcome

    def _close_impl(self) -> None:
        self.driver.engine.close()
        if self.backend is not None:
            # Drain the (possibly asynchronous) writer even on an
            # interrupted run -- queued batches must reach disk.
            self.backend.close()
        self.telemetry.close()


# -- serve -----------------------------------------------------------------


@dataclass
class ServeOutcome:
    """What one HTTP-fed service run produced."""

    analyses: list = field(repr=False)
    summary: dict
    service: dict
    url: str = ""
    writer_stats: dict | None = None


class ServeSession(_EngineSession):
    """Mode ``serve``: an HTTP-fed engine with no simulator driver.

    Samples arrive over ``POST /ingest`` on the telemetry server;
    analysis hops are scheduled off ingest watermarks
    (``service.clock="ingest"``, deterministic) or off the wall clock
    (``"wall"``, a poller thread).  Journal, checkpoints, resume,
    consumers and telemetry all work exactly as in ``stream`` mode --
    the engine wiring is shared -- so a killed service resumes to
    bit-identical windows from its journal.

    :meth:`run` blocks until ``spec.duration`` *wall-clock* seconds
    pass or :meth:`stop` is called (e.g. from a signal handler).
    """

    def __init__(self, spec: RunSpec) -> None:
        super().__init__(spec)
        import threading

        from repro.obs.telemetry import Telemetry

        # A service is inherently observed: even when the spec leaves
        # telemetry off, the engine collects so /metrics, /healthz and
        # the staleness gauges mean something.
        telemetry = Telemetry.from_spec(spec.telemetry) \
            if spec.telemetry.active else Telemetry(enabled=True)
        self._init_engine(spec, telemetry=telemetry)
        self._attach_service(spec, ingest_enabled=True)
        self._stop = threading.Event()
        self._poller: Any = None
        port = spec.telemetry.port if spec.telemetry.port > 0 \
            else spec.service.port
        host = spec.telemetry.host if spec.telemetry.port > 0 \
            else spec.service.host
        self.server = self.telemetry.serve(port, host=host)

    @property
    def url(self) -> str:
        return self.server.url

    def poll_interval(self) -> float:
        """Wall seconds between analysis offers (``clock="wall"``)."""
        return self.spec.service.poll_interval \
            or float(self.spec.streaming.hop)

    def stop(self) -> None:
        """Ask a blocked :meth:`run` to return (thread-safe)."""
        self._stop.set()

    def run(self, on_window: Callable | None = None) -> ServeOutcome:
        """Serve for ``spec.duration`` wall seconds (or until
        :meth:`stop`); returns the outcome.

        ``on_window`` subscribes like a consumer, so it fires on the
        HTTP thread that triggered the analysis (``clock="ingest"``)
        or on the poller thread (``clock="wall"``).
        """
        import threading
        import time as _time

        if on_window is not None:
            self._engine.subscribe(on_window)
        analyzed_before = self._engine.stats.windows
        deadline = _time.monotonic() + self.spec.duration
        if self.service.clock == "wall":
            interval = self.poll_interval()

            def _poll() -> None:
                while not self._stop.wait(interval):
                    self.service.offer_watermark()

            self._poller = threading.Thread(
                target=_poll, name="repro-serve-poller", daemon=True)
            self._poller.start()
        while not self._stop.is_set():
            left = deadline - _time.monotonic()
            if left <= 0:
                break
            self._stop.wait(min(0.25, left))
        self._stop.set()
        if self._poller is not None:
            self._poller.join(timeout=5.0)
            self._poller = None
        if self.journal is not None:
            self.journal.commit()
        produced = self._engine.stats.windows - analyzed_before
        retained = list(self._engine.history)
        return ServeOutcome(
            analyses=retained[max(len(retained) - produced, 0):]
            if produced else [],
            summary=self._engine.summary(),
            service=self.service.summary(),
            url=self.url,
            writer_stats=self._writer_stats(),
        )

    def _close_impl(self) -> None:
        self._stop.set()
        super()._close_impl()


# -- record ----------------------------------------------------------------


@dataclass
class RecordOutcome:
    """What one recording run captured."""

    backend: str
    path: str
    samples: int
    series: int
    writer_stats: dict | None = None


class RecordSession(Session):
    """Mode ``record``: capture a live run into a durable backend.

    Recording needs only the scrape stream and the final call graph,
    so the session publishes straight to the backend -- no windowed
    analysis runs (clustering and Granger belong to ``replay``).
    """

    def __init__(self, spec: RunSpec) -> None:
        super().__init__(spec)
        from repro.streaming import IngestionBus

        self.application = APPLICATIONS.create(spec.app)
        self.workload = _build_workload(spec)
        # Recording overwrites: appending a second run's timeline to
        # an existing backend would be rejected as out-of-order.
        self.backend = _open_storage(spec, fresh=True)
        self.bus = IngestionBus()
        self.bus.subscribe(self.backend)
        sieve_cfg = spec.sieve
        self.session = self.application.open_session(
            self.workload,
            seed=spec.seed,
            dt=sieve_cfg.simulation_dt,
            scrape_interval=sieve_cfg.grid_interval,
            workload_name=spec.workload.kind,
            warmup=sieve_cfg.warmup,
            bus=self.bus,
            record_frame=False,
        )

    def run(self) -> RecordOutcome:
        spec = self.spec
        self.session.advance(spec.duration)
        self.bus.flush()
        call_graph = self.session.call_graph(
            spec.sieve.callgraph_min_connections
        )
        self.backend.set_metadata({
            "application": spec.app,
            "workload": spec.workload.kind,
            "seed": spec.seed,
            "duration": spec.duration,
            "call_graph": call_graph.edges(),
            "spec": spec.to_dict(),
        })
        return RecordOutcome(
            backend=spec.storage.kind,
            path=spec.storage.path,
            samples=self.backend.sample_count(),
            series=self.backend.series_count(),
            writer_stats=self._writer_stats(),
        )


# -- replay ----------------------------------------------------------------


@dataclass
class ReplayOutcome:
    """A replayed analysis plus the Table 3 monitoring-cost rows."""

    result: Any = field(repr=False)
    application: str = ""
    workload: str = ""
    source: str = ""
    costs: list = field(default_factory=list)
    """(resource, all-metrics cost, representatives cost, saving %)."""


class ReplaySession(Session):
    """Mode ``replay``: re-analyze a recorded backend from disk."""

    def __init__(self, spec: RunSpec) -> None:
        super().__init__(spec)
        self.backend = BACKENDS.create(spec.storage.kind,
                                       spec.storage.path,
                                       **spec.storage.options)

    def run(self) -> ReplayOutcome:
        from repro.core.sieve import Sieve
        from repro.metrics.accounting import reduction_percent
        from repro.metrics.store import MetricsStore
        from repro.simulator.app import LoadedRun
        from repro.tracing.callgraph import CallGraph
        from repro.tracing.sysdig import SysdigTracer

        spec = self.spec
        meta = self.backend.metadata()
        frame = self.backend.to_frame()
        if not len(frame):
            raise ValueError(
                f"no series found in "
                f"{spec.storage.kind}:{spec.storage.path}"
            )
        call_graph = CallGraph()
        for caller, callee, count in meta.get("call_graph", []):
            call_graph.record_call(caller, callee, int(count))
        run = LoadedRun(
            application=meta.get("application", "recorded"),
            workload=meta.get("workload", "recorded"),
            seed=int(meta.get("seed", spec.seed)),
            duration=float(meta.get("duration", 0.0)),
            frame=frame,
            call_graph=call_graph,
            store=MetricsStore(),
            tracer=SysdigTracer(),
        )
        application_name = meta.get("application")
        if application_name in APPLICATIONS:
            application = APPLICATIONS.create(application_name)
        else:
            application = APPLICATIONS.create("sharelatex")
        config = spec.streaming
        executor = EXECUTORS.create(config.executor,
                                    config.executor_workers or None)
        try:
            result = Sieve(application, config=spec.sieve,
                           executor=executor) \
                .analyze(run, seed=run.seed)
        finally:
            executor.close()

        # Table 3 from disk: replay everything vs representatives.
        keep = result.representative_keys()
        before, after = MetricsStore(), MetricsStore()
        before.replay_frame(frame)
        before.simulate_dashboard_reads()
        after.replay_frame(frame, keep=keep)
        after.simulate_dashboard_reads()
        b, a = before.usage.summary(), after.usage.summary()
        costs = [
            (key, b[key], a[key], reduction_percent(b[key], a[key]))
            for key in ("cpu_seconds", "db_bytes",
                        "network_in_bytes", "network_out_bytes")
        ]
        return ReplayOutcome(
            result=result,
            application=run.application,
            workload=run.workload,
            source=f"{spec.storage.kind}:{spec.storage.path}",
            costs=costs,
        )


# -- case-study utilities --------------------------------------------------


class RCASession(Session):
    """Mode ``rca``: the OpenStack correct-vs-faulty comparison."""

    def __init__(self, spec: RunSpec) -> None:
        super().__init__(spec)
        from repro.core.sieve import Sieve

        self.application = APPLICATIONS.create(spec.app)
        self.sieve = Sieve(self.application, config=spec.sieve)
        self.iterations = int(spec.extra.get("iterations", 15))
        self.threshold = float(spec.extra.get("threshold", 0.5))

    def run(self) -> Any:
        from repro.apps import openstack_fault_plan
        from repro.rca import RCAEngine
        from repro.workload import RallyRunner

        spec = self.spec
        rally = RallyRunner(times=self.iterations, concurrency=5,
                            seed=spec.seed)
        duration = min(rally.duration, spec.duration)
        correct = self.sieve.run(rally, duration=duration,
                                 seed=spec.seed,
                                 workload_name="rally-correct")
        faulty = self.sieve.run(rally, duration=duration,
                                seed=spec.seed,
                                fault_plan=openstack_fault_plan(),
                                workload_name="rally-faulty")
        return RCAEngine().compare(correct, faulty,
                                   threshold=self.threshold)


class TraceOverheadSession(Session):
    """Mode ``trace-overhead``: the Figure 5 technique comparison."""

    def __init__(self, spec: RunSpec) -> None:
        super().__init__(spec)
        self.requests = int(spec.extra.get("requests", 10_000))

    def run(self) -> dict:
        from repro.apps import run_ab_benchmark

        return {
            name: run_ab_benchmark(name, n_requests=self.requests,
                                   seed=self.spec.seed)
            for name in ("native", "tcpdump", "sysdig", "ptrace")
        }


class CatalogSession(Session):
    """Mode ``catalog``: instantiate an application model to inspect."""

    def run(self) -> Any:
        return APPLICATIONS.create(self.spec.app)


# -- the entry point -------------------------------------------------------

_SESSIONS: dict[str, type[Session]] = {
    "pipeline": BatchSession,
    "stream": StreamSession,
    "serve": ServeSession,
    "record": RecordSession,
    "replay": ReplaySession,
    "rca": RCASession,
    "trace-overhead": TraceOverheadSession,
    "catalog": CatalogSession,
}


def build_pipeline(spec: RunSpec) -> Session:
    """Resolve a spec into a ready-to-run :class:`Session`."""
    try:
        session_cls = _SESSIONS[spec.mode]
    except KeyError:
        raise ValueError(
            f"unknown mode {spec.mode!r} "
            f"(expected one of {sorted(_SESSIONS)})"
        ) from None
    return session_cls(spec)


def run_spec(spec: RunSpec, **kwargs: Any) -> Any:
    """One-shot convenience: build, run and close in one call."""
    with build_pipeline(spec) as session:
        return session.run(**kwargs)


class PipelineBuilder:
    """Fluent construction of a :class:`RunSpec` (and its session).

    >>> from repro.api import PipelineBuilder
    >>> spec = (PipelineBuilder("sharelatex").mode("stream")
    ...         .workload("constant", rate=30.0)
    ...         .duration(60).seed(3).spec())
    >>> spec.workload.kind
    'constant'
    """

    def __init__(self, app: str = "sharelatex",
                 mode: str = "pipeline") -> None:
        self._fields: dict[str, Any] = {"app": app, "mode": mode}
        self._streaming: dict[str, Any] = {}
        self._sieve: dict[str, Any] = {}
        self._consumers: list[ConsumerSpec] = []

    def mode(self, mode: str) -> "PipelineBuilder":
        self._fields["mode"] = mode
        return self

    def app(self, app: str) -> "PipelineBuilder":
        self._fields["app"] = app
        return self

    def seed(self, seed: int) -> "PipelineBuilder":
        self._fields["seed"] = int(seed)
        return self

    def duration(self, seconds: float) -> "PipelineBuilder":
        self._fields["duration"] = float(seconds)
        return self

    def workload(self, kind: str, rate: float | None = None,
                 **options: Any) -> "PipelineBuilder":
        kwargs: dict[str, Any] = {"kind": kind, "options": options}
        if rate is not None:
            kwargs["rate"] = float(rate)
        self._fields["workload"] = WorkloadSpec(**kwargs)
        return self

    def streaming(self, **fields: Any) -> "PipelineBuilder":
        """Override :class:`StreamingConfig` fields (e.g. window=30)."""
        self._streaming.update(fields)
        return self

    def sieve(self, **fields: Any) -> "PipelineBuilder":
        """Override nested :class:`SieveConfig` fields."""
        self._sieve.update(fields)
        return self

    def executor(self, kind: str,
                 workers: int = 0) -> "PipelineBuilder":
        return self.streaming(executor=kind, executor_workers=workers)

    def storage(self, kind: str, path: str = "",
                retention: float = 0.0,
                schedule: str = "",
                writer: str | None = None,
                **options: Any) -> "PipelineBuilder":
        from repro.api.spec import StorageSpec

        self._fields["storage"] = StorageSpec(
            kind=kind, path=str(path), retention=retention,
            schedule=schedule, options=options,
        )
        if writer is not None:
            self.streaming(writer=writer)
        return self

    def journal(self, path: str) -> "PipelineBuilder":
        self._fields["journal"] = str(path)
        return self

    def checkpoint(self, path: str,
                   every: int | None = None) -> "PipelineBuilder":
        """Checkpoint to ``path`` every ``every`` analyzed windows.

        ``every=None`` keeps any cadence already set and otherwise
        defaults to every window -- a declared checkpoint path means
        crash safety is wanted, and the config default of 0 ("manual
        only") would silently never write the file.  Pass ``every=0``
        for explicit manual-only checkpointing.
        """
        self._fields["checkpoint"] = str(path)
        if every is not None:
            self.streaming(checkpoint_every_windows=every)
        elif "checkpoint_every_windows" not in self._streaming:
            self.streaming(checkpoint_every_windows=1)
        return self

    def resume(self, flag: bool = True) -> "PipelineBuilder":
        self._fields["resume"] = bool(flag)
        return self

    def consumer(self, kind: str, **options: Any) -> "PipelineBuilder":
        self._consumers.append(ConsumerSpec(kind=kind, options=options))
        return self

    def compare(self, flag: bool = True) -> "PipelineBuilder":
        self._fields["compare"] = bool(flag)
        return self

    def telemetry(self, enabled: bool = True, port: int = 0,
                  **fields: Any) -> "PipelineBuilder":
        """Turn self-telemetry on (and optionally serve it on ``port``).

        Extra ``fields`` map onto :class:`~repro.api.spec.TelemetrySpec`
        (``host``, ``span_history``, ``exporters``, ``options``).
        """
        from repro.api.spec import TelemetrySpec

        self._fields["telemetry"] = TelemetrySpec(
            enabled=bool(enabled), port=int(port), **fields,
        )
        return self

    def service(self, port: int = 0, enabled: bool = True,
                **fields: Any) -> "PipelineBuilder":
        """Turn the live operations surface on (``/ingest`` +
        ``/api/...``).

        Extra ``fields`` map onto :class:`~repro.api.spec.ServiceSpec`
        (``host``, ``clock``, ``poll_interval``, ``event_history``,
        ``view_history``, ``topology``, ``options``).
        """
        from repro.api.spec import ServiceSpec

        self._fields["service"] = ServiceSpec(
            enabled=bool(enabled), port=int(port), **fields,
        )
        return self

    def snapshot(self, path: str) -> "PipelineBuilder":
        self._fields["snapshot"] = str(path)
        return self

    def extra(self, **knobs: Any) -> "PipelineBuilder":
        self._fields.setdefault("extra", {}).update(knobs)
        return self

    def spec(self) -> RunSpec:
        """Materialize the accumulated fields as a :class:`RunSpec`."""
        import dataclasses

        from repro.core.config import StreamingConfig

        fields = dict(self._fields)
        if self._streaming or self._sieve:
            streaming = fields.get("streaming") or StreamingConfig()
            if self._sieve:
                sieve = dataclasses.replace(streaming.sieve,
                                            **self._sieve)
                streaming = dataclasses.replace(streaming, sieve=sieve)
            if self._streaming:
                streaming = dataclasses.replace(streaming,
                                                **self._streaming)
            fields["streaming"] = streaming
        if self._consumers:
            fields["consumers"] = tuple(self._consumers)
        return RunSpec(**fields)

    def build(self) -> Session:
        """Resolve the spec into a ready-to-run session."""
        return build_pipeline(self.spec())
